#!/usr/bin/env python
"""Documentation lint: links resolve, the paper map matches the registry.

Two checks, both cheap enough for every CI run:

1. **Internal links** — every relative markdown link in ``docs/*.md``
   and ``README.md`` must point at a file or directory that exists
   (anchors are stripped; ``http(s)://`` and ``mailto:`` links are
   skipped — external availability is not this script's business).
2. **Paper map × registry** — every experiment name in the second
   column of the table in ``docs/paper-map.md`` must be a registered
   experiment (the same set ``repro list`` prints), and every
   registered experiment must appear in the map, so the map can neither
   name ghosts nor silently omit a new artefact.

Usage::

    PYTHONPATH=src python docs/check_docs.py

Exits non-zero listing every problem found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

#: ``[text](target)`` — good enough for the hand-written markdown here.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A table row whose second cell is a backticked name.
_MAP_ROW = re.compile(r"^\|[^|]*\|\s*`([a-z0-9_-]+)`\s*\|")


def check_links(paths: list[Path]) -> list[str]:
    """Every relative link in ``paths`` resolves to an existing file."""
    problems = []
    for path in paths:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return problems


def check_paper_map(map_path: Path) -> list[str]:
    """The paper map's experiment column == the live registry, exactly."""
    from repro.api import experiment_names

    mapped = set()
    for line in map_path.read_text().splitlines():
        match = _MAP_ROW.match(line.strip())
        if match:
            mapped.add(match.group(1))
    registered = set(experiment_names())
    problems = []
    for ghost in sorted(mapped - registered):
        problems.append(
            f"{map_path.relative_to(REPO)}: names unregistered experiment "
            f"{ghost!r} (repro list knows: {sorted(registered)})"
        )
    for missing in sorted(registered - mapped):
        problems.append(
            f"{map_path.relative_to(REPO)}: registered experiment "
            f"{missing!r} is missing from the paper map"
        )
    if not mapped:
        problems.append(f"{map_path.relative_to(REPO)}: no map rows found")
    return problems


def main() -> int:
    """Run both checks; print problems; 0 iff the docs are clean."""
    markdown = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    problems = check_links(markdown)
    problems += check_paper_map(DOCS / "paper-map.md")
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(markdown)} files, links + paper map verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
