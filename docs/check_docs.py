#!/usr/bin/env python
"""Documentation lint: links resolve, the paper map matches the registry.

Four checks, all cheap enough for every CI run:

1. **Internal links** — every relative markdown link in ``docs/*.md``
   and ``README.md`` must point at a file or directory that exists
   (anchors are stripped; ``http(s)://`` and ``mailto:`` links are
   skipped — external availability is not this script's business).
2. **Paper map × registry** — every experiment name in the second
   column of the table in ``docs/paper-map.md`` must be a registered
   experiment (the same set ``repro list`` prints), and every
   registered experiment must appear in the map, so the map can neither
   name ghosts nor silently omit a new artefact.
3. **Rule table × lint registry** — the rule column of the table in
   ``docs/determinism.md`` must equal the ids ``repro lint
   --list-rules`` knows, so the invariant catalogue can neither
   document retired rules nor silently omit a new one.
4. **CLI verbs × docs** — every non-experiment subcommand of ``python
   -m repro`` (``run``, ``gc``, ``checkpoint``, …) must be mentioned as
   ``repro <verb>`` somewhere in the documentation corpus, so a new
   verb cannot ship undocumented.
5. **Run flags × docs** — every long option of ``repro run`` (the
   experiment-facing surface: ``--out``, ``--checkpoint-every``, …)
   must appear verbatim somewhere in the corpus, so a new runner knob
   cannot ship undocumented either.
6. **Scenario catalogue × registry** — the first column of the
   catalogue table in ``docs/scenarios.md`` must equal the names
   ``repro list --scenarios`` prints, so a newly registered scenario
   cannot ship undocumented and the docs cannot name ghosts.

Usage::

    PYTHONPATH=src python docs/check_docs.py

Exits non-zero listing every problem found.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"

#: ``[text](target)`` — good enough for the hand-written markdown here.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: A table row whose second cell is a backticked name.
_MAP_ROW = re.compile(r"^\|[^|]*\|\s*`([a-z0-9_-]+)`\s*\|")
#: A determinism.md table row whose first cell is a backticked rule id.
_RULE_ROW = re.compile(r"^\|\s*`([A-Z]+(?:-[A-Z]+)+)`\s*\|")
#: A scenarios.md catalogue row whose first cell is a backticked name.
_SCENARIO_ROW = re.compile(r"^\|\s*`([a-z0-9_-]+)`\s*\|")
#: The heading that opens the scenario catalogue table.
_CATALOGUE_HEADING = "## The built-in catalogue"


def check_links(paths: list[Path]) -> list[str]:
    """Every relative link in ``paths`` resolves to an existing file."""
    problems = []
    for path in paths:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                resolved = (path.parent / target.split("#", 1)[0]).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO)}:{lineno}: broken link "
                        f"-> {target}"
                    )
    return problems


def check_paper_map(map_path: Path) -> list[str]:
    """The paper map's experiment column == the live registry, exactly."""
    from repro.api import experiment_names

    mapped = set()
    for line in map_path.read_text().splitlines():
        match = _MAP_ROW.match(line.strip())
        if match:
            mapped.add(match.group(1))
    registered = set(experiment_names())
    problems = []
    for ghost in sorted(mapped - registered):
        problems.append(
            f"{map_path.relative_to(REPO)}: names unregistered experiment "
            f"{ghost!r} (repro list knows: {sorted(registered)})"
        )
    for missing in sorted(registered - mapped):
        problems.append(
            f"{map_path.relative_to(REPO)}: registered experiment "
            f"{missing!r} is missing from the paper map"
        )
    if not mapped:
        problems.append(f"{map_path.relative_to(REPO)}: no map rows found")
    return problems


def check_rule_table(doc_path: Path) -> list[str]:
    """determinism.md's rule column == the lint registry, exactly."""
    from repro.lintkit import rule_ids

    documented = set()
    for line in doc_path.read_text().splitlines():
        match = _RULE_ROW.match(line.strip())
        if match:
            documented.add(match.group(1))
    registered = set(rule_ids())
    problems = []
    for ghost in sorted(documented - registered):
        problems.append(
            f"{doc_path.relative_to(REPO)}: documents unregistered lint "
            f"rule {ghost!r} (repro lint --list-rules knows: "
            f"{sorted(registered)})"
        )
    for missing in sorted(registered - documented):
        problems.append(
            f"{doc_path.relative_to(REPO)}: lint rule {missing!r} is "
            f"missing from the invariant table"
        )
    if not documented:
        problems.append(f"{doc_path.relative_to(REPO)}: no rule rows found")
    return problems


def check_cli_verbs(paths: list[Path]) -> list[str]:
    """Every non-experiment CLI verb appears as ``repro <verb>`` somewhere."""
    import argparse

    from repro.api import experiment_names
    from repro.cli import build_parser

    subparsers = next(
        action for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    # experiment aliases (`repro table1` == `repro run table1`) are
    # documented through the paper map; only the real verbs need prose
    verbs = set(subparsers.choices) - set(experiment_names())
    corpus = "\n".join(path.read_text() for path in paths)
    problems = []
    for verb in sorted(verbs):
        if not re.search(rf"\brepro {re.escape(verb)}\b", corpus):
            problems.append(
                f"CLI verb {verb!r} is not documented: no 'repro {verb}' "
                f"anywhere in docs/*.md or README.md"
            )
    return problems


def check_run_flags(paths: list[Path]) -> list[str]:
    """Every long option of ``repro run`` appears verbatim in the docs."""
    import argparse

    from repro.cli import build_parser

    subparsers = next(
        action for action in build_parser()._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    run_parser = subparsers.choices["run"]
    flags = sorted(
        opt
        for action in run_parser._actions
        for opt in action.option_strings
        if opt.startswith("--") and opt != "--help"
    )
    corpus = "\n".join(path.read_text() for path in paths)
    problems = []
    for flag in flags:
        if flag not in corpus:
            problems.append(
                f"run flag {flag!r} is not documented: it appears nowhere "
                f"in docs/*.md or README.md"
            )
    return problems


def check_scenarios(doc_path: Path) -> list[str]:
    """scenarios.md's catalogue table == the scenario registry, exactly.

    Only the table under the catalogue heading counts — the pattern
    table earlier in the page also backticks its first column.
    """
    from repro.scenarios import scenario_names

    documented = set()
    in_catalogue = False
    for line in doc_path.read_text().splitlines():
        stripped = line.strip()
        if stripped.startswith("## "):
            in_catalogue = stripped == _CATALOGUE_HEADING
            continue
        if in_catalogue:
            match = _SCENARIO_ROW.match(stripped)
            if match:
                documented.add(match.group(1))
    registered = set(scenario_names())
    problems = []
    for ghost in sorted(documented - registered):
        problems.append(
            f"{doc_path.relative_to(REPO)}: documents unregistered "
            f"scenario {ghost!r} (repro list --scenarios knows: "
            f"{sorted(registered)})"
        )
    for missing in sorted(registered - documented):
        problems.append(
            f"{doc_path.relative_to(REPO)}: registered scenario "
            f"{missing!r} is missing from the catalogue table"
        )
    if not documented:
        problems.append(
            f"{doc_path.relative_to(REPO)}: no catalogue rows found under "
            f"{_CATALOGUE_HEADING!r}"
        )
    return problems


def main() -> int:
    """Run all checks; print problems; 0 iff the docs are clean."""
    markdown = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    problems = check_links(markdown)
    problems += check_paper_map(DOCS / "paper-map.md")
    problems += check_rule_table(DOCS / "determinism.md")
    problems += check_cli_verbs(markdown)
    problems += check_run_flags(markdown)
    problems += check_scenarios(DOCS / "scenarios.md")
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"docs OK: {len(markdown)} files, links + paper map + rule "
          f"table + CLI verbs + run flags + scenario catalogue verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
