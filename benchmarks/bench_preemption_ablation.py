"""§2.3(5) — the preemption ablation.

The paper: "with preemption, the fraction of packets that failed replay
dropped to 0.24% (from 18.33%) for SJF and to 0.25% (from 14.77%) for
LIFO".  This bench replays the SJF and LIFO originals with non-preemptive
and preemptive LSTF and checks the collapse.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.experiments.replayability import ReplayScenario, build_recorded_schedule, run_replay


@pytest.mark.parametrize("scheduler", ["sjf", "lifo"])
def test_preemption_collapses_failures(benchmark, scheduler):
    scenario = ReplayScenario(
        name=f"preempt/{scheduler}", scheduler=scheduler, duration=0.2, seed=1
    )

    def run_pair():
        schedule = build_recorded_schedule(scenario)
        return (
            run_replay(scenario, mode="lstf", schedule=schedule),
            run_replay(scenario, mode="lstf-preemptive", schedule=schedule),
        )

    plain, preemptive = once(benchmark, run_pair)
    print(
        f"\nPREEMPTION | {scheduler:4s} | non-preemptive overdue "
        f"{plain.fraction_overdue:.4f} -> preemptive "
        f"{preemptive.fraction_overdue:.4f}"
    )
    assert preemptive.fraction_overdue < plain.fraction_overdue
    assert preemptive.fraction_overdue < 0.02
