"""Figure 3 — tail packet delays: FIFO vs LSTF-with-constant-slack (§3.2).

Paper reference (full scale): FIFO mean 0.0780s / 99%ile 0.2142s;
LSTF mean 0.0786s / 99%ile 0.1958s — the mean barely moves (slightly up),
the tail comes down.  The bench additionally runs the direct FIFO+
implementation to confirm the equivalence the slack initialisation is
supposed to produce.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.experiments.tail import run_tail_experiment


def test_fig3_tail_delays(benchmark):
    results = once(
        benchmark,
        run_tail_experiment,
        ("fifo", "lstf-constant", "fifo+"),
        0.7,     # utilization
        0.3,     # duration
        1,       # seed
    )
    print()
    for name, res in results.items():
        print(
            f"FIG3 | {name:13s} | mean {res.mean:.4f} | p99 {res.p99:.4f} "
            f"| p99.9 {res.p999:.4f} | max {res.max:.4f}"
        )
    fifo = results["fifo"]
    lstf = results["lstf-constant"]
    fifo_plus = results["fifo+"]
    # Tail shrinks; mean stays within a band; FIFO+ tracks LSTF-constant.
    assert lstf.p99 < fifo.p99
    assert abs(lstf.mean - fifo.mean) < 0.25 * fifo.mean
    assert abs(lstf.p99 - fifo_plus.p99) < 0.20 * fifo.p99
