"""The parallel runner: seed sweeps, serial vs multiprocessing.

Measures :func:`repro.api.runner.run_many` on the same four-seed Table 1
sweep with one worker and with four, and asserts the parallel artifacts
are byte-identical to the serial ones (the API's determinism contract —
speed must never change results).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.api import ExperimentSpec, run_many

SWEEP = ExperimentSpec(
    "table1", duration=0.1, seeds=(1, 2, 3, 4), options={"rows": (0,)}
).sweep()


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "4-workers"])
def test_seed_sweep(benchmark, workers):
    artifacts = once(benchmark, run_many, SWEEP, workers=workers)
    assert len(artifacts) == len(SWEEP)
    print(
        f"\nRUNNER | workers {workers} | "
        f"sim wall {sum(a.wall_time_s for a in artifacts):.2f}s "
        f"across {len(artifacts)} runs"
    )


def test_parallel_matches_serial():
    serial = run_many(SWEEP, workers=1)
    parallel = run_many(SWEEP, workers=4)
    assert [a.canonical_json() for a in serial] == [
        a.canonical_json() for a in parallel
    ]
