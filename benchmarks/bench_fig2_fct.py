"""Figure 2 — mean flow completion time: FIFO vs SJF vs SRPT vs LSTF (§3.1).

Paper reference (full scale): FIFO 0.288s, SRPT 0.208s, SJF 0.194s,
LSTF 0.195s — i.e. every size-aware scheme far below FIFO, and LSTF with
the flow-size slack heuristic indistinguishable from SJF.

At 1/100 scale individual seeds are noisy (a few elephants dominate the
mean), so the bench averages seeds before asserting the ordering.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.experiments.fct import FCT_SCHEMES, run_fct_experiment
from repro.metrics.fct import bucket_mean_fct

SEEDS = (1, 2, 3)


def test_fig2_mean_fct(benchmark):
    def run_all():
        return [run_fct_experiment(duration=0.3, seed=s) for s in SEEDS]

    per_seed = once(benchmark, run_all)
    means = {
        scheme: float(np.mean([r[scheme].mean_fct for r in per_seed]))
        for scheme in FCT_SCHEMES
    }
    print("\nFIG2 | mean FCT over seeds " + str(SEEDS))
    for scheme, value in means.items():
        print(f"FIG2 | {scheme:5s} | {value:.4f} s")

    buckets = bucket_mean_fct(per_seed[0]["lstf"].stats)
    print("FIG2 | lstf per-bucket (seed 1): "
          + "  ".join(f"{b.label}:{b.mean_fct:.3f}" for b in buckets))

    # The figure's ordering: every size-aware scheme beats FIFO, and LSTF
    # sits with the size-aware pack rather than with FIFO.
    assert means["sjf"] < means["fifo"]
    assert means["srpt"] < means["fifo"]
    assert means["lstf"] < means["fifo"]
    best = min(means["sjf"], means["srpt"])
    assert means["lstf"] - best < 0.5 * (means["fifo"] - best)
