"""Simulator micro-benchmarks: event throughput and replay cost.

Not a paper artefact — these quantify the substrate itself, so regressions
in the hot path (heap ops, port state machine, LSTF keying) are visible.
Unlike the experiment benches these use several rounds, since run-to-run
timing is the whole point.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.schedulers.lstf import LstfScheduler
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.units import MBPS


def test_engine_event_throughput(benchmark):
    def run():
        engine = Engine()
        count = 10_000

        def tick():
            nonlocal count
            count -= 1
            if count:
                engine.schedule(1e-6, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.events_processed

    processed = benchmark(run)
    assert processed == 10_000


def test_bottleneck_port_throughput(benchmark):
    def run():
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", 8 * MBPS, 1e-5)
        for k in range(2_000):
            net.inject_at(k * 1e-6, Packet(1, 1000, "a", "b", 0.0))
        net.run()
        return net.tracer.delivered_count()

    delivered = benchmark(run)
    assert delivered == 2_000


def test_lstf_scheduler_ops(benchmark):
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    port = net.nodes["a"].ports["b"]

    def run():
        sched = LstfScheduler()
        sched.attach(port)
        packets = [Packet(1, 1000, "a", "b", 0.0) for _ in range(1_000)]
        for i, p in enumerate(packets):
            p.slack = (i * 7919) % 1000 / 1000.0
            p.enqueue_time = 0.0
            sched.push(p, 0.0)
        while len(sched):
            sched.pop(1.0)
        return True

    assert benchmark(run)
