"""§5 future-work benches: feedback (RED) and the hardware model (p-heap).

* **Incorporating feedback**: the paper leaves open how AQM-style feedback
  interacts with universality.  This bench runs the FCT workload with RED
  attached to the router ports, under FIFO and under LSTF with the
  flow-size slack heuristic, against their drop-tail counterparts: LSTF's
  FCT advantage should survive the switch of feedback mechanism.
* **Pipelined heap**: §5 argues LSTF is implementable at line rate because
  it is just fine-grained priority queueing (p-heap [6, 16]).  The bench
  shows the p-heap backend is observationally identical to the list-heap
  LSTF on a full replay and compares their software costs.
"""

from __future__ import annotations

import random

import numpy as np

from benchmarks.conftest import once
from repro.core.heuristics import FlowSizeSlack
from repro.schedulers import FifoScheduler, LstfScheduler, PHeapLstfScheduler
from repro.sim.aqm import RedAqm
from repro.sim.node import Router
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.transport.tcp import install_tcp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows


def _fct_run(scheduler_cls, slack_policy, use_red: bool, slack_aware: bool = False):
    cfg = Internet2Config(edges_per_core=2, bandwidth_scale=0.01)
    net = build_internet2(cfg)
    net.install_schedulers(
        lambda node, _p: None if node.startswith("h") else scheduler_cls()
    )
    net.set_buffers(50_000, node_filter=lambda n: isinstance(n, Router))
    if use_red:
        rng = random.Random(7)
        for node in net.routers:
            for port in node.ports.values():
                port.set_aqm(
                    RedAqm(
                        min_threshold=10_000,
                        max_threshold=30_000,
                        weight=0.02,
                        rng=rng,
                        idle_bandwidth=port.link.bandwidth,
                        slack_aware=slack_aware,
                    )
                )
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1_500, 1_000_000),
        workload=PoissonWorkload(0.7, 10e6, duration=0.25, seed=3),
    )
    stats = install_tcp_flows(net, flows, slack_policy=slack_policy, min_rto=0.05)
    net.run(until=10.0)
    return stats, net.tracer.drops


def test_extension_red_feedback(benchmark):
    def run():
        return {
            ("fifo", "droptail"): _fct_run(FifoScheduler, None, use_red=False),
            ("fifo", "red"): _fct_run(FifoScheduler, None, use_red=True),
            ("lstf", "droptail"): _fct_run(LstfScheduler, FlowSizeSlack(), use_red=False),
            ("lstf", "red"): _fct_run(LstfScheduler, FlowSizeSlack(), use_red=True),
            ("lstf", "red-slk"): _fct_run(
                LstfScheduler, FlowSizeSlack(), use_red=True, slack_aware=True
            ),
        }

    results = once(benchmark, run)
    print()
    for (sched, aqm), (stats, drops) in results.items():
        mice = [
            fct for fid, fct in stats.fct.items() if stats.flow_size[fid] <= 10_000
        ]
        mice_mean = float(np.mean(mice)) if mice else float("nan")
        print(
            f"EXT-FEEDBACK | {sched:4s}+{aqm:8s} | mean FCT {stats.mean_fct():.4f} "
            f"| mice(<=10KB) {mice_mean:.4f} | flows {stats.completed} | drops {drops}"
        )
    # The headline: LSTF's FCT edge over FIFO holds under both feedback
    # regimes (§5's open question, answered empirically for this workload).
    for aqm in ("droptail", "red"):
        fifo_stats, _ = results[("fifo", aqm)]
        lstf_stats, _ = results[("lstf", aqm)]
        assert lstf_stats.mean_fct() < fifo_stats.mean_fct() * 1.05, aqm


def test_extension_pheap_backend(benchmark):
    """Replay equivalence + relative cost of the p-heap LSTF backend."""
    import functools

    from repro.core.packet import Packet
    from repro.core.replay import record_schedule
    from repro.core.slack import initialize_replay_slack
    from repro.topology.simple import build_dumbbell
    from repro.transport.udp import install_udp_flows

    make = functools.partial(build_dumbbell, num_pairs=4)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 100_000),
        workload=PoissonWorkload(0.7, 50e6, duration=0.08, seed=3),
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)

    def replay_with(scheduler_cls):
        replay_net = make()
        replay_net.install_uniform(scheduler_cls)
        for rec in schedule.packets:
            p = Packet(flow_id=rec.flow_id, size=rec.size, src=rec.src,
                       dst=rec.dst, created=rec.ingress_time, pid=rec.pid)
            initialize_replay_slack(p, replay_net, rec.output_time)
            replay_net.inject_at(rec.ingress_time, p)
        replay_net.run()
        return {r.pid: r.exit for r in replay_net.tracer.delivered_records()}

    def run_both():
        return replay_with(LstfScheduler), replay_with(PHeapLstfScheduler)

    list_heap, pheap = once(benchmark, run_both)
    identical = list_heap == pheap
    print(f"\nEXT-PHEAP | p-heap replay identical to list-heap LSTF: {identical} "
          f"({len(pheap)} packets)")
    assert identical
