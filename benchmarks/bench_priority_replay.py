"""§2.3(7) — replay with simple priorities vs LSTF.

The paper assigns priority(p) = o(p) ("which seemed most intuitive to us")
and observes 21% of packets overdue vs 0.21% for LSTF, with 20.69% vs
0.02% overdue by more than T.  This bench regenerates that comparison,
plus the omniscient upper bound.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.experiments.replayability import ReplayScenario, build_recorded_schedule, run_replay


def test_priority_vs_lstf_vs_omniscient(benchmark):
    scenario = ReplayScenario(name="priority-compare", duration=0.2, seed=1)

    def run_all():
        schedule = build_recorded_schedule(scenario)
        return {
            mode: run_replay(scenario, mode=mode, schedule=schedule)
            for mode in ("lstf", "priority", "omniscient")
        }

    outcomes = once(benchmark, run_all)
    print()
    for mode, outcome in outcomes.items():
        print(
            f"PRIORITY-CMP | {mode:10s} | overdue {outcome.fraction_overdue:.4f} "
            f"| overdue>T {outcome.fraction_overdue_beyond_t:.4f}"
        )
    lstf, prio, omni = (outcomes[m] for m in ("lstf", "priority", "omniscient"))
    assert omni.result.perfect
    assert prio.fraction_overdue > 2 * lstf.fraction_overdue
    assert prio.fraction_overdue_beyond_t > lstf.fraction_overdue_beyond_t
