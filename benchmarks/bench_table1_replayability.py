"""Table 1 — LSTF replayability across scenarios (§2.3).

One benchmark per table row, driven through the unified experiment API:
each run executes a single-row ``table1`` spec, records the original
schedule, and replays it with non-preemptive LSTF, reporting the fraction
of packets overdue and the fraction overdue by more than one bottleneck
transmission time T.

Paper reference values (full scale) for orientation:
I2 default/Random 0.0021 / 0.0002; 10% 0.0007/0; 30% 0.0281/0.0017;
50% 0.0221/0.0002; 90% 0.0008/4e-6; 1G-1G 0.0204/8e-6; 10G-10G
0.0631/0.0448; RocketFuel 0.0246/0.0063; Datacenter 0.0164/0.0154;
FIFO 0.0143/0.0006; FQ 0.0271/0.0002; SJF 0.1833/0.0019; LIFO
0.1477/0.0067; FQ+FIFO+ 0.0152/0.0004.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.api import ExperimentSpec, run
from repro.experiments.replayability import table1_scenarios

ROW_NAMES = [s.name for s in table1_scenarios(duration=0.2, seed=1)]


@pytest.mark.parametrize("row", range(len(ROW_NAMES)), ids=ROW_NAMES)
def test_table1_row(benchmark, row):
    spec = ExperimentSpec("table1", duration=0.2, options={"rows": (row,)})
    artifact = once(benchmark, run, spec)
    name, packets, overdue, overdue_beyond_t = artifact.rows[0]
    print(
        f"\nTABLE1 | {name:28s} | packets {packets:6d} "
        f"| overdue {overdue:.4f} "
        f"| overdue>T {overdue_beyond_t:.4f}"
    )
    # The paper's summary claim: "in almost all cases, less than 1% of the
    # packets are overdue with LSTF by more than T".  Allow slack for the
    # 1/100-scale noise, but catch regressions an order away.
    assert overdue_beyond_t < 0.10
    assert overdue < 0.5
