#!/usr/bin/env python
"""Run the substrate perf suite and emit a BENCH-schema JSON document.

This is the script behind the repo-level ``BENCH_*.json`` trajectory
files.  It drives the same bench implementations as ``repro bench``
(:mod:`repro.experiments.perf`) but sweeps several packet scales and
assembles the stable JSON schema described in ``benchmarks/perf/README.md``.

Examples::

    PYTHONPATH=src python benchmarks/perf/run_bench.py --out /tmp/now.json
    PYTHONPATH=src python benchmarks/perf/run_bench.py --smoke --out /tmp/s.json
    PYTHONPATH=src python benchmarks/perf/run_bench.py \
        --compare BENCH_pr2.json          # speedup vs the committed numbers

The ``--smoke`` preset runs everything at tiny scale (CI uses it to guard
the schema, never the timings).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.experiments.perf import (
    BENCH_SCHEMA_VERSION,
    BRANCH_STRATEGIES,
    DEFAULT_SCHEDULERS,
    ENGINE_BENCHES,
    OBS_MODES,
    REPLAY_STRATEGIES,
    RESUME_STRATEGIES,
    SWEEP_EXECUTORS,
    bench_e2e_fig2_style,
    bench_obs_engine,
    bench_obs_sweep_queue,
    bench_scheduler_ops,
    bench_sweep_branch,
    bench_sweep_executor,
    bench_sweep_replay,
    bench_sweep_resume,
)

SCHEMA_VERSION = BENCH_SCHEMA_VERSION


def bench_entry(name: str, scale: int, ops: int, seconds: float) -> dict:
    return {
        "name": name,
        "scale": scale,
        "ops": ops,
        "seconds": round(seconds, 6),
        "ops_per_sec": round(ops / seconds, 1) if seconds > 0 else 0.0,
    }


def run_suite(events: int, packet_scales: list[int], schedulers: list[str],
              duration: float, repeats: int, sweep_seeds: int = 4,
              sweep_workers: int = 2, sweep_duration: float = 0.04,
              replay_modes: int = 3, branch_legs: int = 16,
              branch_warmup: float = 0.4, branch_duration: float = 0.005,
              resume_legs: int = 16, resume_duration: float = 0.5,
              resume_kill_after: int = 9,
              verbose: bool = True) -> list[dict]:
    benches: list[dict] = []

    def note(entry: dict) -> None:
        benches.append(entry)
        if verbose:
            print(
                f"  {entry['name']:>16s} @{entry['scale']:<7d} "
                f"{entry['ops_per_sec']:>12,.0f} ops/s",
                file=sys.stderr,
            )

    for name, fn in ENGINE_BENCHES:
        ops, seconds = fn(events, repeats)
        note(bench_entry(name, events, ops, seconds))
    for scheduler in schedulers:
        for packets in packet_scales:
            ops, seconds = bench_scheduler_ops(scheduler, packets, repeats)
            note(bench_entry(f"sched-{scheduler}", packets, ops, seconds))
    ops, seconds = bench_e2e_fig2_style(duration, repeats=repeats)
    note(bench_entry("e2e-fig2", int(round(duration * 1e3)), ops, seconds))
    # Executor overhead: one tiny seed sweep per run_many mode; the
    # sweep-queue / sweep-process gap prices the durable queue's broker.
    for executor in SWEEP_EXECUTORS:
        ops, seconds = bench_sweep_executor(
            executor, seeds=sweep_seeds, workers=sweep_workers,
            duration=sweep_duration, repeats=repeats,
        )
        note(bench_entry(f"sweep-{executor}", sweep_seeds, ops, seconds))
    # Record-once vs record-per-leg on a replay-mode sweep: the
    # once/perleg ops-per-sec ratio is the PR-4 record-once speedup.
    # Runs at the e2e duration, not the executor-sweep one — the win
    # scales with recording cost, so tiny jobs would understate it.
    for strategy in REPLAY_STRATEGIES:
        ops, seconds = bench_sweep_replay(
            strategy, modes=replay_modes, duration=duration,
            repeats=repeats,
        )
        note(bench_entry(f"sweep-replay-{strategy}", replay_modes, ops, seconds))
    # Simulate-once vs warm-up-per-leg on a branch seed sweep: the
    # many/scratch ops-per-sec ratio is the checkpoint speedup.  The
    # warm-up dominates the per-leg delta by design — that asymmetry is
    # what the checkpoint exists to exploit.
    for strategy in BRANCH_STRATEGIES:
        ops, seconds = bench_sweep_branch(
            strategy, legs=branch_legs, warmup=branch_warmup,
            duration=branch_duration, repeats=repeats,
        )
        note(bench_entry(f"sweep-branch-{strategy}", branch_legs, ops, seconds))
    # Preempted sweep recovery (PR 9): every leg is SIGKILLed at ~90%
    # progress (untimed), then the sweep is completed from scratch vs
    # resumed from the mid-run snapshots the corpses left behind.  The
    # resumed/scratch ops-per-sec ratio is the preemption-safe-resume
    # speedup.
    for strategy in RESUME_STRATEGIES:
        ops, seconds = bench_sweep_resume(
            strategy, legs=resume_legs, duration=resume_duration,
            kill_after=resume_kill_after, repeats=repeats,
        )
        note(bench_entry(f"sweep-resume-{strategy}", resume_legs, ops, seconds))
    # Telemetry overhead (PR 8): the engine chain and the queue sweep
    # with observability off vs on.  The off/on ops-per-sec ratio is
    # what full telemetry costs; the off modes must track the
    # uninstrumented engine-chain / sweep-queue trajectory (CI gates the
    # pre-existing benches within 3% of the previous PR's file).
    for mode in OBS_MODES:
        ops, seconds = bench_obs_engine(mode, events, repeats)
        note(bench_entry(f"obs-engine-{mode}", events, ops, seconds))
    for mode in OBS_MODES:
        ops, seconds = bench_obs_sweep_queue(
            mode, seeds=sweep_seeds, workers=sweep_workers,
            duration=sweep_duration, repeats=repeats,
        )
        note(bench_entry(f"obs-sweep-queue-{mode}", sweep_seeds, ops, seconds))
    return benches


def key(entry: dict) -> str:
    return f"{entry['name']}@{entry['scale']}"


def speedups(before: list[dict], after: list[dict]) -> dict[str, float]:
    base = {key(e): e["ops_per_sec"] for e in before}
    out = {}
    for entry in after:
        k = key(entry)
        if k in base and base[k] > 0:
            out[k] = round(entry["ops_per_sec"] / base[k], 2)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="engine microbench event count")
    parser.add_argument("--packets", type=int, nargs="+",
                        default=[10_000, 100_000],
                        help="scheduler bench packet scales (10^4..10^6)")
    parser.add_argument("--schedulers", nargs="+", default=list(DEFAULT_SCHEDULERS))
    parser.add_argument("--duration", type=float, default=0.12,
                        help="e2e fig2-style simulated seconds")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--sweep-seeds", type=int, default=4,
                        help="seeds per executor-overhead sweep")
    parser.add_argument("--sweep-workers", type=int, default=2,
                        help="worker processes for the process/queue sweeps")
    parser.add_argument("--sweep-duration", type=float, default=0.04,
                        help="simulated seconds per sweep job")
    parser.add_argument("--replay-modes", type=int, default=4,
                        dest="replay_modes", metavar="N",
                        help="modes per sweep-replay bench (record-once vs "
                             "record-per-leg)")
    parser.add_argument("--branch-legs", type=int, default=16,
                        dest="branch_legs", metavar="N",
                        help="legs per sweep-branch bench (simulate-once vs "
                             "warm-up-per-leg)")
    parser.add_argument("--branch-warmup", type=float, default=0.4,
                        dest="branch_warmup", metavar="S",
                        help="shared warm-up horizon per sweep-branch bench")
    parser.add_argument("--branch-duration", type=float, default=0.005,
                        dest="branch_duration", metavar="S",
                        help="per-leg simulated seconds past the warm-up")
    parser.add_argument("--resume-legs", type=int, default=16,
                        dest="resume_legs", metavar="N",
                        help="legs per sweep-resume bench (preempted sweep "
                             "recovered from scratch vs from snapshots)")
    parser.add_argument("--resume-duration", type=float, default=0.5,
                        dest="resume_duration", metavar="S",
                        help="simulated seconds per sweep-resume leg")
    parser.add_argument("--resume-kill-after", type=int, default=9,
                        dest="resume_kill_after", metavar="N",
                        help="snapshots before each pre-pass leg is "
                             "SIGKILLed (progress = N/(N+1))")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset for CI schema checks")
    parser.add_argument("--label", default="local")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the JSON document here (default stdout)")
    parser.add_argument("--compare", default=None, metavar="BENCH_JSON",
                        help="print ops/sec ratios vs the last run in FILE")
    args = parser.parse_args(argv)

    if args.smoke:
        args.events, args.packets = 2_000, [500]
        args.duration, args.repeats = 0.005, 1
        args.schedulers = ["fifo", "lstf"]
        args.sweep_seeds, args.sweep_duration = 2, 0.02
        args.replay_modes = 2
        args.branch_legs, args.branch_warmup = 2, 0.02
        args.branch_duration = 0.005
        args.resume_legs, args.resume_duration = 2, 0.05
        args.resume_kill_after = 2

    print(f"running perf suite (repeats={args.repeats}) ...", file=sys.stderr)
    benches = run_suite(args.events, args.packets, args.schedulers,
                        args.duration, args.repeats,
                        sweep_seeds=args.sweep_seeds,
                        sweep_workers=args.sweep_workers,
                        sweep_duration=args.sweep_duration,
                        replay_modes=args.replay_modes,
                        branch_legs=args.branch_legs,
                        branch_warmup=args.branch_warmup,
                        branch_duration=args.branch_duration,
                        resume_legs=args.resume_legs,
                        resume_duration=args.resume_duration,
                        resume_kill_after=args.resume_kill_after)
    document = {
        "schema_version": SCHEMA_VERSION,
        "config": {
            "events": args.events,
            "packets": args.packets,
            "schedulers": args.schedulers,
            "duration": args.duration,
            "repeats": args.repeats,
            "sweep_seeds": args.sweep_seeds,
            "sweep_workers": args.sweep_workers,
            "sweep_duration": args.sweep_duration,
            "replay_modes": args.replay_modes,
            "branch_legs": args.branch_legs,
            "branch_warmup": args.branch_warmup,
            "branch_duration": args.branch_duration,
            "resume_legs": args.resume_legs,
            "resume_duration": args.resume_duration,
            "resume_kill_after": args.resume_kill_after,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "runs": [{"label": args.label, "benches": benches}],
    }
    text = json.dumps(document, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text, end="")

    if args.compare:
        # Report on stderr: stdout may be the JSON document itself.
        reference = json.loads(Path(args.compare).read_text())
        ref_run = reference["runs"][-1]
        print(f"\nvs {args.compare} run {ref_run['label']!r}:", file=sys.stderr)
        for k, ratio in speedups(ref_run["benches"], benches).items():
            print(f"  {k:>28s}  x{ratio:.2f}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
