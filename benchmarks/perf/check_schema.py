#!/usr/bin/env python
"""Validate BENCH-schema JSON files (CI schema guard — no timing checks).

Usage::

    python benchmarks/perf/check_schema.py BENCH_pr2.json [more.json ...]

Exits non-zero with a pointed message if any file violates the schema
described in ``benchmarks/perf/README.md``.  Timings are deliberately
*not* asserted: CI machines are noisy, so the trajectory files are only
guarded structurally; humans (and future PRs) compare the numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_VERSION = 1


class SchemaError(Exception):
    pass


def _require(cond: bool, where: str, message: str) -> None:
    if not cond:
        raise SchemaError(f"{where}: {message}")


def check_bench(entry: object, where: str) -> None:
    _require(isinstance(entry, dict), where, "bench entry must be an object")
    for field, kinds in (
        ("name", str),
        ("scale", int),
        ("ops", int),
        ("seconds", (int, float)),
        ("ops_per_sec", (int, float)),
    ):
        _require(field in entry, where, f"missing field {field!r}")
        _require(
            isinstance(entry[field], kinds) and not isinstance(entry[field], bool),
            where,
            f"field {field!r} has wrong type {type(entry[field]).__name__}",
        )
    _require(entry["scale"] > 0, where, "scale must be positive")
    _require(entry["ops"] > 0, where, "ops must be positive")
    _require(entry["seconds"] > 0, where, "seconds must be positive")
    _require(entry["ops_per_sec"] > 0, where, "ops_per_sec must be positive")


def check_document(data: object, where: str) -> int:
    _require(isinstance(data, dict), where, "top level must be an object")
    _require(
        data.get("schema_version") == SCHEMA_VERSION,
        where,
        f"schema_version must be {SCHEMA_VERSION}, got {data.get('schema_version')!r}",
    )
    _require(isinstance(data.get("config"), dict), where, "missing config object")
    runs = data.get("runs")
    _require(isinstance(runs, list) and runs, where, "runs must be a non-empty list")
    total = 0
    for i, run in enumerate(runs):
        run_where = f"{where}: runs[{i}]"
        _require(isinstance(run, dict), run_where, "run must be an object")
        _require(
            isinstance(run.get("label"), str) and run["label"],
            run_where,
            "run needs a non-empty label",
        )
        benches = run.get("benches")
        _require(
            isinstance(benches, list) and benches,
            run_where,
            "benches must be a non-empty list",
        )
        for j, bench in enumerate(benches):
            check_bench(bench, f"{run_where}.benches[{j}]")
        total += len(benches)
    speedup = data.get("speedup")
    if speedup is not None:
        _require(isinstance(speedup, dict), where, "speedup must be an object")
        for k, v in speedup.items():
            _require(
                isinstance(k, str) and isinstance(v, (int, float)) and v > 0,
                where,
                f"speedup[{k!r}] must map a string to a positive number",
            )
    return total


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_schema.py BENCH.json [...]", file=sys.stderr)
        return 2
    status = 0
    for arg in argv:
        path = Path(arg)
        try:
            data = json.loads(path.read_text())
            count = check_document(data, str(path))
        except (OSError, ValueError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 1
        except SchemaError as exc:
            print(f"schema violation — {exc}", file=sys.stderr)
            status = 1
        else:
            print(f"{path}: OK ({count} bench entries)")
    return status


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
