#!/usr/bin/env python
"""Diff two BENCH-schema JSON files with a regression threshold.

Matches bench entries by ``name@scale`` between one run of each file
(the last run by default, or pick by ``--run-before`` / ``--run-after``
label substring), prints a before/after/ratio table, and exits non-zero
when any matched ratio falls below the threshold — the bisectable
"this PR slowed the substrate down" signal.  Benches present only in
the candidate are reported as ``new`` (with their numbers) and never
fail the gate; benches present only in the baseline are listed as
removed.

Examples::

    PYTHONPATH=src python benchmarks/perf/compare.py BENCH_pr2.json BENCH_pr3.json
    PYTHONPATH=src python benchmarks/perf/compare.py BENCH_pr3.json now.json \
        --threshold 0.85 --only sweep-
    PYTHONPATH=src python benchmarks/perf/compare.py BENCH_pr3.json BENCH_pr3.json \
        --run-before pr2 --run-after pr3     # the trajectory inside one file

Timings on shared CI runners are noise; run this on a quiet machine.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.90


def load_run(path: Path, label_substring: str | None) -> dict:
    """The chosen run object of a BENCH document (last run by default)."""
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise SystemExit(
            f"error: {path} is not a BENCH document (expected a JSON object, "
            f"got {type(data).__name__})"
        )
    runs = data.get("runs") or []
    if not runs:
        raise SystemExit(f"error: {path} has no runs")
    if label_substring is None:
        return runs[-1]
    matches = [r for r in runs if label_substring in r.get("label", "")]
    if not matches:
        labels = [r.get("label") for r in runs]
        raise SystemExit(
            f"error: no run label in {path} contains {label_substring!r}; "
            f"available: {labels}"
        )
    return matches[-1]


def keyed(run: dict) -> dict[str, dict]:
    return {f"{b['name']}@{b['scale']}": b for b in run.get("benches", [])}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("after", type=Path, help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="fail when after/before ops_per_sec drops below "
                             f"this ratio on any matched bench (default "
                             f"{DEFAULT_THRESHOLD})")
    parser.add_argument("--only", default=None, metavar="PREFIX",
                        help="compare only benches whose name@scale starts "
                             "with PREFIX (e.g. 'sched-', 'sweep-')")
    parser.add_argument("--run-before", default=None, metavar="LABEL",
                        help="pick the baseline run by label substring "
                             "(default: the file's last run)")
    parser.add_argument("--run-after", default=None, metavar="LABEL",
                        help="pick the candidate run by label substring "
                             "(default: the file's last run)")
    args = parser.parse_args(argv)

    before = load_run(args.before, args.run_before)
    after = load_run(args.after, args.run_after)
    base, cand = keyed(before), keyed(after)
    common = [k for k in cand if k in base]
    new = sorted(k for k in cand if k not in base)
    removed = sorted(k for k in base if k not in cand)
    if args.only:
        common = [k for k in common if k.startswith(args.only)]
        new = [k for k in new if k.startswith(args.only)]
        removed = [k for k in removed if k.startswith(args.only)]
    if not common and not new:
        raise SystemExit("error: the two runs share no bench keys to compare")

    print(f"before: {args.before} run {before.get('label')!r}")
    print(f"after:  {args.after} run {after.get('label')!r}")
    print(f"{'bench':>28s} {'before':>14s} {'after':>14s} {'ratio':>7s}")
    regressions = []
    for key in sorted(common):
        b, a = base[key]["ops_per_sec"], cand[key]["ops_per_sec"]
        ratio = a / b if b > 0 else float("inf")
        flag = ""
        if ratio < args.threshold:
            regressions.append((key, ratio))
            flag = f"  << regression (< {args.threshold:.2f})"
        print(f"{key:>28s} {b:>14,.0f} {a:>14,.0f} {ratio:>6.2f}x{flag}")
    # Benches only the candidate has are *new*, not regressions: report
    # their numbers so the trajectory starts somewhere, and never fail on
    # them — a PR that adds a bench must not trip its own gate.
    for key in new:
        a = cand[key]["ops_per_sec"]
        print(f"{key:>28s} {'-':>14s} {a:>14,.0f}     new")
    if removed:
        print(f"(removed, not compared: {', '.join(removed)})")

    if regressions:
        worst = min(regressions, key=lambda kv: kv[1])
        print(
            f"\nFAIL: {len(regressions)} bench(es) below x{args.threshold:.2f}"
            f" — worst {worst[0]} at x{worst[1]:.2f}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: {len(common)} bench(es) all at or above x{args.threshold:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
