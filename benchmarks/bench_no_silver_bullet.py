"""The motivating comparison, §1/§4: "No Silver Bullet" [28] re-run.

Sivaraman et al. showed FQ, CoDel+FQ and CoDel+FIFO trading wins across
objectives — the observation that raised the UPS question.  This bench
re-stages that competition on our substrate and adds LSTF configured per
objective (flow-size slacks for FCT, constant slacks for tail delay):
the paper's thesis is that the *mechanism* can stay fixed while only the
slack initialisation changes.

Metrics: mean flow completion time (the FCT objective) and p99
*in-network* queueing delay (the tail objective) — the sender's own NIC
backlog is excluded because no in-network scheme can influence it, same
TCP workload everywhere.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.core.heuristics import ConstantSlack, FlowSizeSlack
from repro.metrics.delay import percentile
from repro.schedulers import FifoScheduler, FqScheduler, LstfScheduler
from repro.sim.aqm import CoDelAqm
from repro.sim.node import Router
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.transport.tcp import install_tcp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows

SCHEMES = (
    ("fq", FqScheduler, None, False),
    ("codel+fifo", FifoScheduler, None, True),
    ("codel+fq", FqScheduler, None, True),
    ("lstf/fct", LstfScheduler, FlowSizeSlack(), False),
    ("lstf/tail", LstfScheduler, ConstantSlack(1.0), False),
    # Scheduling and feedback are orthogonal: LSTF composes with CoDel
    # the same way FIFO/FQ do, which is the fair tail-objective matchup
    # (CoDel's tail win comes from shedding load, not from ordering).
    ("codel+lstf/tail", LstfScheduler, ConstantSlack(1.0), True),
)


def _run(scheduler_cls, slack_policy, use_codel: bool):
    cfg = Internet2Config(edges_per_core=2, bandwidth_scale=0.01)
    net = build_internet2(cfg)
    net.install_schedulers(
        lambda node, _p: None if node.startswith("h") else scheduler_cls()
    )
    net.set_buffers(50_000, node_filter=lambda n: isinstance(n, Router))
    if use_codel:
        for node in net.routers:
            for port in node.ports.values():
                port.set_aqm(CoDelAqm(target=0.005, interval=0.05))
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1_500, 1_000_000),
        workload=PoissonWorkload(0.7, 10e6, duration=0.25, seed=5),
    )
    stats = install_tcp_flows(net, flows, slack_policy=slack_policy, min_rto=0.05)
    net.run(until=10.0)
    in_network_waits = [
        sum(rec.hop_waits[1:])  # hop 0 is the sender's own uplink
        for rec in net.tracer.delivered_records()
        if rec.size > 64
    ]
    return stats.mean_fct(), percentile(in_network_waits, 99), stats.completed


def test_no_silver_bullet_and_lstf_universality(benchmark):
    def run_all():
        return {
            name: _run(cls, policy, codel)
            for name, cls, policy, codel in SCHEMES
        }

    results = once(benchmark, run_all)
    print()
    for name, (fct, p99, flows) in results.items():
        print(
            f"NSB | {name:11s} | mean FCT {fct:.4f}s | p99 delay {p99:.4f}s "
            f"| flows {flows}"
        )
    baselines = {
        k: v for k, v in results.items()
        if k in ("fq", "codel+fifo", "codel+fq")
    }
    best_fct = min(v[0] for v in baselines.values())
    # The paper's practical-universality thesis: one mechanism (LSTF),
    # reconfigured only at the ingress, competes with the per-objective
    # winner on that objective.
    assert results["lstf/fct"][0] <= best_fct * 1.15
    # Among pure scheduling disciplines (no load shedding), tail-configured
    # LSTF has the best tail.
    assert results["lstf/tail"][1] <= results["fq"][1]
    # Finding (documented in EXPERIMENTS.md): CoDel's sojourn signal
    # assumes FIFO heads — under LSTF the locally-oldest packets are *not*
    # at the head, so CoDel rarely engages and the combination degenerates
    # to plain LSTF.  The tail crown stays with codel+fifo, whose win
    # comes from shedding load, something no scheduler alone can do.
    assert (
        abs(results["codel+lstf/tail"][1] - results["lstf/tail"][1])
        < 0.2 * results["lstf/tail"][1]
    )
