"""Extension benches: the paper's stated extensions and open questions.

* Weighted fairness (§3.3's closing remark): per-flow r_est proportional
  to weights gives weighted shares; compared against weighted FQ.
* Least information (§5 open question): quantise o(p) before slack
  initialisation and chart replay degradation — LSTF turns out to be
  robust to roughly one bottleneck-transmission-time of target error.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.experiments.fairness import run_weighted_fairness_experiment
from repro.experiments.information import run_information_experiment
from repro.experiments.replayability import ReplayScenario, build_recorded_schedule


def test_extension_weighted_fairness(benchmark):
    def run():
        return {
            scheme: run_weighted_fairness_experiment(
                weights=(1.0, 2.0, 4.0), scheme=scheme
            )
            for scheme in ("lstf", "fq")
        }

    results = once(benchmark, run)
    print()
    for scheme, (achieved, _normalised, res) in results.items():
        rates = "/".join(f"{a / 1e6:.2f}" for a in achieved)
        print(
            f"EXT-WEIGHTED | {scheme:4s} | achieved {rates} Mbps "
            f"(weights 1/2/4) | weighted Jain {res.final_fairness:.4f}"
        )
        assert res.final_fairness > 0.95
        assert achieved[0] < achieved[1] < achieved[2]


def test_extension_information_bound(benchmark):
    scenario = ReplayScenario(name="ext/info", duration=0.2, seed=1)

    def run():
        schedule = build_recorded_schedule(scenario)
        return run_information_experiment(
            steps_in_t=(0.0, 0.5, 1.0, 4.0, 16.0, 64.0),
            scenario=scenario,
            schedule=schedule,
        )

    points = once(benchmark, run)
    print()
    for p in points:
        print(
            f"EXT-INFO | q={p.step_in_t:5.1f}T | overdue {p.fraction_overdue:.4f} "
            f"| overdue>T {p.fraction_overdue_beyond_t:.4f} "
            f"| max lateness {p.max_lateness:.2e}s"
        )
    exact = points[0].fraction_overdue_beyond_t
    one_t = next(p for p in points if p.step_in_t == 1.0)
    coarse = points[-1]
    # Robust to ~T of target error; collapses when information vanishes.
    assert one_t.fraction_overdue_beyond_t < exact + 0.02
    assert coarse.fraction_overdue_beyond_t > one_t.fraction_overdue_beyond_t
