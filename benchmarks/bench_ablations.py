"""Design-choice ablations called out in DESIGN.md.

* EDF static headers vs LSTF dynamic packet state — provably equivalent
  replays (Appendix E); the ablation confirms it at workload scale and
  compares their costs.
* Drop-highest-slack vs tail-drop for LSTF under finite buffers (§3's
  stated drop policy vs the naive default).
* DRR as the fairness baseline instead of FQ — Figure 4's conclusion
  should not depend on the precision of the baseline.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.experiments.fairness import run_fairness_experiment
from repro.experiments.replayability import ReplayScenario, build_recorded_schedule, run_replay


def test_ablation_edf_equals_lstf_at_scale(benchmark):
    scenario = ReplayScenario(name="ablation/edf", duration=0.15, seed=2)

    def run():
        schedule = build_recorded_schedule(scenario)
        lstf = run_replay(scenario, mode="lstf", schedule=schedule)
        edf = run_replay(scenario, mode="edf", schedule=schedule)
        return lstf, edf

    lstf, edf = once(benchmark, run)
    identical = np.allclose(lstf.result.lateness, edf.result.lateness, atol=1e-9)
    print(
        f"\nABLATION | EDF == LSTF lateness vectors: {identical} "
        f"({lstf.result.num_packets} packets)"
    )
    assert identical


def test_ablation_drr_baseline_for_fairness(benchmark):
    results = once(
        benchmark,
        run_fairness_experiment,
        (0.1,),            # one representative r_est fraction
        ("fq", "drr"),
        8,                 # num_flows
    )
    print()
    for name, res in results.items():
        print(f"ABLATION | fairness baseline {name:9s} final Jain {res.final_fairness:.4f}")
    assert results["fq"].final_fairness > 0.95
    assert results["drr"].final_fairness > 0.95
    assert results["lstf@0.1"].final_fairness > 0.95


def test_ablation_lstf_drop_policy(benchmark):
    """LSTF with §3's drop-highest-slack vs plain tail drop, under finite
    buffers and the FCT slack heuristic: dropping the laxest packet should
    not hurt (and normally helps) mean FCT."""
    from repro.core.heuristics import FlowSizeSlack
    from repro.schedulers.lstf import LstfScheduler
    from repro.sim.node import Router
    from repro.topology.internet2 import Internet2Config, build_internet2
    from repro.transport.tcp import install_tcp_flows
    from repro.workload.distributions import BoundedPareto
    from repro.workload.flows import PoissonWorkload, poisson_flows

    class TailDropLstf(LstfScheduler):
        """LSTF service order, naive drop-the-arrival policy."""

        def drop_victim(self, arriving, now):
            return arriving

    def run_one(scheduler_cls):
        cfg = Internet2Config(edges_per_core=2, bandwidth_scale=0.01)
        net = build_internet2(cfg)
        net.install_schedulers(
            lambda node, _p: None if node.startswith("h") else scheduler_cls()
        )
        net.set_buffers(20_000, node_filter=lambda n: isinstance(n, Router))
        flows = poisson_flows(
            hosts=[h.name for h in net.hosts],
            sizes=BoundedPareto(1.2, 1_500, 1_000_000),
            workload=PoissonWorkload(0.7, 10e6, duration=0.2, seed=4),
        )
        stats = install_tcp_flows(net, flows, slack_policy=FlowSizeSlack(),
                                  min_rto=0.05)
        net.run(until=8.0)
        return stats

    def run_both():
        return run_one(LstfScheduler), run_one(TailDropLstf)

    slack_drop, tail_drop = once(benchmark, run_both)
    print(
        f"\nABLATION | drop-highest-slack FCT {slack_drop.mean_fct():.4f} "
        f"({slack_drop.completed} flows) vs tail-drop {tail_drop.mean_fct():.4f} "
        f"({tail_drop.completed} flows)"
    )
    # Both must make progress; the paper's policy should not be worse by
    # more than noise.
    assert slack_drop.completed > 0.9 * tail_drop.completed
