"""Appendix constructions (Figures 5, 6, 7) as executable benchmarks.

Each run re-derives a theorem from the paper on the live simulator:

* Figure 6: the priority cycle — all six static priority orderings fail,
  LSTF replays perfectly.
* Figure 7: three congestion points — LSTF (preemptive or not) fails,
  the omniscient UPS succeeds.
* Figure 5: black-box impossibility — identical header inputs, opposite
  required decisions; every deterministic candidate fails one case.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.theory.blackbox import blackbox_gadget
from repro.theory.lstf_failure import lstf_three_congestion_gadget
from repro.theory.priority_cycle import all_priority_orderings_fail, priority_cycle_gadget


def test_figure6_priority_cycle(benchmark):
    def run():
        gadget = priority_cycle_gadget()
        return gadget.replay("lstf").perfect, all_priority_orderings_fail(gadget)

    lstf_perfect, priorities_fail = once(benchmark, run)
    print(f"\nFIG6 | LSTF perfect: {lstf_perfect} | all 6 priority orders fail: {priorities_fail}")
    assert lstf_perfect and priorities_fail


def test_figure7_three_congestion_points(benchmark):
    def run():
        gadget = lstf_three_congestion_gadget()
        return {
            mode: gadget.replay(mode).perfect
            for mode in ("lstf", "lstf-preemptive", "edf", "omniscient")
        }

    outcomes = once(benchmark, run)
    print(f"\nFIG7 | replay perfect by mode: {outcomes}")
    assert not outcomes["lstf"]
    assert not outcomes["lstf-preemptive"]
    assert not outcomes["edf"]
    assert outcomes["omniscient"]


def test_figure5_blackbox_impossibility(benchmark):
    def run():
        verdicts = {}
        for mode in ("lstf", "edf", "priority"):
            verdicts[mode] = [
                blackbox_gadget(case).replay(mode).perfect for case in (1, 2)
            ]
        verdicts["omniscient"] = [
            blackbox_gadget(case).replay("omniscient").perfect for case in (1, 2)
        ]
        return verdicts

    verdicts = once(benchmark, run)
    print(f"\nFIG5 | per-mode (case1, case2) perfection: {verdicts}")
    for mode in ("lstf", "edf", "priority"):
        assert not all(verdicts[mode]), mode
    assert all(verdicts["omniscient"])
