"""Congestion-point theorems, empirically (§2.2, Appendices F/G).

Sweeps randomized workloads, bins recorded schedules by their maximum
per-packet congestion point count, and measures replay success:

* preemptive LSTF is perfect whenever max CP <= 2 (Theorem, Appendix G),
* failures only appear at >= 3 congestion points,
* simple priorities (Appendix F assignment) are perfect at <= 1.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.core.flow import Flow
from repro.core.replay import RecordedPacket, record_schedule, replay_schedule
from repro.topology.simple import build_dumbbell, build_parking_lot, build_single_switch
from repro.transport.udp import install_udp_flows
import functools


def _sweep():
    results = {"lstf-preemptive": {}, "lstf": {}}
    for seed in range(12):
        rng = np.random.default_rng(seed)
        if seed % 2 == 0:
            make = functools.partial(
                build_dumbbell, num_pairs=4, host_bw=100e6, bottleneck_bw=20e6
            )
            flows = [
                Flow(fid=i + 1, src=f"s_{i}", dst=f"d_{i}",
                     size=int(rng.integers(1_000, 40_000)),
                     start=float(rng.uniform(0, 0.01)))
                for i in range(4)
            ]
        else:
            make = functools.partial(build_parking_lot, num_hops=3)
            flows = [
                Flow(fid=i + 1, src=f"h_in_{i % 4}", dst=f"h_out_{(i + 1) % 4}",
                     size=int(rng.integers(1_000, 40_000)),
                     start=float(rng.uniform(0, 0.01)))
                for i in range(6)
            ]
        net = make()
        install_udp_flows(net, flows)
        schedule = record_schedule(net)
        cp = schedule.max_congestion_points()
        for mode in results:
            outcome = replay_schedule(schedule, make, mode=mode)
            bucket = results[mode].setdefault(cp, [0, 0])
            bucket[0] += 1
            bucket[1] += int(outcome.perfect)
    return results


def test_congestion_point_hierarchy(benchmark):
    results = once(benchmark, _sweep)
    print()
    for mode, buckets in results.items():
        for cp, (runs, perfect) in sorted(buckets.items()):
            print(f"CP | {mode:16s} | maxCP={cp} | perfect {perfect}/{runs}")
    # Theorem: preemptive LSTF never fails at <= 2 congestion points.
    for cp, (runs, perfect) in results["lstf-preemptive"].items():
        if cp <= 2:
            assert perfect == runs, f"preemptive LSTF failed at maxCP={cp}"


def test_priorities_perfect_at_one_congestion_point(benchmark):
    """Appendix F: with priority(p) = o(p) - tmin(p, α_p, dest) + T(p, α_p)
    (the congestion point is known), one congestion point always replays."""
    make = functools.partial(build_single_switch, num_senders=4,
                             host_bw=1e9, bottleneck_bw=10e6)

    def run():
        successes = 0
        runs = 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            net = make()
            # Single-packet flows: each host sends exactly one packet, so
            # the shared switch is the only place anything can queue.
            flows = [
                Flow(fid=i + 1, src=f"s_{i}", dst="sink",
                     size=int(rng.integers(300, 1_400)),
                     start=float(rng.uniform(0, 0.004)))
                for i in range(4)
            ]
            install_udp_flows(net, flows)
            schedule = record_schedule(net)
            if schedule.max_congestion_points() > 1:
                continue
            runs += 1
            ref = make()

            def priority(rec: RecordedPacket) -> float:
                # α_p = SW; remaining tmin from SW includes the SW->sink hop.
                return (
                    rec.output_time
                    - ref.remaining_tmin("SW", rec.dst, rec.size)
                    + ref.links[("SW", "sink")].tx_time(rec.size)
                )

            outcome = replay_schedule(schedule, make, mode="priority",
                                      priority_fn=priority)
            successes += int(outcome.perfect)
        return successes, runs

    successes, runs = once(benchmark, run)
    print(f"\nCP | priorities @ 1 congestion point: perfect {successes}/{runs}")
    assert runs > 0
    assert successes == runs
