"""Figure 1 — CDF of the LSTF : original queueing-delay ratio (§2.3(6)).

For each original scheduling algorithm on the default Internet2 scenario,
replays with LSTF and prints the quantiles of the per-packet ratio of
replay queueing delay to original queueing delay.  The paper's surprise:
most packets see *less* queueing under LSTF (ratio below 1), because LSTF
eliminates "wasted waiting".
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import once
from repro.experiments.replayability import ReplayScenario, run_replay

SCHEDULERS = ("random", "fifo", "fq", "sjf", "lifo", "fq+fifo+")


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_fig1_delay_ratio_cdf(benchmark, scheduler):
    scenario = ReplayScenario(
        name=f"fig1/{scheduler}", scheduler=scheduler, duration=0.2, seed=1
    )
    outcome = once(benchmark, run_replay, scenario, "lstf")
    ratios = outcome.result.queueing_delay_ratios()
    quantiles = np.quantile(ratios, [0.1, 0.25, 0.5, 0.75, 0.9, 0.99])
    print(
        f"\nFIG1 | {scheduler:9s} | ratio quantiles "
        f"p10 {quantiles[0]:.3f}  p25 {quantiles[1]:.3f}  p50 {quantiles[2]:.3f}  "
        f"p75 {quantiles[3]:.3f}  p90 {quantiles[4]:.3f}  p99 {quantiles[5]:.3f} "
        f"| frac<=1: {float(np.mean(ratios <= 1.0 + 1e-9)):.3f}"
    )
    # The figure's shape: the median packet queues no longer than it
    # originally did.
    assert quantiles[2] <= 1.1
