"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at 1/100
bandwidth scale (see DESIGN.md for why the shape survives scaling) and
prints the rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated tables; without it you still get the timing
table and the assertions still guard the paper's qualitative claims.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    from repro.core.packet import reset_packet_ids

    reset_packet_ids()
    yield
    reset_packet_ids()


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    The experiments are deterministic, minutes-long at full fidelity, and
    dominated by simulation work — repeated rounds would only repeat the
    identical computation.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
