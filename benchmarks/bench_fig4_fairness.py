"""Figure 4 — asymptotic fairness with virtual-clock slacks (§3.3).

Paper reference: Jain index converges to 1.0 with FQ and with LSTF at
every rate estimate r_est <= r* (even 100x too small), converging slightly
sooner when r_est is closer to r*; FIFO never converges.

The bench runs the paper's five r_est fractions plus FIFO/FQ baselines
and prints the fairness trajectory endpoints and convergence times.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.experiments.fairness import run_fairness_experiment

FRACTIONS = (1.0, 0.5, 0.1, 0.05, 0.01)


def test_fig4_fairness_convergence(benchmark):
    results = once(
        benchmark,
        run_fairness_experiment,
        FRACTIONS,
        ("fifo", "fq"),
    )
    print()
    for name, res in results.items():
        t95 = res.time_to_reach(0.95)
        print(
            f"FIG4 | {name:10s} | final Jain {res.final_fairness:.4f} "
            f"| t(0.95) {'never' if t95 is None else f'{t95:.2f}s'}"
        )
    assert results["fq"].final_fairness > 0.95
    for frac in FRACTIONS:
        assert results[f"lstf@{frac:g}"].final_fairness > 0.95, frac
    assert results["fifo"].final_fairness < 0.8
    # Convergence no later for the exact estimate than the roughest one.
    t_exact = results["lstf@1"].time_to_reach(0.9)
    t_rough = results["lstf@0.01"].time_to_reach(0.9)
    assert t_exact is not None and t_rough is not None
    assert t_exact <= t_rough + 1e-9
