#!/usr/bin/env python
"""Datacenter scenario: replaying an incast burst on a fat-tree.

Incast — many servers answering one aggregator at once — is the classic
datacenter stress pattern (the pFabric workload the paper's Table 1
"Datacenter" row builds on).  This example:

1. builds a k=4 fat-tree at 1/100 scale,
2. fires a 15-server incast into one host plus background pairwise
   traffic, scheduled FIFO (the recorded original),
3. replays with LSTF and with the omniscient UPS, and
4. reports the replay quality and where the congestion points were.

Run:  python examples/datacenter_replay.py
"""

from __future__ import annotations

import functools

from repro import (
    BoundedPareto,
    Flow,
    FatTreeConfig,
    PoissonWorkload,
    build_fattree,
    install_udp_flows,
    poisson_flows,
    record_schedule,
    replay_schedule,
)


def main() -> None:
    cfg = FatTreeConfig(k=4, bandwidth_scale=0.01)  # 16 hosts, 100 Mbps links
    make_net = functools.partial(build_fattree, cfg)
    network = make_net()
    hosts = [h.name for h in network.hosts]
    aggregator = hosts[0]

    # The incast: every other host sends a 30 kB response to the aggregator
    # within a 1 ms window.
    incast = [
        Flow(fid=1000 + i, src=src, dst=aggregator, size=30_000,
             start=0.001 + i * 1e-5)
        for i, src in enumerate(hosts[1:])
    ]
    # Plus light background traffic between the other hosts.
    background = poisson_flows(
        hosts=hosts[1:],
        sizes=BoundedPareto(alpha=1.2, low=1_500, high=200_000),
        workload=PoissonWorkload(
            utilization=0.2,
            reference_bandwidth=cfg.bottleneck_bw,
            duration=0.05,
            seed=7,
        ),
    )
    install_udp_flows(network, incast + background)

    schedule = record_schedule(network, description="fat-tree incast")
    histogram = schedule.congestion_point_histogram()
    print(f"recorded {len(schedule)} packets (incast of {len(incast)} flows "
          f"into {aggregator})")
    print(f"congestion points per packet: {histogram}")
    print(f"max congestion points: {schedule.max_congestion_points()}")

    for mode in ("lstf", "omniscient"):
        result = replay_schedule(schedule, make_net, mode=mode)
        print(f"  {result.summary()}")

    print(
        "\nExpected shape: the burst plus background traffic pushes many "
        "packets to 3+ congestion\npoints — beyond LSTF's perfect-replay "
        "regime — yet well under 1% of packets end up more\nthan one "
        "transmission time late, while the omniscient replay stays perfect."
    )


if __name__ == "__main__":
    main()
