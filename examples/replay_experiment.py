#!/usr/bin/env python
"""Table 1 in miniature: LSTF replayability across scenarios (§2.3).

Records an "original" schedule on the scaled Internet2 topology under a
chosen scheduling algorithm and replays it with LSTF, printing the two
metrics of Table 1 (fraction of packets overdue, and overdue by more than
one bottleneck transmission time T), plus the queueing-delay-ratio
distribution behind Figure 1.

Run:  python examples/replay_experiment.py [scheduler ...]
      (schedulers: random fifo fq sjf lifo fq+fifo+ ; default: random fifo sjf)
"""

from __future__ import annotations

import sys

from repro.analysis.plots import ascii_cdf
from repro.analysis.tables import Table
from repro.experiments.replayability import ReplayScenario, run_replay


def main(schedulers: list[str]) -> None:
    table = Table(
        ["original scheduler", "packets", "overdue", "overdue > T"],
        title="LSTF replay of Internet2 (1G-10G) at 70% utilisation, 1/100 scale",
    )
    ratio_samples = {}
    for name in schedulers:
        scenario = ReplayScenario(
            name=f"i2/{name}", scheduler=name, duration=0.2, seed=7
        )
        outcome = run_replay(scenario, mode="lstf")
        table.add_row(
            [
                name,
                outcome.result.num_packets,
                outcome.fraction_overdue,
                outcome.fraction_overdue_beyond_t,
            ]
        )
        ratio_samples[name] = outcome.result.queueing_delay_ratios()
    print(table.render())

    print("\nFigure 1 (queueing delay ratio, LSTF : original) quantiles:")
    for name, ratios in ratio_samples.items():
        print(ascii_cdf(ratios, title=f"-- {name}", width=40))
    print(
        "\nExpected shape: most ratios fall below 1.0 — LSTF removes "
        "'wasted waiting' (§2.3(6))."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or ["random", "fifo", "sjf"])
