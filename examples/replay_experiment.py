#!/usr/bin/env python
"""Record once, replay many: a replay-mode sweep via the unified API (§2).

One Table 1 scenario, replayed under several candidate universal
schedulers.  The whole comparison is a single
:class:`~repro.api.spec.ExperimentSpec` with a ``replay_modes`` axis:
``sweep()`` expands it into one spec per mode, and
:func:`~repro.api.runner.run_many` records the original schedule
**exactly once** into the sweep's shared schedule store — every mode leg
replays the same content-addressed artifact (``docs/replay.md`` has the
full story).  The recording log printed at the end is the proof.

Run:  python examples/replay_experiment.py [mode ...]
      (modes: lstf lstf-preemptive edf edf-preemptive priority omniscient;
       default: lstf edf priority omniscient)
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import ScheduleStore
from repro.analysis.tables import Table
from repro.api import ExperimentSpec, run_many


def main(modes: list[str]) -> None:
    spec = ExperimentSpec(
        "table1",
        duration=0.1,
        options={"rows": (0,)},  # I2 1G-10G / 70% / Random
        replay_modes=tuple(modes),
    )
    legs = spec.sweep()

    with tempfile.TemporaryDirectory() as tmp:
        artifacts = run_many(legs, out_dir=tmp)
        recorded = ScheduleStore(Path(tmp) / "schedules").recorded_keys()

    merged = Table(
        ["replay mode", "packets", "overdue", "overdue > T"],
        title="I2 1G-10G / 70% / Random — one recording, many replays",
    )
    for artifact in artifacts:
        _scenario, packets, overdue, beyond = artifact.rows[0]
        merged.add_row([artifact.metadata["mode"], packets, overdue, beyond])
    print(merged.render())

    total = sum(a.wall_time_s for a in artifacts)
    print(f"\n{len(artifacts)} replay legs, {total:.1f}s of simulation wall "
          f"time, {len(recorded)} schedule recording(s): {recorded}")
    print(
        "\nExpected shape: the omniscient replay is perfect (Appendix B), "
        "LSTF and EDF agree\n(Appendix E) and miss almost nothing, while "
        "static priorities do noticeably worse\n— and the recording log "
        "shows the original schedule was simulated exactly once."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or ["lstf", "edf", "priority", "omniscient"])
