#!/usr/bin/env python
"""Table 1 in miniature, via the unified experiment API (§2.3).

Declares one :class:`~repro.api.spec.ExperimentSpec` per "original"
scheduling algorithm, fans the sweep out across worker processes with
:func:`~repro.api.runner.run_many`, and merges the per-scheduler
Figure 1 quantiles into one table.  The same artifacts serialise to JSON
(``artifact.save(dir)``) for later diffing — runs are deterministic, so
two invocations of this script produce byte-identical canonical JSON.

Run:  python examples/replay_experiment.py [scheduler ...]
      (schedulers: random fifo fq sjf lifo fq+fifo+ ; default: random fifo sjf)
"""

from __future__ import annotations

import sys

from repro.analysis.tables import Table
from repro.api import ExperimentSpec, run_many


def main(schedulers: list[str]) -> None:
    specs = [
        ExperimentSpec(
            "fig1",
            name=f"i2/{name}",
            schedulers=(name,),
            duration=0.2,
            seeds=(7,),
        )
        for name in schedulers
    ]
    artifacts = run_many(specs, workers=min(len(specs), 4))

    merged = Table(
        ["original scheduler", "p10", "p50", "p90", "p99", "frac <= 1"],
        title="LSTF replay of Internet2 (1G-10G) at 70% utilisation, 1/100 scale",
    )
    for artifact in artifacts:
        for row in artifact.rows:
            merged.add_row(row)
    print(merged.render())
    total = sum(a.wall_time_s for a in artifacts)
    print(f"\n{len(artifacts)} runs, {total:.1f}s of simulation wall time")
    print(
        "\nExpected shape: most ratio quantiles fall below 1.0 — LSTF "
        "removes 'wasted waiting' (§2.3(6))."
    )


if __name__ == "__main__":
    main(sys.argv[1:] or ["random", "fifo", "sjf"])
