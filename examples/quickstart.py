#!/usr/bin/env python
"""Quickstart: the unified experiment API, then the machinery underneath.

Part 1 — the front door.  Every paper artefact is a registered
experiment; an :class:`~repro.api.spec.ExperimentSpec` declares what to
run and :func:`repro.api.runner.run` returns a structured
:class:`~repro.api.results.RunArtifact` (rows + spec + timings) that
renders as ASCII or serialises to JSON.

Part 2 — under the hood.  The paper's core experiment (§2.3) end to end
on a small dumbbell network:

1. build a topology and an open-loop UDP workload,
2. run it under FIFO and *record* the schedule {(path(p), i(p), o(p))},
3. replay the same packets on a fresh network where every port runs
   LSTF, with slack headers initialised from the recorded output times,
4. report how many packets missed their original targets.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import functools

from repro import (
    BoundedPareto,
    ExperimentSpec,
    PoissonWorkload,
    build_dumbbell,
    install_udp_flows,
    poisson_flows,
    record_schedule,
    replay_schedule,
    run,
)


def main() -> None:
    # --- Part 1: declarative specs -> structured artifacts ---------------
    spec = ExperimentSpec("table1", duration=0.05, options={"rows": (0,)})
    artifact = run(spec)
    print(artifact.table().render())
    print(
        f"artifact: {len(artifact.rows)} row(s), "
        f"{artifact.wall_time_s:.2f}s wall; spec round-trips losslessly: "
        f"{ExperimentSpec.from_dict(spec.to_dict()) == spec}\n"
    )
    # The same spec runs sweeps: ExperimentSpec("table1", seeds=(1,2,3))
    # .sweep() + run_many(..., workers=3) fans out across processes, and
    # artifact.save(dir) persists the JSON for later comparison.

    # --- Part 2: the record/replay machinery itself -----------------------
    # A fresh-network factory: replay must start from empty queues on an
    # identical topology, so the experiment owns a builder, not a network.
    make_network = functools.partial(build_dumbbell, num_pairs=4)

    # 1. workload
    network = make_network()
    flows = poisson_flows(
        hosts=[h.name for h in network.hosts],
        sizes=BoundedPareto(alpha=1.2, low=1_500, high=100_000),
        workload=PoissonWorkload(
            utilization=0.7,
            reference_bandwidth=50e6,  # the dumbbell bottleneck
            duration=0.1,
            seed=42,
        ),
    )
    print(f"generated {len(flows)} flows over {len(network.hosts)} hosts")

    # 2. record the original (FIFO) schedule
    install_udp_flows(network, flows)
    schedule = record_schedule(network, description="dumbbell/FIFO/70%")
    print(
        f"recorded {len(schedule)} packets; "
        f"congestion points per packet: {schedule.congestion_point_histogram()}"
    )

    # 3 + 4. replay under candidate UPSes
    for mode in ("lstf", "edf", "priority", "omniscient"):
        result = replay_schedule(schedule, make_network, mode=mode)
        verdict = "PERFECT" if result.perfect else f"max lateness {result.max_lateness:.2e}s"
        print(f"  {result.summary():70s} [{verdict}]")

    print(
        "\nExpected shape: omniscient replay is perfect (Appendix B), LSTF "
        "and EDF agree (Appendix E)\nand miss few targets, while static "
        "priorities do noticeably worse."
    )


if __name__ == "__main__":
    main()
