#!/usr/bin/env python
"""Quickstart: record a schedule, replay it with LSTF, judge the result.

This walks the paper's core experiment (§2.3) end to end on a small
dumbbell network:

1. build a topology and an open-loop UDP workload,
2. run it under FIFO and *record* the schedule {(path(p), i(p), o(p))},
3. replay the same packets on a fresh network where every port runs
   LSTF, with slack headers initialised from the recorded output times,
4. report how many packets missed their original targets.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import functools

from repro import (
    BoundedPareto,
    PoissonWorkload,
    build_dumbbell,
    install_udp_flows,
    poisson_flows,
    record_schedule,
    replay_schedule,
)


def main() -> None:
    # A fresh-network factory: replay must start from empty queues on an
    # identical topology, so the experiment owns a builder, not a network.
    make_network = functools.partial(build_dumbbell, num_pairs=4)

    # --- 1. workload -----------------------------------------------------
    network = make_network()
    flows = poisson_flows(
        hosts=[h.name for h in network.hosts],
        sizes=BoundedPareto(alpha=1.2, low=1_500, high=100_000),
        workload=PoissonWorkload(
            utilization=0.7,
            reference_bandwidth=50e6,  # the dumbbell bottleneck
            duration=0.1,
            seed=42,
        ),
    )
    print(f"generated {len(flows)} flows over {len(network.hosts)} hosts")

    # --- 2. record the original (FIFO) schedule ---------------------------
    install_udp_flows(network, flows)
    schedule = record_schedule(network, description="dumbbell/FIFO/70%")
    print(
        f"recorded {len(schedule)} packets; "
        f"congestion points per packet: {schedule.congestion_point_histogram()}"
    )

    # --- 3 + 4. replay under candidate UPSes ------------------------------
    for mode in ("lstf", "edf", "priority", "omniscient"):
        result = replay_schedule(schedule, make_network, mode=mode)
        verdict = "PERFECT" if result.perfect else f"max lateness {result.max_lateness:.2e}s"
        print(f"  {result.summary():70s} [{verdict}]")

    print(
        "\nExpected shape: omniscient replay is perfect (Appendix B), LSTF "
        "and EDF agree (Appendix E)\nand miss few targets, while static "
        "priorities do noticeably worse."
    )


if __name__ == "__main__":
    main()
