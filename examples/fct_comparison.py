#!/usr/bin/env python
"""Figure 2 in miniature: mean FCT under FIFO / SJF / SRPT / LSTF (§3.1).

TCP flows on the scaled Internet2 topology with finite buffers; LSTF uses
the flow-size slack heuristic (slack = fs(p) * D).  Prints overall mean
FCT per scheme and the per-flow-size-bucket breakdown the figure plots.

Run:  python examples/fct_comparison.py
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.experiments.fct import run_fct_experiment


def main() -> None:
    # Note: at 1/100 scale a handful of elephant flows dominate the mean,
    # so individual seeds are noisy; the bench harness averages seeds.
    results = run_fct_experiment(duration=0.3, seed=1)

    summary = Table(
        ["scheme", "flows done", "mean FCT (s)", "retransmissions"],
        title="Mean flow completion time, Internet2 at 70% utilisation (1/100 scale)",
    )
    for name, res in results.items():
        summary.add_row(
            [
                name,
                res.stats.completed,
                res.mean_fct,
                sum(res.stats.retransmissions.values()),
            ]
        )
    print(summary.render())

    buckets = Table(
        ["flow size bucket"] + list(results),
        title="\nMean FCT by flow-size bucket (seconds)",
    )
    reference = results["fifo"].buckets
    for i, bucket in enumerate(reference):
        row = [bucket.label]
        for name in results:
            scheme_buckets = results[name].buckets
            row.append(scheme_buckets[i].mean_fct if i < len(scheme_buckets) else "-")
        buckets.add_row(row)
    print(buckets.render())

    print(
        "\nExpected shape (paper Figure 2): SJF ~ SRPT clearly beat FIFO, "
        "and LSTF with the\nflow-size slack heuristic lands next to them."
    )


if __name__ == "__main__":
    main()
