#!/usr/bin/env python
"""Figure 3 in miniature: tail packet delays, FIFO vs LSTF/FIFO+ (§3.2).

Identical UDP workloads under FIFO and under LSTF with a constant slack
(which the paper shows is exactly FIFO+ [11]).  Prints the mean and the
high percentiles — the paper's claim is that the mean barely moves while
the tail shrinks.

Run:  python examples/tail_latency.py
"""

from __future__ import annotations

from repro.analysis.plots import ascii_cdf
from repro.analysis.tables import Table
from repro.experiments.tail import run_tail_experiment


def main() -> None:
    results = run_tail_experiment(
        schemes=("fifo", "lstf-constant", "fifo+"), duration=0.3, seed=5
    )
    table = Table(
        ["scheme", "packets", "mean (s)", "p99 (s)", "p99.9 (s)", "max (s)"],
        title="End-to-end packet delay, Internet2 at 70% utilisation (1/100 scale)",
    )
    for name, res in results.items():
        table.add_row(
            [name, len(res.delays), res.mean, res.p99, res.p999, res.max]
        )
    print(table.render())

    print("\nDelay distribution (complementary view via quantiles):")
    for name, res in results.items():
        print(ascii_cdf(res.delays, title=f"-- {name}", width=40,
                        points=(0.5, 0.9, 0.99, 0.999, 1.0)))

    print(
        "\nExpected shape (paper Figure 3): means within a few percent, "
        "p99/p99.9 visibly lower\nfor LSTF-constant and FIFO+ (which should "
        "track each other — they are the same algorithm)."
    )


if __name__ == "__main__":
    main()
