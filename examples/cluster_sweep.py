#!/usr/bin/env python
"""Distributed sweeps with ``repro.cluster``: submit → workers → gather.

The paper's replayability and FCT claims rest on sweeps — the same
experiment across many seeds — and those are embarrassingly parallel.
This example shards one sweep three ways and shows they all agree
byte-for-byte:

1. the one-liner: ``run_many(..., executor="queue")`` (submits, spawns
   local drain workers, gathers);
2. the explicit client API: ``submit`` → ``Worker.drain`` → ``status``
   → ``gather``, the same calls `repro submit/worker/status` make from
   the shell;
3. the serial reference run.

Everything happens in a temporary queue directory; in real use the
queue directory lives on shared storage and ``repro worker`` daemons
run wherever there are spare cores.

Run:  python examples/cluster_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import ExperimentSpec, run_many
from repro.cluster import JobQueue, Worker, gather, status, submit


def main() -> None:
    sweep = ExperimentSpec(
        "table1", duration=0.05, seeds=(1, 2, 3, 4), options={"rows": (0,)}
    ).sweep()

    with tempfile.TemporaryDirectory() as tmp:
        # --- 1. the one-liner: queue executor through run_many -----------
        queue_dir = Path(tmp) / "q1"
        distributed = run_many(
            sweep, workers=2, executor="queue", queue_dir=queue_dir
        )
        print(f"queue executor: gathered {len(distributed)} artifacts "
              f"via {queue_dir}")

        # --- 2. the explicit trio: submit -> worker -> status/gather ------
        queue_dir = Path(tmp) / "q2"
        job_ids = submit(sweep, queue_dir)
        print(f"submitted jobs {job_ids}")
        # In production these are `repro worker --queue ...` daemons on
        # other cores of the host; here, one in-process drain worker.
        Worker(JobQueue(queue_dir), worker_id="example-worker").drain()
        print(status(queue_dir).render())
        gathered = gather(queue_dir, job_ids, timeout=60)

        # --- 3. the reference: a serial run of the same sweep -------------
        serial = run_many(sweep)

    identical = (
        [a.canonical_json() for a in distributed]
        == [a.canonical_json() for a in gathered]
        == [a.canonical_json() for a in serial]
    )
    print(f"\nserial ≡ queue-executor ≡ submit/gather, byte-for-byte: "
          f"{identical}")
    print(gathered[0].table().render())


if __name__ == "__main__":
    main()
