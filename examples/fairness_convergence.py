#!/usr/bin/env python
"""Figure 4 in miniature: asymptotic fairness with virtual-clock slacks (§3.3).

Long-lived TCP flows share one bottleneck.  LSTF initialises slacks with
the virtual-clock recurrence at several estimates of the fair share rate
r*; the paper's claim is convergence to a Jain index of 1.0 for *every*
estimate r_est <= r*, only slightly later for rougher estimates.

Run:  python examples/fairness_convergence.py
"""

from __future__ import annotations

from repro.analysis.plots import ascii_series
from repro.analysis.tables import Table
from repro.experiments.fairness import run_fairness_experiment


def main() -> None:
    results = run_fairness_experiment(
        rest_fractions=(1.0, 0.5, 0.1, 0.05, 0.01),
        baselines=("fifo", "fq", "drr"),
        horizon=2.5,
    )
    table = Table(
        ["scheme", "final Jain index", "time to 0.95 (s)"],
        title="Fairness of 10 long-lived TCP flows over one bottleneck",
    )
    for name, res in results.items():
        table.add_row([name, res.final_fairness, res.time_to_reach(0.95) or "never"])
    print(table.render())

    print("\nConvergence of the roughest estimate (r_est = r*/100):")
    worst = results["lstf@0.01"]
    print(ascii_series(worst.times, worst.fairness, title="Jain index vs time",
                       width=40, max_rows=12))
    print(
        "\nExpected shape (paper Figure 4): FQ (and DRR) converge to 1.0; "
        "LSTF converges for\nevery r_est, slightly sooner when r_est is "
        "close to r*; FIFO stays unfair."
    )


if __name__ == "__main__":
    main()
