#!/usr/bin/env python
"""The paper's appendix constructions, run live (Figures 5, 6, 7).

Three hand-crafted networks prove the replayability hierarchy:

* Figure 6 / Appendix F — a *priority cycle*: no static priority
  assignment can replay it, but LSTF can (two congestion points).
* Figure 7 / Appendix G — three congestion points defeat LSTF itself.
* Figure 5 / Appendix C — two schedules that agree on every black-box
  header input yet need opposite decisions: no deterministic UPS exists.

Run:  python examples/theory_counterexamples.py
"""

from __future__ import annotations

from repro.theory.blackbox import blackbox_gadget
from repro.theory.lstf_failure import lstf_three_congestion_gadget
from repro.theory.priority_cycle import all_priority_orderings_fail, priority_cycle_gadget


def show(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    show("Figure 6: the priority cycle (Appendix F)")
    gadget = priority_cycle_gadget()
    lstf = gadget.replay("lstf")
    print(f"LSTF replay perfect?           {lstf.perfect}")
    print(f"all 6 priority orderings fail? {all_priority_orderings_fail(gadget)}")
    print("-> static priorities cannot even handle two congestion points;")
    print("   LSTF's hop-by-hop slack rewriting breaks the cycle.")

    show("Figure 7: three congestion points defeat LSTF (Appendix G)")
    gadget = lstf_three_congestion_gadget()
    for mode in ("lstf", "lstf-preemptive", "omniscient"):
        result = gadget.replay(mode)
        late = gadget.overdue_names(result)
        print(f"{mode:16s} perfect? {str(result.perfect):5s}  overdue: {late}")
    print("-> with three congestion points, LSTF cannot know where to spend")
    print("   packet a's slack; only the omniscient per-hop timetable wins.")

    show("Figure 5: no black-box UPS exists at all (Appendix C)")
    for case in (1, 2):
        gadget = blackbox_gadget(case)
        schedule = gadget.record()
        a = next(p for p in schedule.packets if gadget.packet_name(p.pid) == "a")
        x = next(p for p in schedule.packets if gadget.packet_name(p.pid) == "x")
        lstf = gadget.replay("lstf")
        print(
            f"case {case}: a=(i={a.ingress_time:g}, o={a.output_time:g}) "
            f"x=(i={x.ingress_time:g}, o={x.output_time:g})  "
            f"LSTF perfect? {lstf.perfect}"
        )
    print("-> packets a and x look identical to the ingress in both cases,")
    print("   so any deterministic header initialisation fails one of them.")


if __name__ == "__main__":
    main()
