"""Per-packet tracing.

The tracer records, for every packet, the quantities the paper's analysis
is built on (Appendix A notation in parentheses):

* ``created`` — ingress arrival time (``i(p)``),
* ``exit`` — last-bit network exit time (``o(p)``),
* ``path`` — the ordered node names the packet traversed,
* ``hop_tx`` — per transmitting hop, the time the first bit was scheduled
  (``o(p, α)``), which feeds the omniscient replay of Appendix B,
* ``hop_waits`` — per transmitting hop, the queueing delay, which feeds the
  congestion-point analysis (§2.2) and the queueing-delay-ratio CDF
  (Figure 1),
* drop bookkeeping for the finite-buffer experiments of §3.

Records are plain ``__slots__`` objects because millions of packets flow
through a single experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet

__all__ = ["PacketRecord", "Tracer"]


class PacketRecord:
    """Trace of one packet's traversal."""

    __slots__ = (
        "pid",
        "flow_id",
        "size",
        "src",
        "dst",
        "created",
        "exit",
        "path",
        "hop_tx",
        "hop_waits",
        "dropped_at",
    )

    def __init__(self, packet: "Packet") -> None:
        self.pid = packet.pid
        self.flow_id = packet.flow_id
        self.size = packet.size
        self.src = packet.src
        self.dst = packet.dst
        self.created = packet.created
        self.exit: float | None = None
        self.path: list[str] = []
        self.hop_tx: list[float] = []
        self.hop_waits: list[float] = []
        self.dropped_at: str | None = None

    # --- derived quantities ------------------------------------------------

    @property
    def delivered(self) -> bool:
        return self.exit is not None

    @property
    def total_delay(self) -> float:
        """End-to-end delay; raises if the packet never exited."""
        if self.exit is None:
            raise ValueError(f"packet {self.pid} was not delivered")
        return self.exit - self.created

    @property
    def total_wait(self) -> float:
        """Total queueing delay over all hops."""
        return sum(self.hop_waits)

    def congestion_points(self, epsilon: float = 1e-12) -> int:
        """Number of hops at which the packet was forced to wait (§2.2)."""
        return sum(1 for w in self.hop_waits if w > epsilon)

    # --- checkpoint support -------------------------------------------------

    # A warmed-up network carries one record per warm-up packet, so
    # records dominate checkpoint payloads.  Pickling the slot values as
    # one flat tuple (instead of the default per-object slot *dict*)
    # makes the restore path — the per-leg cost of a branch sweep —
    # markedly cheaper.  Field order is the ``__slots__`` declaration.

    def __getstate__(self) -> tuple:
        return tuple(getattr(self, name) for name in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for name, value in zip(self.__slots__, state):
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"exit={self.exit:.6f}" if self.exit is not None else "in-flight"
        if self.dropped_at is not None:
            state = f"dropped@{self.dropped_at}"
        return f"<PacketRecord #{self.pid} {self.src}->{self.dst} {state}>"


class Tracer:
    """Collects :class:`PacketRecord` objects for a simulation run."""

    __slots__ = ("records", "drops", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        self.records: dict[int, PacketRecord] = {}
        self.drops: int = 0
        self.enabled = enabled

    # --- hooks called by the simulator -------------------------------------

    def on_created(self, packet: "Packet", node: str) -> None:
        if not self.enabled:
            return
        rec = PacketRecord(packet)
        rec.path.append(node)
        self.records[packet.pid] = rec
        # Cache the record on the packet: the per-hop hooks below run once
        # per packet per hop and skip the records-dict lookup this way.
        packet.trace = rec

    # Every per-hop hook below guards the same two ways: a disabled
    # tracer records nothing (not even the ``drops`` counter — a
    # disabled tracer must be a pure no-op, so enabled/disabled runs
    # differ only in what is *observed*), and ``packet.trace`` may be
    # ``None`` for a packet created while the tracer was disabled (or
    # toggled mid-run) — such packets are simply invisible.

    def on_hop(self, packet: "Packet", node: str) -> None:
        """Packet fully received (last bit) at an intermediate node."""
        if not self.enabled:
            return
        rec = packet.trace
        if rec is not None:
            rec.path.append(node)

    def on_tx_start(self, packet: "Packet", wait: float, now: float) -> None:
        """Packet selected for transmission after ``wait`` seconds in queue."""
        if not self.enabled:
            return
        rec = packet.trace
        if rec is not None:
            rec.hop_tx.append(now)
            rec.hop_waits.append(wait)

    def on_exit(self, packet: "Packet", now: float) -> None:
        """Last bit of the packet delivered at its destination."""
        if not self.enabled:
            return
        rec = packet.trace
        if rec is not None:
            rec.exit = now

    def on_drop(self, packet: "Packet", node: str) -> None:
        if not self.enabled:
            return
        self.drops += 1
        rec = packet.trace
        if rec is not None:
            rec.dropped_at = node

    # --- queries ------------------------------------------------------------

    def delivered_records(self) -> Iterable[PacketRecord]:
        """Records of packets that exited the network."""
        return (r for r in self.records.values() if r.exit is not None)

    def delivered_count(self) -> int:
        return sum(1 for r in self.records.values() if r.exit is not None)

    def __len__(self) -> int:
        return len(self.records)
