"""Point-to-point links.

A :class:`Link` is a unidirectional pipe with a bandwidth and a propagation
delay.  Bidirectional connectivity is modelled by the network installing
one link (and therefore one output port) in each direction.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.units import tx_time

__all__ = ["Link"]


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Parameters
    ----------
    src, dst:
        Node names at the two ends.
    bandwidth:
        Bits per second.  ``math.inf`` is allowed (zero transmission time),
        used by the theory gadgets to model "uncongested" routers.
    propagation:
        One-way propagation delay, seconds.
    """

    __slots__ = ("src", "dst", "bandwidth", "propagation", "tx_per_byte")

    def __init__(self, src: str, dst: str, bandwidth: float, propagation: float) -> None:
        if bandwidth <= 0:
            raise ConfigurationError(
                f"link {src}->{dst}: bandwidth must be positive, got {bandwidth!r}"
            )
        if propagation < 0 or math.isnan(propagation):
            raise ConfigurationError(
                f"link {src}->{dst}: propagation must be >= 0, got {propagation!r}"
            )
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.propagation = propagation
        #: Serialisation seconds per byte — the hot path multiplies by this
        #: instead of calling :func:`repro.units.tx_time` per packet.
        self.tx_per_byte = 0.0 if math.isinf(bandwidth) else 8.0 / bandwidth

    def tx_time(self, size_bytes: float) -> float:
        """Serialisation delay of a packet of ``size_bytes`` on this link."""
        if size_bytes < 0:
            return tx_time(size_bytes, self.bandwidth)  # raises with context
        return size_bytes * self.tx_per_byte

    def traversal_time(self, size_bytes: float) -> float:
        """Uncongested last-bit traversal time: transmit + propagate."""
        return self.tx_time(size_bytes) + self.propagation

    def utilisation(self, nbytes: float, window: float) -> float:
        """Fraction of capacity used by ``nbytes`` sent during ``window`` s.

        Infinite-bandwidth links (theory gadgets) report 0.0 — they are
        never a bottleneck, so "utilisation" is not meaningful there.
        """
        if window <= 0.0 or math.isinf(self.bandwidth):
            return 0.0
        return (nbytes * 8.0) / (self.bandwidth * window)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.src}->{self.dst} bw={self.bandwidth:.3g}bps "
            f"prop={self.propagation:.3g}s>"
        )
