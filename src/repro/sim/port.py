"""Output ports.

A :class:`Port` is the attachment point of one unidirectional link to its
transmitting node.  It owns a scheduler, a (possibly finite) byte buffer,
and the busy/idle state machine of the transmitter:

* ``enqueue`` — a fully received packet is handed to the scheduler (after
  the drop policy has made room if the buffer is full),
* when the transmitter is idle and the scheduler offers a packet, the port
  occupies the link for the serialisation delay and then, one propagation
  delay later, delivers the packet to the node at the far end
  (store-and-forward: the next node sees the packet only when its last bit
  has arrived).

This is the per-packet hot path, so ports cache everything that is
invariant for the port's lifetime — the engine, the tracer, the link's
per-byte serialisation cost, the peer node's bound ``receive`` — instead
of chasing ``node.network.engine``-style attribute chains per event.

Non-work-conserving schedulers (the timetable oracle used by the theory
gadgets) may decline to hand over a packet; the port then schedules a
wake-up at ``scheduler.earliest_release``.

:class:`PreemptivePort` implements the preemptive service model the
theoretical results assume for the candidate UPS (§2.1 footnote 3): if a
packet with a strictly smaller static urgency key arrives while another is
being transmitted, the transmission is paused and resumed later with its
remaining serialisation time intact.  Slack continues to drain while a
packet is paused — only time spent actually transmitting is "free"
(Appendix D).  It works with any scheduler exposing ``preemption_key``
(LSTF, EDF, static priorities, omniscient).
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.units import TIME_EPSILON

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet
    from repro.schedulers.base import Scheduler
    from repro.sim.link import Link
    from repro.sim.node import Node

__all__ = ["Port", "PreemptivePort"]


class Port:
    """Non-preemptive output port (the default service model)."""

    __slots__ = (
        "node",
        "link",
        "scheduler",
        "buffer_bytes",
        "buffered",
        "busy",
        "aqm",
        "_queued",
        "_wakeup",
        "_decision_pending",
        "_dst_node",
        "_receive",
        "_engine",
        "_tracer",
        "_obs",
        "_tx_per_byte",
        "_prop",
    )

    def __init__(
        self,
        node: "Node",
        link: "Link",
        scheduler: "Scheduler",
        buffer_bytes: float = math.inf,
    ) -> None:
        if buffer_bytes <= 0:
            raise ConfigurationError(
                f"port {link.src}->{link.dst}: buffer must be positive bytes or inf"
            )
        self.node = node
        self.link = link
        self.scheduler = scheduler
        self.buffer_bytes = buffer_bytes
        self.buffered = 0
        self.busy = False
        self.aqm = None  # optional RedAqm (see repro.sim.aqm)
        # Queue depth mirrored here: the port mediates every scheduler
        # mutation, and an int attribute beats two Python calls per len().
        self._queued = 0
        self._wakeup = None
        self._decision_pending = False
        self._dst_node: "Node | None" = None  # resolved lazily from the network
        self._receive = None  # the peer's bound ``receive``, cached with it
        self._engine = node.network.engine
        self._tracer = node.network.tracer
        # The metrics hub, cached like the tracer: None (one is-None test
        # per instrumented event — the zero-cost-when-off guard) unless a
        # hub attached itself to the network (see repro.obs.hub).
        self._obs = node.network.obs
        self._tx_per_byte = link.tx_per_byte
        self._prop = link.propagation
        scheduler.attach(self)

    # --- wiring -----------------------------------------------------------

    @property
    def engine(self):
        return self._engine

    def _peer(self) -> "Node":
        if self._dst_node is None:
            self._dst_node = self.node.network.nodes[self.link.dst]
            self._receive = self._dst_node.receive
        return self._dst_node

    def _peer_receive(self):
        receive = self._receive
        if receive is None:
            self._peer()
            receive = self._receive
        return receive

    def set_scheduler(self, scheduler: "Scheduler") -> None:
        """Swap the scheduling discipline.  Only legal on an empty, idle port."""
        if self.busy or len(self.scheduler):
            raise ConfigurationError(
                f"cannot replace scheduler on active port {self.link.src}->{self.link.dst}"
            )
        scheduler.attach(self)
        self.scheduler = scheduler

    def set_buffer(self, buffer_bytes: float) -> None:
        if buffer_bytes <= 0:
            raise ConfigurationError("buffer must be positive bytes or inf")
        self.buffer_bytes = buffer_bytes

    def set_aqm(self, aqm) -> None:
        """Attach an active queue manager (early-drop decisions on arrival)."""
        self.aqm = aqm

    # --- data path ----------------------------------------------------------

    def enqueue(self, packet: "Packet") -> None:
        """Admit a fully received packet; apply the drop policy if full."""
        now = self._engine.now
        tracer = self._tracer
        scheduler = self.scheduler
        if (
            not self.busy
            and self._queued == 0
            and self._prop == 0.0
            and packet.size * self._tx_per_byte == 0.0
        ):
            # Infinitely fast idle hop: never a contention point; deliver
            # synchronously so the packet is visible at its next real
            # queue within the event that produced it (the simultaneity
            # convention — see Engine.defer).
            packet.enqueue_time = now
            tracer.on_tx_start(packet, 0.0, now)
            self._peer_receive()(packet)
            return
        if self.aqm is not None and self.aqm.should_drop(packet, self.buffered, now):
            if getattr(self.aqm, "slack_aware", False):
                # Early-drop the scheduler's victim (highest remaining
                # slack under LSTF) instead of the arrival.
                victim = scheduler.drop_victim(packet, now)
                tracer.on_drop(victim, self.node.name)
                if self._obs is not None:
                    self._obs.drop(self.link, "red")
                if victim is packet:
                    return
                self.buffered -= victim.size
                self._queued -= 1
            else:
                tracer.on_drop(packet, self.node.name)
                if self._obs is not None:
                    self._obs.drop(self.link, "red")
                return
        while self.buffered + packet.size > self.buffer_bytes:
            victim = scheduler.drop_victim(packet, now)
            tracer.on_drop(victim, self.node.name)
            if self._obs is not None:
                self._obs.drop(self.link, "overflow")
            if victim is packet:
                return
            self.buffered -= victim.size
            self._queued -= 1
        packet.enqueue_time = now
        scheduler.push(packet, now)
        self.buffered += packet.size
        self._queued += 1
        if not self.busy and not self._decision_pending:
            self._decision_pending = True
            self._engine.defer(self._decide)

    def _request_decision(self) -> None:
        """Defer the next service decision to the end of this timestamp.

        All packets arriving at the current instant must be queued before
        the scheduler chooses (the paper's simultaneity convention); the
        engine's two-phase loop guarantees that for deferred callbacks.
        """
        if self._decision_pending:
            return
        self._decision_pending = True
        self._engine.defer(self._decide)

    def _decide(self) -> None:
        self._decision_pending = False
        self._try_send()

    def _try_send(self) -> None:
        engine = self._engine
        scheduler = self.scheduler
        tracer = self._tracer
        while not self.busy and self._queued:
            now = engine.now
            packet = scheduler.pop(now)
            if packet is None:
                self._arm_wakeup(now)
                return
            self._queued -= 1
            self.buffered -= packet.size
            wait = now - packet.enqueue_time
            aqm = self.aqm
            if (
                aqm is not None
                and getattr(aqm, "dequeue_side", False)
                and aqm.on_dequeue(packet, wait, now)
            ):
                # Dequeue-side AQM (CoDel): head drop, try the next packet.
                tracer.on_drop(packet, self.node.name)
                if self._obs is not None:
                    self._obs.drop(self.link, "codel")
                continue
            packet.queue_wait += wait
            tracer.on_tx_start(packet, wait, now)
            if self._obs is not None:
                self._obs.tx(self.link, packet.size)
            tx = packet.size * self._tx_per_byte
            if tx == 0.0 and self._prop == 0.0:
                # Infinitely fast hop: deliver synchronously.  Routing
                # same-instant traversals through the event heap would let
                # a packet arriving at time t lose a tie against a
                # transmit-completion at t purely by event-creation order;
                # the theory gadgets (and common sense) require arrivals at
                # t to be visible to scheduling decisions at t.
                self._peer_receive()(packet)
                continue
            self.busy = True
            engine.schedule(tx, self._tx_done, packet)
            return

    def _tx_done(self, packet: "Packet") -> None:
        self.busy = False
        if self._prop == 0.0:
            self._peer_receive()(packet)
        else:
            self._engine.schedule(self._prop, self._peer_receive(), packet)
        if self._queued:
            self._request_decision()
        elif self.aqm is not None:
            self.aqm.on_idle(self._engine.now)

    # --- non-work-conserving support --------------------------------------

    def _arm_wakeup(self, now: float) -> None:
        release = self.scheduler.earliest_release(now)
        if release is None:
            raise SimulationError(
                f"scheduler {self.scheduler.name} at {self.link.src}->"
                f"{self.link.dst} returned no packet and no release time "
                f"despite holding {len(self.scheduler)} packets"
            )
        if self._wakeup is not None and not self._wakeup.cancelled:
            if self._wakeup.time <= release + TIME_EPSILON:
                return
            self._wakeup.cancel()
        self._wakeup = self._engine.schedule_cancellable_at(
            max(release, now), self._on_wakeup
        )

    def _on_wakeup(self) -> None:
        self._wakeup = None
        self._request_decision()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Port {self.link.src}->{self.link.dst} sched={self.scheduler.name} "
            f"queued={len(self.scheduler)} busy={self.busy}>"
        )


class _PreemptedState:
    """Remaining work and accounting for a packet at a preemptive port."""

    __slots__ = ("remaining_tx", "first_service")

    def __init__(self, remaining_tx: float) -> None:
        self.remaining_tx = remaining_tx
        self.first_service: float | None = None


class PreemptivePort(Port):
    """Preemptive-resume service ordered by the scheduler's static keys.

    The attached scheduler is consulted only for ``preemption_key`` (and
    for header rewriting conventions); the port keeps its own heap so that
    pausing and resuming does not disturb the scheduler's queue invariants.
    Finite buffers are deliberately unsupported — preemption is used only
    by the replay/theory machinery, which runs dropless.
    """

    __slots__ = ("_heap", "_seq", "_state", "_current", "_current_key",
                 "_serve_start", "_done_handle")

    def __init__(self, node, link, scheduler, buffer_bytes: float = math.inf) -> None:
        if not math.isinf(buffer_bytes):
            raise ConfigurationError("PreemptivePort does not support finite buffers")
        super().__init__(node, link, scheduler, buffer_bytes)
        self._heap: list[tuple[float, int, "Packet"]] = []
        self._seq = 0
        self._state: dict[int, _PreemptedState] = {}
        self._current: "Packet | None" = None
        self._current_key = math.inf
        self._serve_start = 0.0
        self._done_handle = None

    # --- data path ------------------------------------------------------------

    def enqueue(self, packet: "Packet") -> None:
        now = self._engine.now
        tx = packet.size * self._tx_per_byte
        if tx == 0.0 and self._prop == 0.0:
            # Infinitely fast hop: never a contention point; deliver
            # synchronously (same rationale as Port._try_send).
            packet.enqueue_time = now
            self._tracer.on_tx_start(packet, 0.0, now)
            self._peer_receive()(packet)
            return
        packet.enqueue_time = now  # must precede the key: LSTF keys use it
        key = self.scheduler.preemption_key(packet)
        if key is None:
            raise ConfigurationError(
                f"scheduler {self.scheduler.name} does not support preemption"
            )
        self._seq += 1
        heapq.heappush(self._heap, (key, self._seq, packet))
        self._state[packet.pid] = _PreemptedState(tx)
        self._request_decision()

    def _decide(self) -> None:
        self._decision_pending = False
        self._consider(self._engine.now)

    def _consider(self, now: float) -> None:
        if self._current is None:
            self._start_best(now)
            return
        if self._heap and self._heap[0][0] < self._current_key - TIME_EPSILON:
            self._preempt(now)
            self._start_best(now)

    def _preempt(self, now: float) -> None:
        packet = self._current
        assert packet is not None and self._done_handle is not None
        self._done_handle.cancel()
        state = self._state[packet.pid]
        state.remaining_tx -= now - self._serve_start
        self._seq += 1
        heapq.heappush(self._heap, (self._current_key, self._seq, packet))
        self._current = None

    def _start_best(self, now: float) -> None:
        if not self._heap:
            return
        key, _seq, packet = heapq.heappop(self._heap)
        state = self._state[packet.pid]
        if state.first_service is None:
            state.first_service = now
            wait = now - packet.enqueue_time
            self._tracer.on_tx_start(packet, wait, now)
            if self._obs is not None:
                self._obs.tx(self.link, packet.size)
        self._current = packet
        self._current_key = key
        self._serve_start = now
        self.busy = True
        self._done_handle = self._engine.schedule_cancellable(
            state.remaining_tx, self._finish, packet
        )

    def _finish(self, packet: "Packet") -> None:
        now = self._engine.now
        self._current = None
        self._current_key = math.inf
        self.busy = False
        del self._state[packet.pid]
        # Header/accounting update: everything between arrival and last-bit
        # departure except the serialisation time itself was "waiting"
        # (Appendix D: slack drains whenever the last bit is not on the wire).
        total_wait = (now - packet.enqueue_time) - packet.size * self._tx_per_byte
        packet.queue_wait += total_wait
        self._apply_dynamic_state(packet, total_wait)
        if self._prop == 0.0:
            self._peer_receive()(packet)
        else:
            self._engine.schedule(self._prop, self._peer_receive(), packet)
        if self._heap:
            self._request_decision()

    def _apply_dynamic_state(self, packet: "Packet", total_wait: float) -> None:
        """Rewrite dynamic headers the way the scheduler's discipline requires."""
        if self.scheduler.name == "lstf":
            packet.slack -= total_wait

    def _try_send(self) -> None:  # pragma: no cover - defensive
        raise SimulationError("PreemptivePort manages its own service loop")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PreemptivePort {self.link.src}->{self.link.dst} "
            f"sched={self.scheduler.name} queued={len(self._heap)} busy={self.busy}>"
        )
