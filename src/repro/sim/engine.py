"""Deterministic discrete-event engine.

The engine is a binary heap of flat ``(time, sequence, callback, args)``
entries.  The monotonically increasing sequence number breaks ties between
events scheduled for the same instant, which makes every run fully
deterministic — a hard requirement for the record/replay experiments,
where the recorded schedule must be byte-for-byte repeatable.

Two scheduling paths share the heap:

* :meth:`Engine.schedule` / :meth:`Engine.schedule_at` — the hot path.
  Entries are plain tuples; no per-event object is allocated and nothing
  is returned.  The overwhelming majority of events (transmission
  completions, propagation deliveries, packet injections) are never
  cancelled, so they never need a handle.
* :meth:`Engine.schedule_cancellable` /
  :meth:`Engine.schedule_cancellable_at` — returns an
  :class:`EventHandle` whose :meth:`~EventHandle.cancel` marks the entry
  dead (lazy deletion).  This is how TCP retransmission timers are
  restarted and how preemptive ports abort an in-flight
  transmission-complete event.

Because sequence numbers are unique, heap comparisons never reach the
third tuple element, so callbacks and handles can share the heap without
being comparable themselves.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from heapq import heappop, heappush
from math import inf
from time import perf_counter
from typing import Any, Callable, Iterator

from repro.errors import SimulationError

__all__ = ["Engine", "EventHandle", "EnginePerf", "ENGINE_PERF"]

#: Sentinel in the ``args`` slot marking a cancellable entry, whose
#: ``callback`` slot holds the :class:`EventHandle` instead of a callable.
_CANCELLABLE = object()

#: Serialisable stand-in for :data:`_CANCELLABLE` in checkpoint state.
#: The sentinel is recognised by identity, which pickling cannot
#: preserve, so checkpoints encode the args slot as this string instead
#: (unambiguous: a live entry's args slot is always a tuple or the
#: sentinel, never a string).
_CANCELLABLE_MARKER = "__repro_cancellable__"

#: Sentinel in the ``args`` slot marking a telemetry sampler entry
#: (:meth:`Engine.schedule_sample`): fired like any event but excluded
#: from every accounting surface, so observability cannot perturb a
#: run's deterministic event counts.  Never serialised — checkpoints
#: drop sampler entries outright (the metrics hub re-arms sampling
#: after a restore).
_SAMPLER = object()


class EnginePerf:
    """Process-wide accumulator of engine work (events fired + wall time).

    Experiment drivers build any number of :class:`Engine` instances
    internally (one per recorded/replayed network), so per-run throughput
    cannot be read off a single engine.  Every :meth:`Engine.run` adds its
    contribution here; the experiment runner resets the accumulator before
    a driver starts and surfaces ``events``/``events_per_sec`` through the
    :class:`~repro.api.results.RunArtifact`.
    """

    __slots__ = ("events", "wall_s")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0

    def reset(self) -> None:
        self.events = 0
        self.wall_s = 0.0

    def record(self, events: int, wall_s: float) -> None:
        self.events += events
        self.wall_s += wall_s

    @property
    def events_per_sec(self) -> float:
        """Accumulated events divided by accumulated wall time (0 if idle)."""
        return self.events / self.wall_s if self.wall_s > 0.0 else 0.0

    @contextmanager
    def paused(self) -> Iterator[None]:
        """Exclude a block's engine work from the accumulator.

        The experiment layer wraps *cacheable* work in this — recording a
        schedule that later legs of a sweep answer from the schedule
        store — so a run's deterministic ``engine_events`` count is the
        same whether the recording happened here or was loaded from disk.
        Single-threaded by design, like the accumulator itself.
        """
        events, wall_s = self.events, self.wall_s
        try:
            yield
        finally:
            self.events, self.wall_s = events, wall_s


#: The accumulator :meth:`Engine.run` reports into.
ENGINE_PERF = EnginePerf()


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "_callback", "_args")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self._callback = callback
        self._args = args

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._callback is None

    def _fire(self) -> None:
        if self._callback is not None:
            self._callback(*self._args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} {state}>"


class Engine:
    """Event loop with a virtual clock.

    Typical use::

        engine = Engine()
        engine.schedule(1.5, my_callback, arg1, arg2)
        engine.run(until=10.0)
    """

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_stopped",
                 "_deferred", "_flight")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._deferred: deque[Callable[[], None]] = deque()
        self._flight = None  # optional FlightRecorder (see repro.obs.flight)

    # --- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Hot path: no handle is allocated and the event cannot be
        cancelled.  Use :meth:`schedule_cancellable` for timers that may
        need to be aborted.
        """
        time = self.now + delay
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < now={self.now!r}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, callback, args))

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute ``time`` (hot path)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < now={self.now!r}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, callback, args))

    def schedule_cancellable(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        return self.schedule_cancellable_at(self.now + delay, callback, *args)

    def schedule_cancellable_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Like :meth:`schedule_at`, but returns a cancellable handle."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < now={self.now!r}"
            )
        handle = EventHandle(time, callback, args)
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, handle, _CANCELLABLE))
        return handle

    def schedule_sample(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule a zero-argument *telemetry* callback at absolute ``time``.

        Sampler entries share the heap, so they fire in deterministic
        time order relative to simulation events — but they are excluded
        from every accounting surface: they do not increment
        :attr:`events_processed`, are invisible to :data:`ENGINE_PERF`
        and the flight recorder, and :meth:`checkpoint` drops them (the
        metrics hub re-arms sampling after a restore).  Telemetry
        therefore cannot perturb a run's deterministic event counts.
        The callback must be a pure reader of simulation state (lint
        rule ``OBS-SAMPLER-PURE``).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < now={self.now!r}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, (time, seq, callback, _SAMPLER))

    def defer(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` after every event at the *current* timestamp.

        This is the engine's two-phase semantics: within one instant, first
        all arrivals/completions fire (heap events), then deferred
        decisions run (FIFO).  Ports defer their "pick the next packet to
        transmit" step so that a scheduling decision at time *t* sees every
        packet that arrived at *t* — the simultaneity convention the
        paper's model (and its counter-example constructions) assume.
        Deferred callbacks may schedule new events and defer further
        callbacks, but must not rewind the clock.
        """
        self._deferred.append(callback)

    # --- execution --------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Runs until the heap and deferred queue drain, or (if ``until`` is
        given) until the next event would fire strictly after ``until``; in
        that case the clock is advanced to ``until`` and the pending events
        stay queued.  Deferred callbacks queued at exactly ``until`` always
        flush before the clock is pinned: the horizon break below is only
        reachable with an empty deferred queue, because the two-phase
        branch drains decisions before the heap is ever consulted.
        """
        self._stopped = False
        heap = self._heap
        deferred = self._deferred
        flight = self._flight
        limit = inf if until is None else until
        now = self.now
        # Locals beat per-event LOAD_GLOBALs in the dispatch below.
        cancellable = _CANCELLABLE
        sampler = _SAMPLER
        processed = 0
        start = perf_counter()  # repro: allow(DET-WALLCLOCK) ENGINE_PERF accounting, never feeds simulation state
        try:
            # Two copies of the drain loop, chosen once per run: with no
            # flight recorder attached (the default, and the path the
            # obs-off overhead gate holds to the uninstrumented
            # trajectory) events pay only the two sentinel identity
            # checks below — no telemetry branch at all.  Keep the
            # bodies in lockstep when editing.
            if flight is None:
                while heap or deferred:
                    if deferred and (not heap or heap[0][0] > now):
                        # Flush decisions once no further event shares
                        # this timestamp.  Runs even when the next heap
                        # event lies beyond `until`, so same-instant
                        # scheduling decisions are never lost at the
                        # horizon.
                        deferred.popleft()()
                        if self._stopped:
                            break
                        continue
                    entry = heappop(heap)
                    time = entry[0]
                    if time > limit:
                        heappush(heap, entry)
                        break
                    callback = entry[2]
                    args = entry[3]
                    if args is cancellable:
                        if callback._callback is None:  # cancelled: skip
                            continue
                        self.now = now = time
                        processed += 1
                        callback._fire()
                    elif args is sampler:
                        # A telemetry tick: fired in time order but
                        # excluded from event accounting (see
                        # schedule_sample).
                        self.now = now = time
                        callback()
                    else:
                        self.now = now = time
                        processed += 1
                        callback(*args)
                    if self._stopped:
                        break
            else:
                while heap or deferred:
                    if deferred and (not heap or heap[0][0] > now):
                        deferred.popleft()()
                        if self._stopped:
                            break
                        continue
                    entry = heappop(heap)
                    time = entry[0]
                    if time > limit:
                        heappush(heap, entry)
                        break
                    callback = entry[2]
                    args = entry[3]
                    if args is cancellable:
                        if callback._callback is None:  # cancelled: skip
                            continue
                        self.now = now = time
                        processed += 1
                        flight.note(time, callback._callback)
                        callback._fire()
                    elif args is sampler:
                        self.now = now = time
                        callback()
                    else:
                        self.now = now = time
                        processed += 1
                        flight.note(time, callback)
                        callback(*args)
                    if self._stopped:
                        break
        finally:
            self._events_processed += processed
            ENGINE_PERF.record(processed, perf_counter() - start)  # repro: allow(DET-WALLCLOCK) ENGINE_PERF accounting, never feeds simulation state
        if until is not None and self.now < until:
            self.now = until

    def run_bounded(self, until: float | None = None,
                    max_events: int | None = None) -> None:
        """Process events like :meth:`run`, but stop at a safe slice boundary.

        This is the primitive behind periodic mid-run checkpointing
        (:mod:`repro.sim.resume`): a phase of simulation is executed as a
        sequence of bounded slices with a snapshot taken between slices.
        Two properties make slice boundaries invisible to the simulation,
        which is what keeps resumed runs byte-identical to straight runs:

        * the clock is **never** pinned to ``until`` — only the caller
          pins it, once, when the whole phase is done — so splitting a
          horizon into sub-horizons cannot perturb event times;
        * the loop only breaks with an **empty deferred queue** (the
          ``max_events`` budget is not honoured while same-instant
          decisions are pending, and the horizon break is only reachable
          with the deferred queue drained, exactly as in :meth:`run`), so
          a snapshot never has to serialise mid-instant decision
          closures.

        Unlike :meth:`run` the stop flag is *not* reset on entry — a
        phase spans many slices and its owner resets the flag once.
        Accounting is identical to :meth:`run`: processed events land in
        :attr:`events_processed` and :data:`ENGINE_PERF`; cancelled
        entries and sampler ticks stay invisible.  Cold path: one loop
        copy serves both flight modes.
        """
        heap = self._heap
        deferred = self._deferred
        flight = self._flight
        limit = inf if until is None else until
        now = self.now
        cancellable = _CANCELLABLE
        sampler = _SAMPLER
        budget = inf if max_events is None else max_events
        processed = 0
        start = perf_counter()  # repro: allow(DET-WALLCLOCK) ENGINE_PERF accounting, never feeds simulation state
        try:
            while heap or deferred:
                if processed >= budget and not deferred:
                    break
                if deferred and (not heap or heap[0][0] > now):
                    deferred.popleft()()
                    if self._stopped:
                        break
                    continue
                entry = heappop(heap)
                time = entry[0]
                if time > limit:
                    heappush(heap, entry)
                    break
                callback = entry[2]
                args = entry[3]
                if args is cancellable:
                    if callback._callback is None:  # cancelled: skip
                        continue
                    self.now = now = time
                    processed += 1
                    if flight is not None:
                        flight.note(time, callback._callback)
                    callback._fire()
                elif args is sampler:
                    self.now = now = time
                    callback()
                else:
                    self.now = now = time
                    processed += 1
                    if flight is not None:
                        flight.note(time, callback)
                    callback(*args)
                if self._stopped:
                    break
        finally:
            self._events_processed += processed
            ENGINE_PERF.record(processed, perf_counter() - start)  # repro: allow(DET-WALLCLOCK) ENGINE_PERF accounting, never feeds simulation state

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    # --- checkpoint / restore ---------------------------------------------

    def checkpoint(self) -> dict:
        """Capture the engine's complete state as a picklable dict.

        The heap entries are copied with the identity-compared
        :data:`_CANCELLABLE` sentinel swapped for its serialisable
        marker; everything else (clock, sequence counter, deferred
        decision deque, deterministic event count) is carried verbatim.
        Callbacks are *not* copied — a checkpoint shares them with the
        live engine until it is pickled, at which point the whole object
        graph (network, ports, handles) is serialised together so bound
        methods stay attached to their restored owners.

        Telemetry is excluded by design: pending sampler entries
        (:meth:`schedule_sample`) are dropped — the metrics hub re-arms
        sampling on the next run — and the flight recorder is not part
        of engine state.  A checkpoint's bytes describe the simulation,
        never the observer.
        """
        heap = [
            (time, seq, callback,
             _CANCELLABLE_MARKER if args is _CANCELLABLE else args)
            for (time, seq, callback, args) in self._heap
            if args is not _SAMPLER
        ]
        if len(heap) != len(self._heap):
            # Removing interior elements can break the heap invariant;
            # a fully sorted list is always a valid heap, and (time, seq)
            # keys never tie, so sorting cannot reorder equal elements.
            heap.sort(key=lambda entry: entry[:2])
        return {
            "now": self.now,
            "heap": heap,
            "seq": self._seq,
            "events_processed": self._events_processed,
            "stopped": self._stopped,
            "deferred": list(self._deferred),
        }

    def restore(self, state: dict) -> None:
        """Reinstall state captured by :meth:`checkpoint`.

        The marker strings in the args slot are swapped back for the
        module's live sentinel, so the run loop's identity test keeps
        working on restored entries.  The entry order is preserved
        as-is: the (time, seq) sort keys were untouched, so the list is
        still a valid heap.
        """
        self.now = state["now"]
        self._heap = [
            (time, seq, callback,
             _CANCELLABLE if args == _CANCELLABLE_MARKER else args)
            for (time, seq, callback, args) in state["heap"]
        ]
        self._seq = state["seq"]
        self._events_processed = state["events_processed"]
        self._stopped = state["stopped"]
        self._deferred = deque(state["deferred"])
        # Unpickled engines skip __init__, so the slot may not exist yet;
        # a restored engine never inherits the checkpoint's observer.
        self._flight = getattr(self, "_flight", None)

    def __getstate__(self) -> dict:
        return self.checkpoint()

    def __setstate__(self, state: dict) -> None:
        self.restore(state)

    # --- introspection ----------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    @property
    def pending_deferred(self) -> int:
        """Number of queued deferred (same-instant decision) callbacks."""
        return len(self._deferred)

    @property
    def events_processed(self) -> int:
        """Number of events that have fired since construction."""
        return self._events_processed

    @property
    def flight(self):
        """The attached :class:`~repro.obs.flight.FlightRecorder` (or None).

        While attached, the run loop notes every dispatched event's
        ``(time, callback)`` into the recorder's ring — sampler ticks
        excluded.  Attachment takes effect at the next :meth:`run` call
        (the loop hoists the recorder into a local).
        """
        return self._flight

    @flight.setter
    def flight(self, recorder) -> None:
        self._flight = recorder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.9f} pending={len(self._heap)}>"
