"""Deterministic discrete-event engine.

The engine is a binary heap of ``(time, sequence, callback, args)`` entries.
The monotonically increasing sequence number breaks ties between events
scheduled for the same instant, which makes every run fully deterministic —
a hard requirement for the record/replay experiments, where the recorded
schedule must be byte-for-byte repeatable.

Events are cancellable: :meth:`Engine.schedule` returns an
:class:`EventHandle` whose :meth:`~EventHandle.cancel` marks the heap entry
dead (lazy deletion), which is how TCP retransmission timers are restarted
and how preemptive ports abort an in-flight transmission-complete event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Engine", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "_callback", "_args")

    def __init__(self, time: float, callback: Callable[..., None], args: tuple):
        self.time = time
        self._callback = callback
        self._args = args

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._callback is None

    def _fire(self) -> None:
        if self._callback is not None:
            self._callback(*self._args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} {state}>"


class Engine:
    """Event loop with a virtual clock.

    Typical use::

        engine = Engine()
        engine.schedule(1.5, my_callback, arg1, arg2)
        engine.run(until=10.0)
    """

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_stopped", "_deferred")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq: int = 0
        self._events_processed: int = 0
        self._stopped: bool = False
        self._deferred: list[Callable[[], None]] = []

    # --- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time!r} < now={self.now!r}"
            )
        handle = EventHandle(time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def defer(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` after every event at the *current* timestamp.

        This is the engine's two-phase semantics: within one instant, first
        all arrivals/completions fire (heap events), then deferred
        decisions run (FIFO).  Ports defer their "pick the next packet to
        transmit" step so that a scheduling decision at time *t* sees every
        packet that arrived at *t* — the simultaneity convention the
        paper's model (and its counter-example constructions) assume.
        Deferred callbacks may schedule new events and defer further
        callbacks, but must not rewind the clock.
        """
        self._deferred.append(callback)

    # --- execution --------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Runs until the heap and deferred queue drain, or (if ``until`` is
        given) until the next event would fire strictly after ``until``; in
        that case the clock is advanced to ``until`` and the pending events
        stay queued.
        """
        self._stopped = False
        heap = self._heap
        deferred = self._deferred
        while (heap or deferred) and not self._stopped:
            # Flush decisions once no further event shares this timestamp.
            if deferred and (not heap or heap[0][0] > self.now):
                callback = deferred.pop(0)
                callback()
                continue
            time, _seq, handle = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if handle.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            handle._fire()
        if until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the currently executing event returns."""
        self._stopped = True

    # --- introspection ----------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Number of events that have fired since construction."""
        return self._events_processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine now={self.now:.9f} pending={len(self._heap)}>"
