"""Engine checkpoint/restore: simulate a warm-up prefix once, branch many.

The paper's experiment shape is "run the same warmed-up network under many
variants".  Record-once (:mod:`repro.core.trace_io`) deduplicated the
*recording* half of that; this module deduplicates the *simulation* half:
a :class:`Snapshot` captures a network mid-run — engine heap, clock,
sequence counter, deferred decision deque, every node/port/scheduler/AQM,
the tracer, and the process-global packet-id counter — so a sweep can pay
for the shared warm-up horizon exactly once and branch each leg from the
snapshot.

* :func:`snapshot_network` / :func:`restore_snapshot` — the in-memory
  protocol.  Restoring credits the warm-up's deterministic event count to
  :data:`~repro.sim.engine.ENGINE_PERF` and reinstalls the packet-id
  counter, so a branched leg's ``engine_events`` and pids are identical
  to a from-scratch run's.  Builders run under ``ENGINE_PERF.paused()``
  for the same reason: the warm-up is accounted exactly once per leg,
  through the credit, never through live accumulation.
* :func:`save_checkpoint` / :func:`load_checkpoint` — one snapshot
  to/from one file.  The format is a one-line JSON header (format name,
  version, SHA-256 of the payload, summary fields) followed by the
  pickled network graph; the hash is verified on load so a truncated or
  bit-rotted checkpoint fails loudly (or, in the store, falls through to
  a from-scratch rebuild) instead of branching subtly wrong.
* :class:`CheckpointStore` — a content-addressed directory of checkpoint
  files keyed by *warm-up inputs*, mirroring
  :class:`~repro.core.trace_io.ScheduleStore`: atomic puts, corrupt
  entries read as misses, and an append-only ``checkpoints.log`` audit
  trail that lets tests assert the build-once guarantee.
* :func:`use_checkpoint_store` / :func:`active_checkpoint_store` — the
  process-wide "current store" the runner activates around a driver call.

The payload is a pickle, not JSON: a snapshot is a live object graph
(bound-method callbacks in the heap must reattach to their restored
owners), which pickle's memo handles and JSON cannot.  Checkpoints are
therefore *local build artifacts* with the same trust model as any other
build cache — the hash detects corruption, not tampering.  Unlike the
schedule store there is deliberately no parse memo: every consumer must
get a *fresh* unpickled graph, because branching mutates the network.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.core.packet import packet_id_counter, set_packet_id_counter
from repro.errors import CheckpointError
from repro.obs.hub import active_metrics_hub
from repro.sim.engine import ENGINE_PERF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = [
    "CheckpointStore",
    "Snapshot",
    "active_checkpoint_store",
    "load_checkpoint",
    "restore_snapshot",
    "save_checkpoint",
    "snapshot_network",
    "use_checkpoint_store",
]

#: On-disk format name and version, written into every header and checked
#: on load; bump the version when the payload encoding changes shape.
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1


class Snapshot:
    """A network frozen mid-run, plus the process state a restart needs.

    ``network`` is the live graph (engine included — the engine's own
    ``__getstate__`` handles its identity-compared cancellable sentinel);
    ``engine_events`` is the deterministic event count of the captured
    run so far, credited to ``ENGINE_PERF`` on restore; and
    ``packet_counter`` is the process-global packet-id counter at capture
    time, reinstalled on restore so branched legs draw the same pids a
    from-scratch run would.
    """

    __slots__ = ("network", "time", "engine_events", "packet_counter", "description")

    def __init__(
        self,
        network: "Network",
        time: float,
        engine_events: int,
        packet_counter: int,
        description: str = "",
    ) -> None:
        self.network = network
        self.time = time
        self.engine_events = engine_events
        self.packet_counter = packet_counter
        self.description = description

    def header(self, payload_sha256: str) -> dict:
        """The JSON header describing this snapshot's serialised payload."""
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "payload_sha256": payload_sha256,
            "time": self.time,
            "engine_events": self.engine_events,
            "packet_counter": self.packet_counter,
            "description": self.description,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Snapshot t={self.time:.9f} events={self.engine_events} "
            f"pids={self.packet_counter}>"
        )


def snapshot_network(network: "Network", description: str = "") -> Snapshot:
    """Capture ``network`` (typically mid-run) as a :class:`Snapshot`.

    The snapshot *shares* the live graph — it only becomes an independent
    copy when serialised (``save_checkpoint`` / ``CheckpointStore.put``)
    or when the builder hands it straight to :func:`restore_snapshot`,
    which is the no-store fast path: the branched leg then continues on
    the very object graph the warm-up produced, which is exactly what a
    from-scratch run would have done.
    """
    engine = network.engine
    return Snapshot(
        network=network,
        time=engine.now,
        engine_events=engine.events_processed,
        packet_counter=packet_id_counter(),
        description=description,
    )


def restore_snapshot(snapshot: Snapshot) -> "Network":
    """Reinstall process state for ``snapshot`` and return its network.

    Two things happen beyond handing back the graph, and both are what
    makes a branched leg byte-identical to a from-scratch run:

    * the process-global packet-id counter is set to its capture-time
      value, so packets injected after the branch get the pids the
      uninterrupted simulation would have assigned;
    * the warm-up's deterministic event count is credited to
      ``ENGINE_PERF`` (with zero wall time — the work was not paid for
      here), so the leg's reported ``engine_events`` is the same whether
      the warm-up was simulated live, served from the in-process
      snapshot, or reloaded from a checkpoint file.

    When a metrics hub is ambient (:func:`~repro.obs.hub.use_metrics_hub`)
    it is re-attached to the restored network, so a branched leg's
    telemetry reports into the *live* hub rather than whatever clone a
    pickled checkpoint may carry.  Telemetry never changes the restored
    simulation — sampler events are excluded from checkpoints and from
    all event accounting (see :meth:`repro.sim.engine.Engine.checkpoint`).
    """
    set_packet_id_counter(snapshot.packet_counter)
    ENGINE_PERF.record(snapshot.engine_events, 0.0)
    hub = active_metrics_hub()
    if hub is not None:
        hub.attach(snapshot.network)
    return snapshot.network


def snapshot_to_bytes(snapshot: Snapshot) -> bytes:
    """Serialise: one JSON header line + the pickled network graph."""
    payload = pickle.dumps(snapshot.network, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = json.dumps(snapshot.header(digest), sort_keys=True)
    return header.encode() + b"\n" + payload


def snapshot_from_bytes(
    data: bytes, where: str = "<bytes>", verify: bool = True
) -> Snapshot:
    """Parse bytes written by :func:`snapshot_to_bytes`; verify, unpickle.

    Raises :class:`~repro.errors.CheckpointError` for foreign files,
    unsupported versions, and (with ``verify``, the default) payload-hash
    mismatches.  Verification happens *before* unpickling, so a truncated
    payload is reported as a checkpoint problem, never as a pickle crash.
    """
    head, sep, payload = data.partition(b"\n")
    if not sep:
        raise CheckpointError(f"{where} is not a checkpoint file (no header)")
    try:
        header = json.loads(head.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"{where} has an unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{where} is not a checkpoint file")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{where} has checkpoint format version {header.get('version')!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    if verify:
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise CheckpointError(
                f"{where} failed its payload-hash check — the file was "
                f"truncated or corrupted after it was written"
            )
    try:
        network = pickle.loads(payload)
    except Exception as exc:  # pickle raises a menagerie; fold it into ours
        raise CheckpointError(f"{where} payload failed to unpickle: {exc}") from exc
    return Snapshot(
        network=network,
        time=header["time"],
        engine_events=header["engine_events"],
        packet_counter=header["packet_counter"],
        description=header.get("description", ""),
    )


def save_checkpoint(snapshot: Snapshot, path: str | Path) -> None:
    """Write ``snapshot`` to ``path`` (header + hash-verified payload)."""
    Path(path).write_bytes(snapshot_to_bytes(snapshot))


def load_checkpoint(path: str | Path, verify: bool = True) -> Snapshot:
    """Read and verify a checkpoint written by :func:`save_checkpoint`."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return snapshot_from_bytes(data, str(path), verify)


class CheckpointStore:
    """A content-addressed, on-disk cache of warm-up checkpoints.

    One directory, one file per checkpoint, named ``<key>.ckpt`` where
    the key is derived from the *warm-up inputs* (topology, scheduler,
    load, warm-up horizon, seed, …) so any leg of any sweep that shares
    the prefix addresses the same file.  The store also keeps an
    append-only ``checkpoints.log`` audit trail — one
    ``<op> <key> pid=<pid>`` line per store mutation, where the op is
    ``put`` (an actual build), ``prune``/``roll`` (an entry retired), or
    ``resume`` (a mid-run snapshot restored after a preemption) — which
    is how the test suite (and the ``sweep-branch`` bench) assert the
    build-once guarantee: a sweep over N legs with one shared prefix must
    grow the log by exactly one ``put`` line, not N.

    Every read re-verifies the payload hash and returns a *fresh*
    unpickled graph (no memo — consumers mutate what they restore); a
    truncated or corrupt entry reads as a miss, so a killed writer can
    never poison a sweep — the next leg rebuilds from scratch and the
    atomic :meth:`put` heals the entry.
    """

    __slots__ = ("root",)

    #: File name of the append-only record of actual checkpoint builds.
    LOG_NAME = "checkpoints.log"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """The file a checkpoint with ``key`` lives at (may not exist yet)."""
        return self.root / f"{key}.ckpt"

    def has(self, key: str) -> bool:
        """True when a checkpoint file for ``key`` exists (content untested)."""
        return self.path(key).is_file()

    def get(self, key: str) -> Snapshot | None:
        """The cached snapshot for ``key``, or None.

        Unreadable, truncated, or hash-mismatched entries are treated as
        misses, not errors — the caller rebuilds from scratch and
        :meth:`put` heals the entry.  Unlike the schedule store there is
        no parse memo and no ``verify=False`` fast path: each consumer
        needs its own fresh graph anyway, and the hash check is the only
        thing standing between a torn pickle and a corrupted branch.
        """
        path = self.path(key)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return snapshot_from_bytes(data, str(path), verify=True)
        except CheckpointError:
            return None

    def put(self, key: str, snapshot: Snapshot) -> Path:
        """Persist ``snapshot`` under ``key`` atomically; returns the path."""
        return self.put_bytes(key, snapshot_to_bytes(snapshot))

    def put_bytes(self, key: str, data: bytes) -> Path:
        """Write pre-serialised checkpoint bytes under ``key`` atomically.

        Temp file + ``os.replace`` in the store directory: concurrent
        readers see either no file or a complete, hash-verified one.
        Racing writers of the same key both succeed (last replace wins;
        warm-ups are deterministic, so the contents agree anyway).  The
        resume session serialises with its own anchor-aware pickler and
        lands the bytes through this entry point.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp_name = str(
            self.root / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        fd = os.open(tmp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def get_or_build(self, key: str, builder: Callable[[], Snapshot]) -> Snapshot:
        """The snapshot for ``key`` — from cache, or by running ``builder``.

        A cache miss builds (under ``ENGINE_PERF.paused()``, so the
        warm-up simulation never leaks into the calling leg's
        deterministic event count — the restore credit is the only way
        warm-up events reach the accumulator), persists, logs the build,
        and returns the snapshot *reloaded from disk*, so every consumer
        — the leg that paid for the build and every later one — branches
        from the identical post-round-trip graph.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        # Builders run their own simulation phases; were a resume session
        # (repro.sim.resume) left active, a cache miss would add phases a
        # cache hit does not, shifting every later phase's ordinal and
        # orphaning its snapshots.  Suspend it for the build.
        from repro.sim.resume import suspended_resume  # local: avoids cycle

        with ENGINE_PERF.paused(), suspended_resume():
            snapshot = builder()
        self.put(key, snapshot)
        self._log_build(key)
        reloaded = self.get(key)
        return snapshot if reloaded is None else reloaded

    def keys(self) -> list[str]:
        """The keys currently present in the store, sorted.

        Scans the store directory for ``<key>.ckpt`` entries; in-flight
        temp files (dot-prefixed) are not entries and are skipped.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.ckpt")
            if not path.name.startswith(".")
        )

    def prune(self, in_use: Iterable[str]) -> list[str]:
        """Remove every entry whose key is not in ``in_use``; GC for
        long-lived stores.

        Returns the removed keys, sorted.  Each removal is a single
        ``unlink`` — atomic, so a concurrent reader sees either the
        complete file or a miss it can rebuild from — and an entry
        someone else already removed is skipped silently.  Removals are
        appended to the ``checkpoints.log`` audit trail as ``prune``
        lines, so the log reads as the store's full history: what was
        paid for, and what was let go.
        """
        keep = set(in_use)
        removed = []
        for key in self.keys():
            if key in keep:
                continue
            with contextlib.suppress(FileNotFoundError):
                self.path(key).unlink()
                removed.append(key)
                self.log("prune", key)
        return sorted(removed)

    def discard(self, keys: Iterable[str], op: str = "prune") -> list[str]:
        """Remove the named entries (missing ones skipped); audit as ``op``.

        The targeted sibling of :meth:`prune`: the resume session uses it
        with ``op="roll"`` to retire superseded mid-run snapshots and
        with ``op="prune"`` when a finished run clears its trail.
        Returns the keys actually removed, in input order.
        """
        removed = []
        for key in keys:
            try:
                self.path(key).unlink()
            except FileNotFoundError:
                continue
            removed.append(key)
            self.log(op, key)
        return removed

    # -- the audit trail ---------------------------------------------------

    #: Operations the audit log records.  Legacy lines (written before the
    #: log carried an op column) have no leading op and parse as ``put``.
    LOG_OPS = ("put", "prune", "roll", "resume")

    def log(self, op: str, key: str) -> None:
        """Append one ``<op> <key> pid=<pid>`` audit line (O_APPEND:
        atomic for short lines, so concurrent workers interleave but
        never tear)."""
        if op not in self.LOG_OPS:
            raise ValueError(f"unknown checkpoint log op {op!r}")
        line = f"{op} {key} pid={os.getpid()}\n"
        fd = os.open(
            str(self.root / self.LOG_NAME),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o666,
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def _log_build(self, key: str) -> None:
        """Append one line for an actual build."""
        self.log("put", key)

    def log_entries(self) -> list[tuple[str, str]]:
        """The audit trail as ``(op, key)`` pairs, in append order.

        Legacy lines — ``<key> pid=<pid>``, from before the log carried
        an op column — parse as ``("put", key)``, so old stores keep
        counting correctly.
        """
        try:
            text = (self.root / self.LOG_NAME).read_text()
        except OSError:
            return []
        entries = []
        for line in text.splitlines():
            tokens = line.split()
            if not tokens:
                continue
            if tokens[0] in self.LOG_OPS:
                entries.append((tokens[0], tokens[1] if len(tokens) > 1 else ""))
            else:
                entries.append(("put", tokens[0]))
        return entries

    def built_keys(self) -> list[str]:
        """Keys actually built into this store, in build order.

        Reads the ``put`` lines of ``checkpoints.log``; a key appears
        once per build, so ``len(store.built_keys())`` is the number of
        warm-up simulations the store paid for — the quantity the
        build-once tests assert on.  Prune/roll/resume audit lines are
        history of a different kind and are not counted here.
        """
        return [key for op, key in self.log_entries() if op == "put"]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CheckpointStore {self.root}>"


#: The store :func:`active_checkpoint_store` answers with (None = no cache).
_ACTIVE_STORE: CheckpointStore | None = None


def active_checkpoint_store() -> CheckpointStore | None:
    """The checkpoint store the current run builds into / reads from.

    Set by :func:`use_checkpoint_store`; ``None`` means "no cache — warm
    up in memory every time", the behaviour of a bare driver call outside
    the runner.
    """
    return _ACTIVE_STORE


@contextlib.contextmanager
def use_checkpoint_store(
    store: CheckpointStore | None,
) -> Iterator[CheckpointStore | None]:
    """Make ``store`` the active checkpoint store for the enclosed block.

    The experiment runner wraps each driver call in this so
    :func:`repro.experiments.branch.get_branch_network` can answer
    warm-ups from the sweep's shared cache.  Nests and restores the
    previous store on exit; passing ``None`` disables caching inside the
    block.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous
