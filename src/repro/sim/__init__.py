"""Discrete-event, store-and-forward network simulation substrate.

This subpackage replaces the paper's use of ns-2.  It provides:

* :mod:`repro.sim.engine` — a deterministic event loop,
* :mod:`repro.sim.link` / :mod:`repro.sim.port` — output-queued ports with
  pluggable schedulers, finite buffers, and an optional preemptive mode,
* :mod:`repro.sim.node` — hosts (with transport agents) and routers,
* :mod:`repro.sim.network` — topology container, routing, ``tmin`` algebra,
* :mod:`repro.sim.tracer` — per-packet records (arrival, exit, per-hop waits
  and transmit times) that the replay engine and all metrics consume.
"""

from repro.sim.engine import ENGINE_PERF, Engine, EnginePerf, EventHandle
from repro.sim.link import Link
from repro.sim.network import Network
from repro.sim.node import Host, Node, Router
from repro.sim.port import Port, PreemptivePort
from repro.sim.tracer import PacketRecord, Tracer

__all__ = [
    "ENGINE_PERF",
    "Engine",
    "EnginePerf",
    "EventHandle",
    "Host",
    "Link",
    "Network",
    "Node",
    "PacketRecord",
    "Port",
    "PreemptivePort",
    "Router",
    "Tracer",
]
