"""Preemption-safe resume: periodic mid-run snapshots and restart from them.

PR 7's checkpoint store deduplicates *planned* work (warm-up prefixes a
sweep shares); this module makes *unplanned* interruption cheap.  A
:class:`CheckpointPolicy` tells the runner to slice every simulation
phase into bounded chunks (:meth:`repro.sim.engine.Engine.run_bounded`)
and snapshot the network between chunks into the run's
:class:`~repro.sim.checkpoint.CheckpointStore`.  When the hosting process
is SIGKILLed — a preempted queue worker, an OOM-killed sweep — the retry
discovers the latest valid snapshot for its spec and resumes from it
instead of t=0.

Correctness rests on two invariants:

* **Slice boundaries are invisible.**  ``run_bounded`` never pins the
  clock and only stops with the deferred (same-instant decision) queue
  empty, so the event sequence of a sliced phase is byte-for-byte the
  straight phase's.  The resumed artifact therefore equals the
  uninterrupted one — the fault-injection suite
  (``tests/cluster/test_resume_points.py``) proves this, not just
  asserts it.
* **Snapshots describe the simulation, never the observer.**  Sampler
  entries and the flight recorder are already excluded by
  :meth:`Engine.checkpoint`; the session additionally detaches the
  metrics hub from the graph while pickling and re-attaches the live
  ambient hub (re-arming sampling) after a restore.

Restoring has a constraint branch checkpoints do not: the retry's driver
has already rebuilt the experiment and holds references into it (the
``TcpStats`` an install helper returned, the network whose tracer it will
read after ``Network.run``).  A plain unpickle would produce a *clone*
graph, leaving every driver-held reference pointing at stale objects.
Snapshots are therefore *anchor-pickled*: at phase entry the session
deterministically enumerates the stateful objects reachable from the
network (:func:`_anchor_walk` — the same walk on every attempt, because
phase-entry state is part of the byte-identity contract), and the pickler
reduces each anchored object to ``(anchor index, captured state)``.  The
retry runs the same walk over *its* freshly built graph, so unpickling
resolves each index to the retry's live object and grafts the snapshot's
state onto it — identities the driver holds are preserved, state is the
killed attempt's.  Objects created mid-phase (packets in flight, new
timer handles) have no anchor and travel by value, as in any pickle.

Snapshot keys are ``resume-<run_id>-p<phase>-<fp>-n<index>``: the run id
pins the spec, the phase ordinal counts ``Network.run`` calls inside one
driver invocation (a record pass and a replay pass may enter with
identical engine state), and the fingerprint hashes the phase's entry
state so a retry only adopts snapshots taken from the very state it is
in.  Superseded snapshots are rolled away as the run progresses
(``keep`` newest survive, audit-logged as ``roll``); a completed run
prunes its whole trail.  Torn or corrupt snapshots read as misses
(hash-verified before unpickling), so healing is a ladder: newest valid
snapshot → older one → from scratch.

Builder/recorder passes (:meth:`CheckpointStore.get_or_build`,
:meth:`ScheduleStore.get_or_record`) run only on cache misses; were the
session active inside them, a miss would add phases a hit does not and
orphan every later phase's snapshots.  They suspend the session via
:func:`suspended_resume`.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import pickle
import types
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.packet import set_packet_id_counter
from repro.errors import CheckpointError, ConfigurationError
from repro.obs.hub import active_metrics_hub
from repro.sim.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointStore,
    snapshot_network,
)
from repro.sim.engine import ENGINE_PERF, Engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = [
    "CheckpointPolicy",
    "ResumeSession",
    "active_resume_session",
    "suspended_resume",
    "use_resume_session",
]


@dataclass(frozen=True)
class CheckpointPolicy:  # repro: allow(PERF-SLOTS) one per run, never per packet
    """When to take mid-run snapshots: every N sim-seconds and/or M events.

    At least one trigger must be set.  ``keep`` is the rolling-GC depth:
    how many of a phase's newest snapshots survive (older ones are
    discarded as ``roll`` audit entries).  Two is the useful minimum —
    the newest snapshot may be the one a crash tore, and the healing
    ladder then needs its predecessor.

    The policy is an *executor* knob, not spec data: it never reaches
    the artifact, so runs with different policies (or none) stay
    byte-identical.
    """

    every_sim_s: float | None = None
    every_events: int | None = None
    keep: int = 2

    def __post_init__(self) -> None:
        if self.every_sim_s is None and self.every_events is None:
            raise ConfigurationError(
                "checkpoint policy needs a trigger: every_sim_s (simulated "
                "seconds) and/or every_events (engine events)"
            )
        if self.every_sim_s is not None and not self.every_sim_s > 0:
            raise ConfigurationError(
                f"every_sim_s must be > 0, got {self.every_sim_s!r}"
            )
        if self.every_events is not None and self.every_events < 1:
            raise ConfigurationError(
                f"every_events must be >= 1, got {self.every_events!r}"
            )
        if self.keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {self.keep!r}")

    @classmethod
    def parse(cls, text: str) -> "CheckpointPolicy":
        """Parse the ``--checkpoint-every`` grammar.

        Comma-separated terms: ``<seconds>`` or ``<seconds>s`` (simulated
        seconds between snapshots), ``<n>ev`` (engine events between
        snapshots), ``keep=<n>`` (rolling-GC depth).  Examples:
        ``"0.05"``, ``"5000ev"``, ``"0.05s,5000ev,keep=3"``.
        """
        every_sim_s: float | None = None
        every_events: int | None = None
        keep = 2
        for raw in text.split(","):
            term = raw.strip()
            if not term:
                continue
            try:
                if term.startswith("keep="):
                    keep = int(term[len("keep="):])
                elif term.endswith("ev"):
                    every_events = int(term[:-2])
                elif term.endswith("s"):
                    every_sim_s = float(term[:-1])
                else:
                    every_sim_s = float(term)
            except ValueError:
                raise ConfigurationError(
                    f"cannot parse checkpoint policy term {term!r} — expected "
                    f"'<seconds>[s]', '<n>ev', or 'keep=<n>'"
                ) from None
        return cls(every_sim_s=every_sim_s, every_events=every_events, keep=keep)


def _entry_fingerprint(engine: Engine, until: float | None) -> str:
    """Hash the deterministic entry state of a phase.

    ``now`` and ``events_processed`` evolve identically on every attempt
    of the same spec (they are part of the byte-identity contract), so a
    retry entering phase *p* computes the same fingerprint the killed
    attempt did and finds its snapshots.  Heap length is deliberately
    excluded: it can differ by pending sampler entries, which depend on
    telemetry settings, not on the simulation.
    """
    payload = f"{engine.now!r}:{engine.events_processed}:{until!r}"
    return hashlib.sha256(payload.encode()).hexdigest()[:8]


@contextlib.contextmanager
def _detached_observer(network: "Network") -> Iterator[None]:
    """Strip the metrics hub out of ``network`` for the enclosed block.

    Pickled mid-run snapshots must describe the simulation, never the
    observer: the hub holds telemetry series (and possibly caller
    closures via ``add_sampler``) that have no business in a resume
    snapshot.  The live hub is re-attached on restore instead.
    """
    hub = network.obs
    if hub is None:
        yield
        return
    ports = [
        port
        for name in sorted(network.nodes)
        for port in network.nodes[name].ports.values()
    ]
    saved = [(port, port._obs) for port in ports]
    network.obs = None
    for port in ports:
        port._obs = None
    try:
        yield
    finally:
        network.obs = hub
        for port, obs in saved:
            port._obs = obs


# -- anchor pickling -------------------------------------------------------
#
# The identity-preserving half of resume (see the module docstring):
# objects reachable at phase entry are enumerated deterministically and
# pickled as (anchor index, state) pairs, so a retry's unpickle applies
# the snapshot's state onto its own live objects instead of building a
# disconnected clone.

#: Leaves the anchor walk never descends into (and can never anchor).
_ATOMIC = (str, bytes, bytearray, int, float, complex, type(None))
#: Callables/classes/modules: pickled by reference, never anchored.
_OPAQUE = (
    type,
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
)


def _object_state(obj: object) -> object:
    """The pickle state of ``obj``, or ``None`` when it has none.

    Mirrors what default pickling would capture: ``__getstate__`` when
    the class (or, on 3.11+, ``object``) provides one, else ``__dict__``
    plus a slots dict.  Objects without capturable state (C containers,
    RNGs) answer ``None`` and are left to ordinary by-value pickling —
    correctness over identity for anything we cannot transplant into.
    """
    getstate = getattr(obj, "__getstate__", None)
    if getstate is not None:
        try:
            return getstate()
        except Exception:
            return None
    state = getattr(obj, "__dict__", None) or None
    slots: dict[str, object] = {}
    for cls in type(obj).__mro__:
        for name in getattr(cls, "__slots__", ()):
            if name in ("__dict__", "__weakref__"):
                continue
            try:
                slots[name] = getattr(obj, name)
            except AttributeError:
                continue
    if slots:
        return (state, slots)
    return state


def _anchor_walk(root: object) -> list[object]:
    """Deterministically enumerate the stateful objects reachable from
    ``root``.

    The list *order is the anchor numbering*: every attempt of a run
    enters each phase with byte-identical state and container insertion
    orders, so the killed attempt and its retry produce the same list
    and index ``k`` names the same logical object in both processes.
    Sets are deliberately not descended into — their iteration order is
    hash-seed-dependent across processes, so anything reachable only
    through a set travels by value instead.
    """
    anchors: list[object] = []
    # Walk state dicts are temporaries; keeping every visited object
    # alive prevents id() reuse from aliasing the seen-set.
    alive: list[object] = []
    seen: set[int] = set()
    stack: list[object] = [root]
    while stack:
        obj = stack.pop()
        if obj is None or isinstance(obj, _ATOMIC):
            continue
        oid = id(obj)  # repro: allow(DET-ID-ORDER) membership key only; numbering comes from walk order
        if oid in seen:
            continue
        seen.add(oid)
        alive.append(obj)
        if isinstance(obj, dict):
            for key, value in obj.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(obj, (list, tuple, deque)):
            stack.extend(obj)
        elif isinstance(obj, (set, frozenset)) or isinstance(obj, _OPAQUE):
            continue
        else:
            state = _object_state(obj)
            if not state:
                continue
            anchors.append(obj)
            stack.append(state)
    return anchors


#: While a resume unpickle is in flight: the retry's phase-entry anchor
#: list, consulted by :func:`_load_anchor`.  ``None`` otherwise — a
#: resume snapshot loaded outside its session fails loudly.
_RESTORE_ANCHORS: list[object] | None = None


def _load_anchor(index: int) -> object:
    """Resolve anchor ``index`` against the live run's phase-entry walk.

    Called by pickle while loading a resume snapshot; pickle then applies
    the pickled state to the returned (live) object, which is the whole
    point: references the driver already holds keep working.
    """
    objects = _RESTORE_ANCHORS
    if objects is None:
        raise CheckpointError(
            "resume snapshots are anchored to a live run and can only be "
            "loaded by the resume session of a matching retry"
        )
    return objects[index]


class _AnchorPickler(pickle.Pickler):  # repro: allow(PERF-SLOTS) one per snapshot, never per packet
    """Pickler that reduces anchored objects to ``(index, state)``."""

    def __init__(self, buffer: io.BytesIO, anchor_ids: dict[int, int]) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._anchor_ids = anchor_ids

    def reducer_override(self, obj: object):
        index = self._anchor_ids.get(id(obj))  # repro: allow(DET-ID-ORDER) identity lookup only; the index is walk order
        if index is None:
            return NotImplemented
        return (_load_anchor, (index,), _object_state(obj))


class ResumeSession:
    """One run's mid-flight snapshot trail: record, resume, roll, prune.

    Created by :func:`repro.api.runner.run` when a
    :class:`CheckpointPolicy` is in force, activated around the driver
    call with :func:`use_resume_session`, and consulted by
    :meth:`Network.run <repro.sim.network.Network.run>`: each simulation
    phase runs through :meth:`run_phase` instead of ``Engine.run``.
    """

    __slots__ = ("run_id", "policy", "store", "_phase", "_anchors",
                 "_anchor_ids", "snapshots_recorded", "resumed_keys")

    def __init__(self, run_id: str, policy: CheckpointPolicy,
                 store: CheckpointStore) -> None:
        self.run_id = run_id
        self.policy = policy
        self.store = store
        self._phase = -1
        #: The current phase's entry-reachable objects (anchor numbering)
        #: and their id -> index map; rebuilt at every phase entry.
        self._anchors: list[object] = []
        self._anchor_ids: dict[int, int] = {}
        #: Mid-run snapshots written so far (all phases).
        self.snapshots_recorded = 0
        #: Keys this session restored from, in restore order.
        self.resumed_keys: list[str] = []

    # -- the sliced run loop ----------------------------------------------

    def run_phase(self, network: "Network", until: float | None = None) -> None:
        """Run one simulation phase in snapshot-separated slices.

        Equivalent to ``network.engine.run(until=until)`` — same event
        sequence, same accounting, same final clock — with a snapshot
        written between slices and, on entry, a resume from the newest
        valid snapshot a killed attempt of this same phase left behind.
        """
        engine = network.engine
        phase = self._phase = self._phase + 1
        prefix = (
            f"resume-{self.run_id}-p{phase}-"
            f"{_entry_fingerprint(engine, until)}-n"
        )
        # Anchor numbering must be telemetry-independent (a retry may run
        # with different REPRO_OBS settings), so the walk sees the graph
        # the way snapshots are pickled: observer detached.  It must also
        # happen before the resume below mutates entry state.
        with _detached_observer(network):
            self._anchors = _anchor_walk(network)
        self._anchor_ids = {
            id(obj): i  # repro: allow(DET-ID-ORDER) identity lookup only; the index is walk order
            for i, obj in enumerate(self._anchors)
        }
        index = self._try_resume(network, prefix)
        engine._stopped = False
        every = self.policy.every_sim_s
        budget = self.policy.every_events
        while True:
            if network.obs is not None:
                network.obs.ensure_sampling(network)
            bound = until
            if every is not None:
                target = engine.now + every
                heap = engine._heap
                if heap and heap[0][0] > target:
                    # Idle gap wider than the period: jump straight to
                    # the next event instead of snapshotting no-progress
                    # slices one period at a time.
                    target = heap[0][0]
                bound = target if until is None else min(target, until)
            before = (engine.events_processed, engine.pending_events)
            engine.run_bounded(until=bound, max_events=budget)
            if self._phase_finished(engine, until):
                break
            if (engine.events_processed, engine.pending_events) != before:
                index += 1
                self._record(network, prefix, index)
        if until is not None and engine.now < until:
            engine.now = until  # pin once, exactly as Engine.run(until) does
        self._anchors = []
        self._anchor_ids = {}

    @staticmethod
    def _phase_finished(engine: Engine, until: float | None) -> bool:
        if engine._stopped:
            return True
        if engine.pending_deferred:
            return False
        heap = engine._heap
        if not heap:
            return True
        return until is not None and heap[0][0] > until

    # -- resume / record / GC ---------------------------------------------

    def _try_resume(self, network: "Network", prefix: str) -> int:
        """Restore the newest valid snapshot under ``prefix``; heal downward.

        Returns the restored snapshot's index (0 when starting fresh).
        Torn or corrupt snapshots fail their pre-unpickle validation and
        read as misses, so the ladder is: newest valid → its predecessor
        → scratch — the live graph is untouched until a snapshot has
        passed every check that can be made without unpickling.
        """
        global _RESTORE_ANCHORS
        candidates = []
        for key in self.store.keys():
            if not key.startswith(prefix):
                continue
            try:
                candidates.append((int(key[len(prefix):]), key))
            except ValueError:
                continue
        entry_events = network.engine.events_processed
        for index, key in sorted(candidates, reverse=True):
            loaded = self._read_valid(key)
            if loaded is None:
                continue  # torn/corrupt: fall through to the previous one
            header, payload = loaded
            if header["engine_events"] < entry_events:
                continue  # never rewind a phase that is already past it
            # Unpickling grafts the snapshot's state onto this run's live
            # objects (_load_anchor); past this point the graph is being
            # mutated, so a failure is fatal, not a heal-to-scratch.
            _RESTORE_ANCHORS = self._anchors
            try:
                restored = pickle.loads(payload)
            except Exception as exc:
                raise CheckpointError(
                    f"resume snapshot {key} failed while restoring into the "
                    f"live run: {exc}"
                ) from exc
            finally:
                _RESTORE_ANCHORS = None
            if restored is not network:
                raise CheckpointError(
                    f"resume snapshot {key} did not anchor onto the live "
                    f"network — its attempt walked a different object graph"
                )
            set_packet_id_counter(header["packet_counter"])
            # The phase entered with `entry_events` already accounted
            # (live warm-up or a branch-checkpoint credit); only the
            # killed attempt's progress beyond that is credited here.
            ENGINE_PERF.record(header["engine_events"] - entry_events, 0.0)
            hub = active_metrics_hub()
            if hub is not None:
                hub.attach(network)
                hub.reset_sampling(network)
            self.store.log("resume", key)
            self.resumed_keys.append(key)
            return index
        return 0

    def _read_valid(self, key: str) -> tuple[dict, bytes] | None:
        """Header and payload of snapshot ``key``, or None if not intact.

        Format, version, and payload-hash checks all happen here, before
        any unpickling, so a torn snapshot reads as a miss while the
        live graph is still untouched.
        """
        try:
            data = self.store.path(key).read_bytes()
        except OSError:
            return None
        head, sep, payload = data.partition(b"\n")
        if not sep:
            return None
        try:
            header = json.loads(head.decode())
        except (UnicodeDecodeError, ValueError):
            return None
        if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
            return None
        if header.get("version") != CHECKPOINT_VERSION:
            return None
        if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
            return None
        return header, payload

    def _record(self, network: "Network", prefix: str, index: int) -> None:
        key = f"{prefix}{index:06d}"
        with _detached_observer(network):
            snapshot = snapshot_network(network, description=key)
            buffer = io.BytesIO()
            _AnchorPickler(buffer, self._anchor_ids).dump(network)
        payload = buffer.getvalue()
        digest = hashlib.sha256(payload).hexdigest()
        header = json.dumps(snapshot.header(digest), sort_keys=True)
        self.store.put_bytes(key, header.encode() + b"\n" + payload)
        self.snapshots_recorded += 1
        stale = index - self.policy.keep
        if stale >= 1:
            self.store.discard([f"{prefix}{stale:06d}"], op="roll")

    def finish(self) -> list[str]:
        """Prune this run's whole snapshot trail (the run completed).

        Called only on success — a crashed run must leave its snapshots
        behind, they are what the retry resumes from.  Returns the pruned
        keys.
        """
        prefix = f"resume-{self.run_id}-"
        stale = [key for key in self.store.keys() if key.startswith(prefix)]
        return self.store.discard(stale, op="prune")


#: The session :func:`active_resume_session` answers with (None = run
#: phases straight through, the default).
_ACTIVE_SESSION: ResumeSession | None = None
#: Suspension depth: > 0 hides the active session (builder/recorder passes).
_SUSPEND_DEPTH = 0


def active_resume_session() -> ResumeSession | None:
    """The resume session the current phase should run under, if any."""
    if _SUSPEND_DEPTH:
        return None
    return _ACTIVE_SESSION


@contextlib.contextmanager
def use_resume_session(
    session: ResumeSession | None,
) -> Iterator[ResumeSession | None]:
    """Make ``session`` the active resume session for the enclosed block.

    The experiment runner wraps the driver call in this when a
    :class:`CheckpointPolicy` is in force.  Nests and restores the
    previous session on exit; ``None`` disables mid-run snapshots inside
    the block.
    """
    global _ACTIVE_SESSION
    previous = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    try:
        yield session
    finally:
        _ACTIVE_SESSION = previous


@contextlib.contextmanager
def suspended_resume() -> Iterator[None]:
    """Hide the active resume session for the enclosed block.

    Cache-building passes (warm-up builders, schedule recorders) run
    their own simulation phases, but only on cache misses — phases that
    sometimes happen would shift every later phase's ordinal and orphan
    its snapshots, so those passes run unsnapshotted.
    """
    global _SUSPEND_DEPTH
    _SUSPEND_DEPTH += 1
    try:
        yield
    finally:
        _SUSPEND_DEPTH -= 1
