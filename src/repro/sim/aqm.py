"""Active queue management: RED (Random Early Detection [14]) and CoDel
(Controlled Delay [22]).

§5 ("Incorporating Feedback") leaves open whether congestion-control
feedback — "implicit (e.g., packet drops by Active Queue Management
schemes)" — belongs in the universality story.  This module provides the
two canonical AQMs so the question is explorable on this substrate:

* :class:`RedAqm` — enqueue-side probabilistic early drop on the EWMA
  queue length,
* :class:`CoDelAqm` — dequeue-side (head) drops driven by packet sojourn
  time, the scheme the paper's motivating work ("No Silver Bullet" [28])
  combined with FIFO and FQ.

Attach either to a port and TCP senders receive early-drop feedback
before the buffer overflows.

Classic RED: an EWMA of the queue size is compared against two
thresholds.  Below ``min_threshold`` nothing drops; above
``max_threshold`` every arrival drops; in between, arrivals drop with a
probability that rises linearly to ``max_probability`` (with the standard
count-since-last-drop correction that spaces drops evenly).

The AQM only decides *admission of arrivals*; the scheduler still decides
service order, so RED composes with any discipline (FIFO in the classic
deployment, LSTF in the extension experiments).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet

__all__ = ["CoDelAqm", "RedAqm"]


class RedAqm:
    """Random Early Detection drop decisions for one port.

    Parameters
    ----------
    min_threshold, max_threshold:
        Queue-occupancy thresholds in bytes.
    max_probability:
        Drop probability as the average queue reaches ``max_threshold``.
    weight:
        EWMA weight for the average queue size (ns-2's ``q_weight``).
    rng:
        Seeded generator for reproducible drop decisions.
    idle_bandwidth:
        Used to age the average during idle periods: an idle port drains
        a virtual ``idle_time * bandwidth / 8`` bytes, per the RED paper.
    slack_aware:
        Classic RED drops the *arriving* packet.  With ``slack_aware=True``
        the port instead asks its scheduler for a victim via
        ``drop_victim`` — under LSTF that sacrifices the queued packet
        with the *most* remaining slack, extending §3's drop rule to early
        drops.  This is the §5 "incorporating feedback" experiment's
        slack-aware variant (see EXPERIMENTS.md).
    """

    __slots__ = ("min_threshold", "max_threshold", "max_probability",
                 "weight", "idle_bandwidth", "slack_aware", "_rng", "_avg",
                 "_count", "_idle_since", "drops")

    def __init__(
        self,
        min_threshold: float,
        max_threshold: float,
        max_probability: float = 0.1,
        weight: float = 0.002,
        rng: random.Random | None = None,
        idle_bandwidth: float | None = None,
        slack_aware: bool = False,
    ) -> None:
        if not 0 < min_threshold < max_threshold:
            raise ConfigurationError(
                f"need 0 < min_threshold < max_threshold, got "
                f"{min_threshold!r}, {max_threshold!r}"
            )
        if not 0 < max_probability <= 1:
            raise ConfigurationError(
                f"max_probability must be in (0, 1], got {max_probability!r}"
            )
        if not 0 < weight <= 1:
            raise ConfigurationError(f"weight must be in (0, 1], got {weight!r}")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self.idle_bandwidth = idle_bandwidth
        self.slack_aware = slack_aware
        self._rng = rng if rng is not None else random.Random(0)
        self._avg = 0.0
        self._count = -1
        self._idle_since: float | None = None
        #: Early drops ("marks") decided by this AQM — pure accounting,
        #: mirroring :attr:`CoDelAqm.drops`; never read by the simulation.
        self.drops = 0

    # --- state updates ------------------------------------------------------

    def on_idle(self, now: float) -> None:
        """Port went idle (empty queue); start aging the average."""
        self._idle_since = now

    def _update_average(self, queue_bytes: int, now: float) -> None:
        if self._idle_since is not None:
            if self.idle_bandwidth:
                drained = (now - self._idle_since) * self.idle_bandwidth / 8.0
                self._avg = max(0.0, self._avg - drained)
            self._idle_since = None
        self._avg += self.weight * (queue_bytes - self._avg)

    @property
    def average_queue(self) -> float:
        return self._avg

    # --- the decision ------------------------------------------------------------

    def should_drop(self, packet: "Packet", queue_bytes: int, now: float) -> bool:
        """Early-drop decision for an arriving packet."""
        self._update_average(queue_bytes, now)
        avg = self._avg
        if avg < self.min_threshold:
            self._count = -1
            return False
        if avg >= self.max_threshold:
            self._count = 0
            self.drops += 1
            return True
        self._count += 1
        base = (
            self.max_probability
            * (avg - self.min_threshold)
            / (self.max_threshold - self.min_threshold)
        )
        # Spacing correction from the RED paper: makes inter-drop gaps
        # roughly uniform instead of geometric.
        denominator = 1.0 - self._count * base
        probability = base / denominator if denominator > 0 else 1.0
        if self._rng.random() < probability:
            self._count = 0
            self.drops += 1
            return True
        return False


class CoDelAqm:
    """Controlled Delay (Nichols & Jacobson [22]), simplified per RFC 8289.

    CoDel watches each departing packet's *sojourn time* (how long it sat
    in the queue).  If the sojourn stays above ``target`` for at least one
    ``interval``, CoDel enters a dropping state: it drops the head packet
    and schedules the next drop at a shrinking spacing
    ``interval / sqrt(count)`` until the sojourn dips below target.

    Unlike RED this is a *dequeue-side* policy: the port consults
    :meth:`on_dequeue` for every packet it is about to transmit and pops a
    replacement when the verdict is "drop".

    Parameters follow the RFC's defaults, scaled to taste: ``target`` is
    the acceptable standing queue delay, ``interval`` a worst-case RTT.
    """

    __slots__ = ("target", "interval", "_first_above", "_dropping",
                 "_drop_next", "_count", "drops")

    #: RedAqm-compatible marker so ports can distinguish hook sides.
    dequeue_side = True

    def __init__(self, target: float = 0.005, interval: float = 0.1) -> None:
        if target <= 0 or interval <= 0:
            raise ConfigurationError(
                f"target and interval must be positive, got {target!r}, {interval!r}"
            )
        self.target = target
        self.interval = interval
        self._first_above: float | None = None
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0
        self.drops = 0

    # The enqueue-side hook is a no-op for CoDel.
    def should_drop(self, packet, queue_bytes: int, now: float) -> bool:  # noqa: D401
        return False

    def on_idle(self, now: float) -> None:
        pass

    def _sojourn_ok(self, sojourn: float, now: float) -> bool:
        """Below target: reset the above-target clock."""
        if sojourn < self.target:
            self._first_above = None
            return True
        if self._first_above is None:
            self._first_above = now + self.interval
            return True
        return now < self._first_above

    def on_dequeue(self, packet, sojourn: float, now: float) -> bool:
        """Verdict for the packet about to be transmitted: drop it?"""
        ok = self._sojourn_ok(sojourn, now)
        if not self._dropping:
            if ok:
                return False
            # Sojourn has been above target for a full interval: start
            # dropping.  Resume from the previous count if the last
            # dropping episode was recent (the RFC's hysteresis).
            self._dropping = True
            recent = now - self._drop_next < 8 * self.interval
            self._count = self._count - 2 if recent and self._count > 2 else 1
            self.drops += 1
            self._drop_next = now + self.interval / (self._count ** 0.5)
            return True
        if ok:
            self._dropping = False
            return False
        if now >= self._drop_next:
            self._count += 1
            self.drops += 1
            self._drop_next = now + self.interval / (self._count ** 0.5)
            return True
        return False
