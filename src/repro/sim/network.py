"""The network: nodes, links, routing, and the ``tmin`` algebra.

The :class:`Network` is the container an experiment manipulates: build the
topology, install per-port schedulers (possibly heterogeneous — §2.3
replays a half-FIFO+/half-FQ original), inject packets, and run.

Routing is deterministic shortest-path (hop count, ties broken by node
name) computed as a next-hop tree per destination, so recorded and
replayed runs route identically — a correctness requirement for replay,
where the recorded ``path(p)`` must reoccur.

``tmin`` follows Appendix A: the uncongested last-bit traversal time from
a node to the destination, i.e. the sum of per-link serialisation and
propagation delays along the remaining path (store-and-forward).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Iterable

from repro.errors import ConfigurationError, RoutingError
from repro.obs.hub import active_metrics_hub
from repro.schedulers.base import Scheduler
from repro.schedulers.fifo import FifoScheduler
from repro.sim.engine import Engine
from repro.sim.link import Link
from repro.sim.node import Host, Node, Router
from repro.sim.port import Port, PreemptivePort
from repro.sim.tracer import Tracer
from repro.units import MTU, tx_time

__all__ = ["Network"]

#: Signature of a scheduler factory: ``(node_name, neighbor_name) -> Scheduler``.
#: Returning ``None`` keeps the port's current scheduler — that is how an
#: experiment installs e.g. FQ on half the core and FIFO+ on the other half.
SchedulerFactory = Callable[[str, str], Scheduler | None]


class Network:
    """A simulated network of hosts and routers."""

    __slots__ = ("engine", "tracer", "obs", "nodes", "links", "_adjacency",
                 "_next_hop", "_tmin_cache", "_preemptive")

    def __init__(self, engine: Engine | None = None, tracer: Tracer | None = None) -> None:
        self.engine = engine if engine is not None else Engine()
        self.tracer = tracer if tracer is not None else Tracer()
        #: The attached :class:`~repro.obs.hub.MetricsHub`, or None —
        #: telemetry is off by default; ports cache this at construction.
        self.obs = None
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self._adjacency: dict[str, list[str]] = {}
        self._next_hop: dict[str, dict[str, str]] = {}  # dst -> {node: next}
        self._tmin_cache: dict[tuple[str, str, int], float] = {}
        self._preemptive = False
        hub = active_metrics_hub()
        if hub is not None:
            hub.attach(self)

    # --- topology construction -------------------------------------------------

    def add_host(self, name: str) -> Host:
        return self._add_node(Host(name, self))

    def add_router(self, name: str) -> Router:
        return self._add_node(Router(name, self))

    def _add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ConfigurationError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adjacency[node.name] = []
        return node

    def add_link(
        self,
        a: str,
        b: str,
        bandwidth: float,
        propagation: float = 0.0,
        bidirectional: bool = True,
        bandwidth_reverse: float | None = None,
    ) -> None:
        """Connect ``a`` and ``b``; by default both directions share parameters."""
        self._add_directed_link(a, b, bandwidth, propagation)
        if bidirectional:
            reverse_bw = bandwidth if bandwidth_reverse is None else bandwidth_reverse
            self._add_directed_link(b, a, reverse_bw, propagation)

    def _add_directed_link(self, u: str, v: str, bandwidth: float, propagation: float) -> None:
        if u not in self.nodes or v not in self.nodes:
            missing = u if u not in self.nodes else v
            raise ConfigurationError(f"cannot link unknown node {missing!r}")
        if u == v:
            raise ConfigurationError(f"self-loop on {u!r}")
        if (u, v) in self.links:
            raise ConfigurationError(f"duplicate link {u!r}->{v!r}")
        link = Link(u, v, bandwidth, propagation)
        self.links[(u, v)] = link
        self._adjacency[u].append(v)
        self._adjacency[u].sort()
        node = self.nodes[u]
        node.ports[v] = Port(node, link, FifoScheduler())
        self._invalidate_routes()

    # --- scheduler / buffer installation ----------------------------------------

    def install_schedulers(self, factory: SchedulerFactory) -> None:
        """(Re)place the scheduler of every port.

        The factory is called as ``factory(node_name, neighbor_name)`` for
        each port in deterministic (sorted) order.  Returning ``None``
        leaves that port unchanged.
        """
        for name in sorted(self.nodes):
            node = self.nodes[name]
            for neighbor in sorted(node.ports):
                scheduler = factory(name, neighbor)
                if scheduler is not None:
                    node.ports[neighbor].set_scheduler(scheduler)

    def install_uniform(self, make: Callable[[], Scheduler]) -> None:
        """Install a fresh scheduler from ``make()`` on every port."""
        self.install_schedulers(lambda _node, _peer: make())

    def use_preemptive_ports(self, make: Callable[[], Scheduler]) -> None:
        """Replace every port with a :class:`PreemptivePort` running ``make()``.

        Used by the theoretical replay mode (§2.1 allows the candidate UPS
        to preempt).  Must be called before any packet is injected.
        """
        if self.tracer.records:
            raise ConfigurationError("cannot switch to preemptive ports mid-run")
        for name in sorted(self.nodes):
            node = self.nodes[name]
            for neighbor in sorted(node.ports):
                link = node.ports[neighbor].link
                node.ports[neighbor] = PreemptivePort(node, link, make())
        # Replacing port objects orphans any cached next-hop ports.
        for node in self.nodes.values():
            node.invalidate_route_cache()
        self._preemptive = True

    def set_buffers(
        self,
        buffer_bytes: float,
        node_filter: Callable[[Node], bool] | None = None,
    ) -> None:
        """Set finite buffers, optionally only on nodes matching ``node_filter``."""
        for node in self.nodes.values():
            if node_filter is not None and not node_filter(node):
                continue
            for port in node.ports.values():
                port.set_buffer(buffer_bytes)

    # --- routing ------------------------------------------------------------------

    def _invalidate_routes(self) -> None:
        self._next_hop.clear()
        self._tmin_cache.clear()
        for node in self.nodes.values():
            node.invalidate_route_cache()

    def _build_tree(self, dst: str) -> dict[str, str]:
        """BFS next-hop tree toward ``dst`` (hop count, lexicographic ties)."""
        tree: dict[str, str] = {}
        frontier = deque([dst])
        visited = {dst}
        while frontier:
            v = frontier.popleft()
            # Neighbors u with a link u->v can reach dst through v.
            for u in sorted(self.nodes):
                if u in visited or (u, v) not in self.links:
                    continue
                visited.add(u)
                tree[u] = v
                frontier.append(u)
        return tree

    def next_hop(self, node: str, dst: str) -> str:
        tree = self._next_hop.get(dst)
        if tree is None:
            tree = self._build_tree(dst)
            self._next_hop[dst] = tree
        try:
            return tree[node]
        except KeyError:
            raise RoutingError(f"no route from {node!r} to {dst!r}") from None

    def route(self, src: str, dst: str) -> tuple[str, ...]:
        """Full node path from ``src`` to ``dst`` (inclusive)."""
        if src not in self.nodes or dst not in self.nodes:
            missing = src if src not in self.nodes else dst
            raise RoutingError(f"unknown node {missing!r}")
        if src == dst:
            return (src,)
        path = [src]
        node = src
        while node != dst:
            node = self.next_hop(node, dst)
            path.append(node)
            if len(path) > len(self.nodes):
                raise RoutingError(f"routing loop from {src!r} to {dst!r}")
        return tuple(path)

    # --- tmin algebra (Appendix A) ---------------------------------------------------

    def path_tmin(self, size: int, path: Iterable[str]) -> float:
        """Uncongested last-bit traversal time along ``path``."""
        total = 0.0
        nodes = list(path)
        for u, v in zip(nodes, nodes[1:]):
            link = self.links.get((u, v))
            if link is None:
                raise RoutingError(f"path uses non-existent link {u!r}->{v!r}")
            total += link.traversal_time(size)
        return total

    def tmin(self, src: str, dst: str, size: int) -> float:
        """``tmin(p, src, dst)`` for a packet of ``size`` bytes (memoised)."""
        key = (src, dst, size)
        cached = self._tmin_cache.get(key)
        if cached is None:
            cached = self.path_tmin(size, self.route(src, dst))
            self._tmin_cache[key] = cached
        return cached

    def remaining_tmin(self, node: str, dst: str, size: int) -> float:
        """``tmin`` from an interior node to the destination (EDF's lookup)."""
        return self.tmin(node, dst, size)

    # --- convenience -----------------------------------------------------------------

    @property
    def hosts(self) -> list[Host]:
        return sorted(
            (n for n in self.nodes.values() if isinstance(n, Host)),
            key=lambda n: n.name,
        )

    @property
    def routers(self) -> list[Router]:
        return sorted(
            (n for n in self.nodes.values() if isinstance(n, Router)),
            key=lambda n: n.name,
        )

    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise ConfigurationError(f"{name!r} is a {node.kind}, not a host")
        return node

    def bottleneck_tx_time(self, size: int = MTU) -> float:
        """Transmission time of one packet on the slowest link — the
        overdue threshold ``T`` of §2.3."""
        if not self.links:
            raise ConfigurationError("network has no links")
        slowest = min(link.bandwidth for link in self.links.values())
        return tx_time(size, slowest)

    def inject_at(self, time: float, packet) -> None:
        """Schedule ``packet`` to enter the network at its source host."""
        host = self.host(packet.src)
        self.engine.schedule_at(time, host.inject, packet)

    def run(self, until: float | None = None) -> None:
        """Run the simulation (one *phase* of the hosting experiment).

        With a resume session active (:mod:`repro.sim.resume`) the phase
        executes as snapshot-separated slices — same event sequence, same
        final clock — and may fast-forward through a snapshot a killed
        attempt left behind.  Otherwise it is a plain ``Engine.run``.
        """
        from repro.sim.resume import active_resume_session  # local: avoids cycle

        session = active_resume_session()
        if session is not None:
            session.run_phase(self, until=until)
            return
        if self.obs is not None:
            self.obs.ensure_sampling(self)
        self.engine.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network nodes={len(self.nodes)} links={len(self.links)} "
            f"t={self.engine.now:.6f}>"
        )
