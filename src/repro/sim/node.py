"""Nodes: store-and-forward routers and end hosts.

Hosts are the *ingress* of the paper's model: packet headers (slack,
priority, deadline, omniscient timetable) are initialised when a packet is
injected at its source host, and the host's uplink port participates in
scheduling like any router port (DESIGN.md §5).  Hosts also carry the
transport agents (UDP sinks, TCP senders/receivers) for the closed-loop
experiments of §3.

``receive``/``forward`` run once per packet per hop, so nodes are slotted
and keep a per-destination next-hop **port** cache (cleared by the network
whenever topology or port objects change) instead of walking
``network.next_hop`` + ``ports[...]`` dictionaries for every packet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol

from repro.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet
    from repro.sim.network import Network
    from repro.sim.port import Port

__all__ = ["Host", "Node", "Router"]


class _Agent(Protocol):
    def on_packet(self, packet: "Packet") -> None: ...


class Node:
    """Base store-and-forward node."""

    __slots__ = ("name", "network", "ports", "_tracer", "_engine", "_out_port")

    kind = "node"

    def __init__(self, name: str, network: "Network") -> None:
        self.name = name
        self.network = network
        self.ports: dict[str, "Port"] = {}
        self._tracer = network.tracer
        self._engine = network.engine
        self._out_port: dict[str, "Port"] = {}  # dst -> next-hop port cache

    # --- data path ----------------------------------------------------------

    def receive(self, packet: "Packet") -> None:
        """Last bit of ``packet`` has arrived here."""
        packet.path_pos += 1
        tracer = self._tracer
        tracer.on_hop(packet, self.name)
        dst = packet.dst
        if dst == self.name:
            tracer.on_exit(packet, self._engine.now)
            self.deliver(packet)
        else:
            port = self._out_port.get(dst)
            if port is None:
                port = self.ports[self.network.next_hop(self.name, dst)]
                self._out_port[dst] = port
            port.enqueue(packet)

    def forward(self, packet: "Packet") -> None:
        port = self._out_port.get(packet.dst)
        if port is None:
            port = self.ports[self.network.next_hop(self.name, packet.dst)]
            self._out_port[packet.dst] = port
        port.enqueue(packet)

    def invalidate_route_cache(self) -> None:
        """Drop cached next-hop ports (topology or port objects changed)."""
        self._out_port.clear()

    def deliver(self, packet: "Packet") -> None:
        raise SimulationError(
            f"{self.kind} {self.name!r} received a packet addressed to itself; "
            "only hosts terminate traffic"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={sorted(self.ports)}>"


class Router(Node):
    """An interior store-and-forward switch."""

    __slots__ = ()

    kind = "router"


class Host(Node):
    """An end host: traffic source, traffic sink, transport agent carrier."""

    __slots__ = ("_senders", "_receivers", "on_deliver")

    kind = "host"

    def __init__(self, name: str, network: "Network") -> None:
        super().__init__(name, network)
        self._senders: dict[int, _Agent] = {}
        self._receivers: dict[int, _Agent] = {}
        self.on_deliver: Callable[["Packet"], None] | None = None

    # --- injection ------------------------------------------------------------

    def inject(self, packet: "Packet") -> None:
        """Enter ``packet`` into the network now (its ingress time ``i(p)``)."""
        if packet.src != self.name:
            raise ConfigurationError(
                f"packet {packet.pid} has src={packet.src!r} but was injected at "
                f"{self.name!r}"
            )
        if packet.dst == self.name:
            raise ConfigurationError(f"packet {packet.pid} addressed to its own source")
        packet.created = self._engine.now
        packet.path_pos = 0
        self._tracer.on_created(packet, self.name)
        self.forward(packet)

    # --- transport agents --------------------------------------------------------

    def register_sender(self, flow_id: int, agent: _Agent) -> None:
        if flow_id in self._senders:
            raise ConfigurationError(f"flow {flow_id} already has a sender on {self.name}")
        self._senders[flow_id] = agent

    def register_receiver(self, flow_id: int, agent: _Agent) -> None:
        if flow_id in self._receivers:
            raise ConfigurationError(f"flow {flow_id} already has a receiver on {self.name}")
        self._receivers[flow_id] = agent

    def deliver(self, packet: "Packet") -> None:
        agents = self._senders if packet.is_ack else self._receivers
        agent = agents.get(packet.flow_id)
        if agent is not None:
            agent.on_packet(packet)
        elif self.on_deliver is not None:
            self.on_deliver(packet)
        # Otherwise the host is a plain sink: the tracer has already
        # recorded the exit, which is all the open-loop experiments need.
