"""Fair queueing (Demers, Keshav, Shenker [12]).

We implement the self-clocked variant (SCFQ): the virtual time ``v(t)`` is
the service (finish) tag of the packet currently being transmitted, and a
packet of flow *f* arriving at virtual time ``v`` is stamped

    F_f  =  max(F_f, v) + size / weight

Packets are served in increasing finish-tag order.  SCFQ tracks the
bit-by-bit round-robin of the original paper to within one packet time per
flow, which is well inside the fidelity the replay experiments need, and
it avoids simulating the bit-granularity round number.

Weighted fairness is supported through ``Flow.weight`` stamped onto
packets by the transports (defaults to 1.0).
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import IndexedHeapQueue, Scheduler

__all__ = ["FqScheduler"]


class FqScheduler(Scheduler):
    """Self-clocked weighted fair queueing over flows."""

    __slots__ = ("_queue", "_finish_tags", "_weights", "_vtime")

    name = "fq"

    def __init__(self) -> None:
        super().__init__()
        self._queue = IndexedHeapQueue()
        self._finish_tags: dict[int, float] = {}
        self._weights: dict[int, float] = {}
        self._vtime = 0.0

    def set_weight(self, flow_id: int, weight: float) -> None:
        """Assign a relative weight to a flow (before its packets arrive)."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight!r}")
        self._weights[flow_id] = weight

    def push(self, packet: Packet, now: float) -> None:
        weight = self._weights.get(packet.flow_id, 1.0)
        start = max(self._finish_tags.get(packet.flow_id, 0.0), self._vtime)
        finish = start + packet.size / weight
        self._finish_tags[packet.flow_id] = finish
        self._queue.push(finish, packet)

    def pop(self, now: float) -> Optional[Packet]:
        entry = self._queue.pop_entry()
        if entry is None:
            return None
        finish, packet = entry
        self._vtime = finish
        if not len(self._queue):
            # Idle port: reset virtual time so tags don't grow unboundedly.
            self._vtime = 0.0
            self._finish_tags.clear()
        return packet

    def __len__(self) -> int:
        return len(self._queue)
