"""A pipelined heap (p-heap), after Bhagwan & Lin [6] and Ioannou &
Katevenis [16].

§5 ("Real Implementation") argues LSTF is hardware-feasible because its
per-router work is exactly fine-grained priority queueing, "which can be
carried out in almost constant time using specialized data-structures
such as pipelined heap (p-heap)".  This module provides a software model
of that structure so the claim is concrete in this reproduction:

* a fixed-capacity binary heap laid out level by level in arrays, the
  way the hardware holds one pipeline stage per level;
* **top-down** insertion and deletion: every operation touches each level
  at most once, moving strictly downward, which is what lets hardware
  pipeline back-to-back operations one level apart.  (Software gains
  nothing from the pipelining itself, but the access pattern — O(log n)
  with no upward percolation — is faithfully modelled.)

Each level ``i`` holds ``2**i`` slots and a per-subtree *vacancy count*
that steers insertions toward subtrees with room, exactly the bookkeeping
the hardware keeps per node.

:class:`PHeapScheduler` wires the structure into the scheduler interface
as a drop-in alternative backend for LSTF, and the property tests check
it against ``heapq`` on random workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import Packet
from repro.errors import SchedulerError
from repro.schedulers.lstf import LstfScheduler

__all__ = ["PHeap", "PHeapLstfScheduler"]


class PHeap:
    """Fixed-capacity min-heap with top-down (pipelineable) operations.

    Keys are compared as plain tuples, so callers can pass ``(key, seq)``
    for FIFO tie-breaking.  Capacity is rounded up to a full tree.
    """

    __slots__ = ("_levels", "_keys", "_values", "_vacancies", "_count")

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._levels = 1
        while (1 << self._levels) - 1 < capacity:
            self._levels += 1
        size = (1 << self._levels) - 1
        self._keys: list[object | None] = [None] * size
        self._values: list[object | None] = [None] * size
        # vacancies[i] = free slots in the subtree rooted at i.
        full = [self._subtree_size(i) for i in range(size)]
        self._vacancies = full
        self._count = 0

    # --- geometry -----------------------------------------------------------

    def _subtree_size(self, index: int) -> int:
        level = (index + 1).bit_length() - 1  # root is level 0
        return (1 << (self._levels - level)) - 1

    @property
    def capacity(self) -> int:
        return len(self._keys)

    def __len__(self) -> int:
        return self._count

    def peek(self):
        """The minimum ``(key, value)`` pair, or ``None`` if empty."""
        if self._count == 0:
            return None
        return self._keys[0], self._values[0]

    # --- operations -----------------------------------------------------------

    def push(self, key, value) -> None:
        """Top-down insertion: carry the new item down one level at a time,
        swapping it with the resident whenever the resident is larger, and
        steering into the subtree that has a vacancy."""
        if self._count >= self.capacity:
            raise SchedulerError(
                f"p-heap overflow: capacity {self.capacity} exceeded (a real "
                "switch would size the heap to its buffer)"
            )
        self._count += 1
        index = 0
        while True:
            self._vacancies[index] -= 1
            if self._keys[index] is None:
                self._keys[index] = key
                self._values[index] = value
                return
            if key < self._keys[index]:
                # The travelling item displaces the resident; the resident
                # continues downward (hardware swaps them in place).
                key, self._keys[index] = self._keys[index], key
                value, self._values[index] = self._values[index], value
            left, right = 2 * index + 1, 2 * index + 2
            if left >= self.capacity:
                raise SchedulerError("p-heap invariant violated: no room at leaf")
            index = left if self._vacancies[left] > 0 else right

    def pop(self):
        """Remove and return the minimum ``(key, value)``.

        Top-down deletion: the root hole is filled by promoting the
        smaller child, and the hole travels down one level per step.
        """
        if self._count == 0:
            raise SchedulerError("pop from empty p-heap")
        self._count -= 1
        out = (self._keys[0], self._values[0])
        index = 0
        while True:
            self._vacancies[index] += 1
            left, right = 2 * index + 1, 2 * index + 2
            child = None
            if left < self.capacity and self._keys[left] is not None:
                child = left
            if (
                right < self.capacity
                and self._keys[right] is not None
                and (child is None or self._keys[right] < self._keys[left])
            ):
                child = right
            if child is None:
                self._keys[index] = None
                self._values[index] = None
                return out
            self._keys[index] = self._keys[child]
            self._values[index] = self._values[child]
            index = child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PHeap {self._count}/{self.capacity}>"


class PHeapLstfScheduler(LstfScheduler):
    """LSTF on a p-heap backend — the §5 hardware-feasibility model.

    Semantically identical to :class:`~repro.schedulers.lstf.LstfScheduler`
    (same keys, same FIFO tie-breaking via a push counter); only the
    priority queue implementation differs.  The equivalence is enforced by
    property tests and the ``bench_pheap`` benchmark.
    """

    __slots__ = ("_pheap",)

    name = "lstf-pheap"

    def __init__(self, capacity: int = 4096) -> None:
        super().__init__()
        self._pheap = PHeap(capacity)

    def push(self, packet: Packet, now: float) -> None:
        self._pheap.push((self._key(packet), self._next_seq()), packet)

    def pop(self, now: float) -> Optional[Packet]:
        if not len(self._pheap):
            return None
        _key, packet = self._pheap.pop()
        packet.slack -= now - packet.enqueue_time
        return packet

    def __len__(self) -> int:
        return len(self._pheap)

    def drop_victim(self, arriving: Packet, now: float) -> Packet:
        raise SchedulerError(
            "p-heap backend does not implement drop-highest-slack; use the "
            "standard LstfScheduler for finite-buffer experiments"
        )
