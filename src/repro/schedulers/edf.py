"""Network-wide Earliest Deadline First (Appendix E).

EDF keeps the packet header *static*: it carries only the target output
time ``o(p)`` (``packet.deadline``).  Each router α derives a local
priority from static topology knowledge:

    priority(p, α) = o(p) − tmin(p, α, dest(p)) + T(p, α)

Appendix E proves this is *equivalent* to LSTF — both pick the same packet
at every instant — because ``slack(p, α, t) = priority(p, α) − t`` and the
``−t`` shift is common to all queued packets.  The property test
``tests/schedulers/test_edf_lstf_equivalence.py`` exercises this theorem
end-to-end on random networks.

The router-side ``tmin`` lookups are served by the network's routing/
``remaining_tmin`` API and memoised per (destination, size).
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.schedulers.base import KeyedScheduler

__all__ = ["EdfScheduler"]


class EdfScheduler(KeyedScheduler):
    """Serve the packet with the earliest locally derived deadline."""

    __slots__ = ("_tmin_cache", "_tx_per_byte")

    name = "edf"

    def __init__(self) -> None:
        super().__init__()
        self._tmin_cache: dict[tuple[str, int], float] = {}
        self._tx_per_byte = 0.0  # set at attach

    def attach(self, port) -> None:
        super().attach(port)
        self._tx_per_byte = port.link.tx_per_byte

    def _key(self, packet: Packet) -> float:
        key = (packet.dst, packet.size)
        remaining = self._tmin_cache.get(key)
        if remaining is None:
            network = self.port.node.network
            remaining = network.remaining_tmin(self.port.node.name, packet.dst, packet.size)
            self._tmin_cache[key] = remaining
        return packet.deadline - remaining + packet.size * self._tx_per_byte

    # kept for callers that used the descriptive name
    _local_priority = _key

    def preemption_key(self, packet: Packet) -> float:
        return self._key(packet)
