"""Network-wide Earliest Deadline First (Appendix E).

EDF keeps the packet header *static*: it carries only the target output
time ``o(p)`` (``packet.deadline``).  Each router α derives a local
priority from static topology knowledge:

    priority(p, α) = o(p) − tmin(p, α, dest(p)) + T(p, α)

Appendix E proves this is *equivalent* to LSTF — both pick the same packet
at every instant — because ``slack(p, α, t) = priority(p, α) − t`` and the
``−t`` shift is common to all queued packets.  The property test
``tests/schedulers/test_edf_lstf_equivalence.py`` exercises this theorem
end-to-end on random networks.

The router-side ``tmin`` lookups are served by the network's routing/
``remaining_tmin`` API and memoised per (destination, size).
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["EdfScheduler"]


class EdfScheduler(Scheduler):
    """Serve the packet with the earliest locally derived deadline."""

    name = "edf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Packet]] = []
        self._tmin_cache: dict[tuple[str, int], float] = {}

    def _local_priority(self, packet: Packet) -> float:
        key = (packet.dst, packet.size)
        remaining = self._tmin_cache.get(key)
        if remaining is None:
            network = self.port.node.network
            remaining = network.remaining_tmin(self.port.node.name, packet.dst, packet.size)
            self._tmin_cache[key] = remaining
        return packet.deadline - remaining + self.port.link.tx_time(packet.size)

    def preemption_key(self, packet: Packet) -> float:
        return self._local_priority(packet)

    def push(self, packet: Packet, now: float) -> None:
        heapq.heappush(self._heap, (self._local_priority(packet), self._next_seq(), packet))

    def pop(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)
