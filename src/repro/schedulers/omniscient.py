"""Omniscient per-hop priority scheduling (Appendix B).

Under *omniscient* header initialisation the ingress writes an
n-dimensional vector into the header of packet ``p`` whose i-th element is
``o(p, α_i)`` — the time the i-th hop on ``path(p)`` scheduled the packet
in the original run.  Each router pops the head of the vector and uses it
as a static priority.  Appendix B proves this replays *any* viable
schedule perfectly; the property tests use that theorem as an oracle for
the whole simulator (if omniscient replay is ever late, the bug is ours).

Implementation detail: rather than mutating the header vector we index it
with ``packet.path_pos``, the hop counter the nodes maintain — identical
semantics, cheaper bookkeeping.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.errors import SchedulerError
from repro.schedulers.base import KeyedScheduler

__all__ = ["OmniscientScheduler"]


class OmniscientScheduler(KeyedScheduler):
    """Serve packets by their recorded per-hop output times."""

    __slots__ = ()

    name = "omniscient"

    def _key(self, packet: Packet) -> float:
        if packet.hop_times is None:
            raise SchedulerError(
                f"packet {packet.pid} carries no per-hop timetable; omniscient "
                "replay requires record_schedule() output with hop times"
            )
        try:
            return packet.hop_times[packet.path_pos]
        except IndexError:
            raise SchedulerError(
                f"packet {packet.pid} is at hop {packet.path_pos} but its "
                f"timetable has only {len(packet.hop_times)} entries — the "
                "replay topology routed it differently than the recording"
            ) from None

    def preemption_key(self, packet: Packet) -> float:
        return self._key(packet)
