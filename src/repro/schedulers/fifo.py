"""First-in, first-out scheduling — the drop-tail baseline."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """Serve packets in arrival order.

    A deque is already O(1) on both ends, so FIFO bypasses the shared
    indexed heap entirely — it is the floor every keyed discipline's
    constant factor is compared against in ``benchmarks/perf``.
    """

    __slots__ = ("_queue",)

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Packet] = deque()

    def push(self, packet: Packet, now: float) -> None:
        self._queue.append(packet)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
