"""First-in, first-out scheduling — the drop-tail baseline."""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["FifoScheduler"]


class FifoScheduler(Scheduler):
    """Serve packets in arrival order."""

    name = "fifo"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[Packet] = deque()

    def push(self, packet: Packet, now: float) -> None:
        self._queue.append(packet)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
