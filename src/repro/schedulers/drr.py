"""Deficit Round Robin (Shreedhar & Varghese [27]).

Included as an ablation baseline for the fairness experiment (Figure 4):
DRR approximates fair queueing with O(1) dequeues, so comparing LSTF's
convergence against both FQ and DRR shows the result does not hinge on the
precision of the fairness baseline.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler
from repro.units import MTU

__all__ = ["DrrScheduler"]


class DrrScheduler(Scheduler):
    """Deficit round robin over flows.

    Parameters
    ----------
    quantum:
        Bytes added to a flow's deficit each round; defaults to one MTU,
        the standard choice guaranteeing O(1) work per dequeue.
    """

    __slots__ = ("_quantum", "_flows", "_deficit", "_size")

    name = "drr"

    def __init__(self, quantum: int = MTU) -> None:
        super().__init__()
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self._quantum = quantum
        # Active list keyed by flow id; OrderedDict gives deterministic
        # round-robin order with O(1) membership checks.
        self._flows: "OrderedDict[int, deque[Packet]]" = OrderedDict()
        self._deficit: dict[int, float] = {}
        self._size = 0

    def push(self, packet: Packet, now: float) -> None:
        fifo = self._flows.get(packet.flow_id)
        if fifo is None:
            self._flows[packet.flow_id] = deque([packet])
            self._deficit[packet.flow_id] = 0.0
        else:
            fifo.append(packet)
        self._size += 1

    def pop(self, now: float) -> Optional[Packet]:
        if self._size == 0:
            return None
        while True:
            flow_id, fifo = next(iter(self._flows.items()))
            deficit = self._deficit[flow_id] + self._quantum
            head = fifo[0]
            if head.size <= deficit:
                fifo.popleft()
                self._size -= 1
                if fifo:
                    # Flow keeps its remaining deficit but we only charge
                    # a fresh quantum when it returns to the head.
                    self._deficit[flow_id] = deficit - head.size - self._quantum
                else:
                    del self._flows[flow_id]
                    del self._deficit[flow_id]
                return head
            # Not enough deficit: bank it and rotate the flow to the back.
            self._deficit[flow_id] = deficit
            self._flows.move_to_end(flow_id)

    def __len__(self) -> int:
        return self._size
