"""Scheduler interface and the shared indexed-heap queue.

A scheduler owns the set of packets queued at one output port and decides
which packet the port transmits next.  The contract:

* :meth:`push` / :meth:`pop` — called by the port with the current time.
  ``pop`` may return ``None`` only for non-work-conserving schedulers (the
  theory gadgets' :class:`~repro.schedulers.timetable.TimetableScheduler`);
  in that case :meth:`earliest_release` says when to try again.
* :meth:`drop_victim` — on buffer overflow, which packet to sacrifice.
  The default is the arriving packet (tail drop).  LSTF overrides this to
  drop the queued packet with the highest remaining slack, as §3 specifies.
* :meth:`preemption_key` — static urgency key for schedulers that support
  the preemptive port (smaller is more urgent); ``None`` disables
  preemption support.

Determinism: every scheduler breaks ties FIFO via a monotone push counter,
so identical inputs produce identical schedules.

Most disciplines in this package are *keyed*: they serve the queued packet
with the smallest static key.  Two shared pieces keep that hot path
O(log n) with no linear scans anywhere:

* :class:`IndexedHeapQueue` — a binary min-heap of ``(key, seq, packet)``
  with lazy eviction by pid and O(log n) amortised access to the *worst*
  (highest-key) live entry through a lazily built mirrored max-heap, so
  drop policies never scan the queue and dropless runs (the common case)
  pay nothing for the mirror.
* :class:`KeyedScheduler` — a Scheduler subclass implementing
  ``push``/``pop``/``__len__``/``preemption_key`` on top of that queue;
  concrete disciplines only supply :meth:`KeyedScheduler._key`.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet
    from repro.sim.port import Port

__all__ = ["IndexedHeapQueue", "KeyedScheduler", "Scheduler"]


class IndexedHeapQueue:
    """Priority queue over packets with lazy eviction and worst-tracking.

    Entries are ``(key, seq, packet)``; ``seq`` is a monotone counter, so
    equal keys break FIFO and heap comparisons never reach the packet.

    Liveness is tracked as ``pid -> seq`` of the packet's current entry (a
    packet can be queued at most once per port at a time), which lets
    :meth:`evict` run in O(1) and makes stale entries self-identifying
    when they surface at either heap's top.  The map is created lazily on
    the first :meth:`evict`/:meth:`worst_entry` call: disciplines that
    never evict (priority, SJF, FIFO+, EDF, FQ, …) and dropless runs skip
    the bookkeeping entirely and run at raw ``heapq`` speed.
    """

    __slots__ = ("_heap", "_live", "_worst", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._live: dict[int, int] | None = None  # built on first evict/worst
        self._worst: list[tuple] | None = None  # built on first worst() call
        self._seq = 0

    def __len__(self) -> int:
        live = self._live
        return len(self._heap) if live is None else len(live)

    def _ensure_live(self) -> dict[int, int]:
        live = self._live
        if live is None:
            # No eviction has happened yet, so every heap entry is live.
            self._live = live = {p.pid: seq for _key, seq, p in self._heap}
        return live

    # --- core operations --------------------------------------------------

    def push(self, key, packet: "Packet") -> None:
        """Insert ``packet`` with priority ``key`` — O(log n)."""
        self._seq = seq = self._seq + 1
        if self._live is not None:
            self._live[packet.pid] = seq
        heappush(self._heap, (key, seq, packet))
        if self._worst is not None:
            heappush(self._worst, (-key, -seq, packet))

    def pop(self) -> Optional["Packet"]:
        """Remove and return the minimum-key live packet — O(log n) am."""
        heap = self._heap
        live = self._live
        if live is None:
            return heappop(heap)[2] if heap else None
        while heap:
            _key, seq, packet = heappop(heap)
            if live.get(packet.pid) == seq:
                del live[packet.pid]
                return packet
        return None

    def pop_entry(self):
        """Like :meth:`pop` but returns ``(key, packet)`` (or ``None``)."""
        heap = self._heap
        live = self._live
        if live is None:
            if not heap:
                return None
            key, _seq, packet = heappop(heap)
            return key, packet
        while heap:
            key, seq, packet = heappop(heap)
            if live.get(packet.pid) == seq:
                del live[packet.pid]
                return key, packet
        return None

    def peek_entry(self):
        """``(key, packet)`` of the minimum live entry without removing it.

        Stale entries encountered on the way are discarded, so repeated
        peeks stay O(1) amortised.
        """
        heap = self._heap
        live = self._live
        if live is None:
            if not heap:
                return None
            key, _seq, packet = heap[0]
            return key, packet
        while heap:
            key, seq, packet = heap[0]
            if live.get(packet.pid) == seq:
                return key, packet
            heappop(heap)
        return None

    def peek(self) -> Optional["Packet"]:
        entry = self.peek_entry()
        return entry[1] if entry is not None else None

    def evict(self, pid: int) -> bool:
        """Lazily remove the entry for ``pid`` — O(1) amortised.

        Returns whether the pid was live.  The heap entry stays behind and
        is discarded when it surfaces.
        """
        return self._ensure_live().pop(pid, None) is not None

    # --- worst-entry access (drop policies) -------------------------------

    def _build_worst(self) -> list[tuple]:
        live = self._ensure_live()
        worst = [
            (-key, -seq, packet)
            for key, seq, packet in self._heap
            if live.get(packet.pid) == seq
        ]
        heapify(worst)
        self._worst = worst
        return worst

    def worst_entry(self):
        """``(key, packet)`` of the *highest*-key live entry, or ``None``.

        Equal keys resolve to the most recent push, mirroring the "drop
        the newest of the worst" convention of the LSTF drop policy.  The
        mirrored max-heap is built on first use (one O(n) pass — only
        finite-buffer runs ever pay it) and maintained incrementally
        afterwards, so each call is O(log n) amortised.
        """
        worst = self._worst
        if worst is None:
            worst = self._build_worst()
        live = self._live
        while worst:
            nkey, nseq, packet = worst[0]
            if live.get(packet.pid) == -nseq:
                return -nkey, packet
            heappop(worst)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IndexedHeapQueue len={len(self)}>"


class Scheduler:
    """Abstract base for per-port packet schedulers."""

    __slots__ = ("_port", "_push_seq")

    #: Registry/display name; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self._port: "Port | None" = None
        self._push_seq = 0

    # --- wiring -------------------------------------------------------------

    def attach(self, port: "Port") -> None:
        """Bind this scheduler to its port.

        Called once when the port is created.  Schedulers that need
        topology information (EDF) or link parameters (LSTF's ``T(p, α)``
        term) grab them here.
        """
        if self._port is not None and self._port is not port:
            raise SchedulerError(
                f"{self.name} scheduler is already attached to a port; "
                "schedulers are per-port objects and cannot be shared"
            )
        self._port = port

    @property
    def port(self) -> "Port":
        if self._port is None:
            raise SchedulerError(f"{self.name} scheduler is not attached to a port")
        return self._port

    def _next_seq(self) -> int:
        self._push_seq += 1
        return self._push_seq

    # --- queue operations (subclass responsibility) ---------------------------

    def push(self, packet: "Packet", now: float) -> None:
        raise NotImplementedError

    def pop(self, now: float) -> Optional["Packet"]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # --- optional behaviours ---------------------------------------------------

    def earliest_release(self, now: float) -> float | None:
        """Next time a ``pop`` could succeed, for non-work-conserving
        schedulers that just returned ``None`` despite a non-empty queue.

        Work-conserving schedulers (everything except the timetable oracle)
        never need this and return ``None``.
        """
        return None

    def drop_victim(self, arriving: "Packet", now: float) -> "Packet":
        """Choose the packet to drop when the port buffer is full.

        Returning ``arriving`` means "don't admit the new packet".
        Returning a queued packet means the scheduler has *already removed*
        that packet from its queue and the port should admit ``arriving``.
        """
        return arriving

    def preemption_key(self, packet: "Packet") -> float | None:
        """Static urgency key for preemptive service; ``None`` = unsupported."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} len={len(self)}>"


class KeyedScheduler(Scheduler):
    """Serve packets in increasing order of a static per-packet key.

    Subclasses implement :meth:`_key`; enqueue/dequeue ride on the shared
    :class:`IndexedHeapQueue`, so both are O(log n) with FIFO tie-breaking
    and no linear scans.  Disciplines that support the preemptive port
    typically implement ``preemption_key`` as the same function.
    """

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        super().__init__()
        self._queue = IndexedHeapQueue()

    def _key(self, packet: "Packet"):
        raise NotImplementedError

    def push(self, packet: "Packet", now: float) -> None:
        self._queue.push(self._key(packet), packet)

    def pop(self, now: float) -> Optional["Packet"]:
        return self._queue.pop()

    def __len__(self) -> int:
        return len(self._queue)
