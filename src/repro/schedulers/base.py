"""Scheduler interface.

A scheduler owns the set of packets queued at one output port and decides
which packet the port transmits next.  The contract:

* :meth:`push` / :meth:`pop` — called by the port with the current time.
  ``pop`` may return ``None`` only for non-work-conserving schedulers (the
  theory gadgets' :class:`~repro.schedulers.timetable.TimetableScheduler`);
  in that case :meth:`earliest_release` says when to try again.
* :meth:`drop_victim` — on buffer overflow, which packet to sacrifice.
  The default is the arriving packet (tail drop).  LSTF overrides this to
  drop the queued packet with the highest remaining slack, as §3 specifies.
* :meth:`preemption_key` — static urgency key for schedulers that support
  the preemptive port (smaller is more urgent); ``None`` disables
  preemption support.

Determinism: every scheduler breaks ties FIFO via a monotone push counter,
so identical inputs produce identical schedules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet
    from repro.sim.port import Port

__all__ = ["Scheduler"]


class Scheduler:
    """Abstract base for per-port packet schedulers."""

    #: Registry/display name; subclasses override.
    name = "base"

    def __init__(self) -> None:
        self._port: "Port | None" = None
        self._push_seq = 0

    # --- wiring -------------------------------------------------------------

    def attach(self, port: "Port") -> None:
        """Bind this scheduler to its port.

        Called once when the port is created.  Schedulers that need
        topology information (EDF) or link parameters (LSTF's ``T(p, α)``
        term) grab them here.
        """
        if self._port is not None and self._port is not port:
            raise SchedulerError(
                f"{self.name} scheduler is already attached to a port; "
                "schedulers are per-port objects and cannot be shared"
            )
        self._port = port

    @property
    def port(self) -> "Port":
        if self._port is None:
            raise SchedulerError(f"{self.name} scheduler is not attached to a port")
        return self._port

    def _next_seq(self) -> int:
        self._push_seq += 1
        return self._push_seq

    # --- queue operations (subclass responsibility) ---------------------------

    def push(self, packet: "Packet", now: float) -> None:
        raise NotImplementedError

    def pop(self, now: float) -> Optional["Packet"]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # --- optional behaviours ---------------------------------------------------

    def earliest_release(self, now: float) -> float | None:
        """Next time a ``pop`` could succeed, for non-work-conserving
        schedulers that just returned ``None`` despite a non-empty queue.

        Work-conserving schedulers (everything except the timetable oracle)
        never need this and return ``None``.
        """
        return None

    def drop_victim(self, arriving: "Packet", now: float) -> "Packet":
        """Choose the packet to drop when the port buffer is full.

        Returning ``arriving`` means "don't admit the new packet".
        Returning a queued packet means the scheduler has *already removed*
        that packet from its queue and the port should admit ``arriving``.
        """
        return arriving

    def preemption_key(self, packet: "Packet") -> float | None:
        """Static urgency key for preemptive service; ``None`` = unsupported."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} len={len(self)}>"
