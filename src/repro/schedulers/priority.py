"""Static priority scheduling.

"Simple priority scheduling is where the ingress assigns priority values to
the packets and the routers simply schedule packets based on these static
priority values" (§2.2).  Smaller ``packet.priority`` is served first; ties
break FIFO.

This is the near-UPS candidate the paper proves can replay schedules with
at most one congestion point per packet and fails at two (Appendix F — see
:mod:`repro.theory.priority_cycle` for the executable counter-example).
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["PriorityScheduler"]


class PriorityScheduler(Scheduler):
    """Serve the packet with the smallest static ``priority`` header."""

    name = "priority"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Packet]] = []

    def push(self, packet: Packet, now: float) -> None:
        heapq.heappush(self._heap, (packet.priority, self._next_seq(), packet))

    def pop(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def preemption_key(self, packet: Packet) -> float:
        """Priorities are static, so they double as preemption keys."""
        return packet.priority
