"""Static priority scheduling.

"Simple priority scheduling is where the ingress assigns priority values to
the packets and the routers simply schedule packets based on these static
priority values" (§2.2).  Smaller ``packet.priority`` is served first; ties
break FIFO.

This is the near-UPS candidate the paper proves can replay schedules with
at most one congestion point per packet and fails at two (Appendix F — see
:mod:`repro.theory.priority_cycle` for the executable counter-example).
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.schedulers.base import KeyedScheduler

__all__ = ["PriorityScheduler"]


class PriorityScheduler(KeyedScheduler):
    """Serve the packet with the smallest static ``priority`` header."""

    __slots__ = ()

    name = "priority"

    def _key(self, packet: Packet) -> float:
        return packet.priority

    def preemption_key(self, packet: Packet) -> float:
        """Priorities are static, so they double as preemption keys."""
        return packet.priority
