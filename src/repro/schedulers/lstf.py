"""Least Slack Time First — the paper's near-universal scheduler.

Semantics (§2.1 and Appendix D).  A packet arrives at a port at local time
``te`` carrying header slack ``s`` — the queueing time it can still absorb
without missing its target output time.  While it waits, its slack drains
at unit rate, and the paper ranks packets by the remaining slack of the
*last bit at the moment it would finish transmitting*:

    slack(p, α, t) = s − (t − te) + T(p, α)

Because ``t`` is common to every queued packet at the instant a decision is
made, the ordering is equivalent to ordering by the **static key**

    key(p) = s + te + T(p, α)

which lets us keep an ordinary binary heap instead of re-keying the queue
as time advances.  On dequeue at time ``td`` the router rewrites the header
with the slack the packet has left — "the previous slack time minus how
much time it waited in the queue" (§2.2):

    s' = s − (td − te)

This same static key doubles as the preemption key for the preemptive
variant used in the theory results (DESIGN.md §5): keys never change while
a packet sits at a port, so "least remaining slack" comparisons between the
in-service packet and new arrivals are just key comparisons.

Drop policy: §3 specifies that with finite buffers "packets with the
highest slack are dropped when the buffer is full", implemented in
:meth:`LstfScheduler.drop_victim`.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["LstfScheduler"]


class LstfScheduler(Scheduler):
    """Serve the packet with the least remaining slack."""

    name = "lstf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Packet]] = []
        self._size = 0
        # Pids lazily removed by drop_victim.  Local state on purpose: a
        # shared packet flag would be corrupted by other schedulers on the
        # packet's path (see SrptScheduler for the same reasoning).
        self._evicted: set[int] = set()

    # --- keys ---------------------------------------------------------------

    def _key(self, packet: Packet) -> float:
        # slack + arrival time at this port + transmission time here.
        return packet.slack + packet.enqueue_time + self.port.link.tx_time(packet.size)

    def preemption_key(self, packet: Packet) -> float:
        return self._key(packet)

    # --- queue operations ------------------------------------------------------

    def push(self, packet: Packet, now: float) -> None:
        heapq.heappush(self._heap, (self._key(packet), self._next_seq(), packet))
        self._size += 1

    def pop(self, now: float) -> Optional[Packet]:
        heap = self._heap
        while heap and heap[0][2].pid in self._evicted:
            self._evicted.discard(heap[0][2].pid)
            heapq.heappop(heap)  # lazily discard drop victims
        if not heap:
            return None
        packet = heapq.heappop(heap)[2]
        self._size -= 1
        # Dynamic packet state: charge the wait at this hop to the header.
        packet.slack -= now - packet.enqueue_time
        return packet

    def __len__(self) -> int:
        return self._size

    # --- finite buffers ----------------------------------------------------------

    def drop_victim(self, arriving: Packet, now: float) -> Packet:
        """Drop the packet with the *highest* remaining slack (§3).

        The arriving packet participates in the comparison: if it has the
        largest slack of all, it is the victim itself.  The scan is O(n)
        but only runs on buffer overflow, which is rare in the regimes the
        experiments operate in.
        """
        live = [e for e in self._heap if e[2].pid not in self._evicted]
        if not live:
            return arriving
        worst_key, _seq, worst = max(live, key=lambda e: (e[0], e[1]))
        arriving_key = self._key(arriving)
        if arriving_key >= worst_key:
            return arriving
        self._evicted.add(worst.pid)  # lazy removal; pop() skips it
        self._size -= 1
        return worst
