"""Least Slack Time First — the paper's near-universal scheduler.

Semantics (§2.1 and Appendix D).  A packet arrives at a port at local time
``te`` carrying header slack ``s`` — the queueing time it can still absorb
without missing its target output time.  While it waits, its slack drains
at unit rate, and the paper ranks packets by the remaining slack of the
*last bit at the moment it would finish transmitting*:

    slack(p, α, t) = s − (t − te) + T(p, α)

Because ``t`` is common to every queued packet at the instant a decision is
made, the ordering is equivalent to ordering by the **static key**

    key(p) = s + te + T(p, α)

which lets us keep an ordinary binary heap instead of re-keying the queue
as time advances.  On dequeue at time ``td`` the router rewrites the header
with the slack the packet has left — "the previous slack time minus how
much time it waited in the queue" (§2.2):

    s' = s − (td − te)

This same static key doubles as the preemption key for the preemptive
variant used in the theory results (DESIGN.md §5): keys never change while
a packet sits at a port, so "least remaining slack" comparisons between the
in-service packet and new arrivals are just key comparisons.

Hot-path notes: ``T(p, α)`` is ``size * tx_per_byte`` with the per-byte
cost cached at :meth:`attach`, so computing a key is three float adds and
a multiply — no attribute chains, no allocation.  The drop policy rides
on the indexed queue's worst-entry tracking instead of scanning the heap.

Drop policy: §3 specifies that with finite buffers "packets with the
highest slack are dropped when the buffer is full", implemented in
:meth:`LstfScheduler.drop_victim`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import KeyedScheduler

__all__ = ["LstfScheduler"]


class LstfScheduler(KeyedScheduler):
    """Serve the packet with the least remaining slack."""

    __slots__ = ("_tx_per_byte",)

    name = "lstf"

    def __init__(self) -> None:
        super().__init__()
        self._tx_per_byte = 0.0  # set at attach; keys need T(p, α)

    def attach(self, port) -> None:
        super().attach(port)
        self._tx_per_byte = port.link.tx_per_byte

    # --- keys ---------------------------------------------------------------

    def _key(self, packet: Packet) -> float:
        # slack + arrival time at this port + transmission time here.
        return packet.slack + packet.enqueue_time + packet.size * self._tx_per_byte

    def preemption_key(self, packet: Packet) -> float:
        return self._key(packet)

    # --- queue operations ------------------------------------------------------

    def pop(self, now: float) -> Optional[Packet]:
        packet = self._queue.pop()
        if packet is not None:
            # Dynamic packet state: charge the wait at this hop to the header.
            packet.slack -= now - packet.enqueue_time
        return packet

    # --- finite buffers ----------------------------------------------------------

    def drop_victim(self, arriving: Packet, now: float) -> Packet:
        """Drop the packet with the *highest* remaining slack (§3).

        The arriving packet participates in the comparison: if it has the
        largest slack of all, it is the victim itself.  O(log n) amortised
        via the queue's worst-entry tracking — no scan, even under
        sustained overflow.
        """
        worst = self._queue.worst_entry()
        if worst is None:
            return arriving
        worst_key, victim = worst
        if self._key(arriving) >= worst_key:
            return arriving
        self._queue.evict(victim.pid)  # lazy removal; pop() skips it
        return victim
