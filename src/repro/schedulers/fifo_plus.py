"""FIFO+ (Clark, Shenker, Zhang [11]).

FIFO+ reduces tail packet delay in multi-hop networks by prioritising
packets according to the queueing delay they have already accumulated
upstream: a packet that waited a long time earlier in its path is served
as if it had arrived correspondingly earlier.

§3.2 observes that FIFO+ is exactly LSTF with a *constant* initial slack:
with every packet starting from the same slack budget, the packet with the
least remaining slack is precisely the one that has waited the most.  We
implement it directly from the accumulated-wait field the ports maintain
(``packet.queue_wait``), ordering by

    key(p) = te − queue_wait(p)

(the "virtual arrival time" had the packet not been delayed upstream),
which reproduces the constant-slack LSTF order without needing a slack
policy at the ingress.  At the first hop this degrades to plain FIFO,
matching the original algorithm.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.schedulers.base import KeyedScheduler

__all__ = ["FifoPlusScheduler"]


class FifoPlusScheduler(KeyedScheduler):
    """Serve packets in order of upstream-wait-adjusted arrival time."""

    __slots__ = ()

    name = "fifo+"

    def _key(self, packet: Packet) -> float:
        return packet.enqueue_time - packet.queue_wait
