"""FIFO+ (Clark, Shenker, Zhang [11]).

FIFO+ reduces tail packet delay in multi-hop networks by prioritising
packets according to the queueing delay they have already accumulated
upstream: a packet that waited a long time earlier in its path is served
as if it had arrived correspondingly earlier.

§3.2 observes that FIFO+ is exactly LSTF with a *constant* initial slack:
with every packet starting from the same slack budget, the packet with the
least remaining slack is precisely the one that has waited the most.  We
implement it directly from the accumulated-wait field the ports maintain
(``packet.queue_wait``), ordering by

    key(p) = te − queue_wait(p)

(the "virtual arrival time" had the packet not been delayed upstream),
which reproduces the constant-slack LSTF order without needing a slack
policy at the ingress.  At the first hop this degrades to plain FIFO,
matching the original algorithm.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["FifoPlusScheduler"]


class FifoPlusScheduler(Scheduler):
    """Serve packets in order of upstream-wait-adjusted arrival time."""

    name = "fifo+"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, Packet]] = []

    def push(self, packet: Packet, now: float) -> None:
        key = packet.enqueue_time - packet.queue_wait
        heapq.heappush(self._heap, (key, self._next_seq(), packet))

    def pop(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)
