"""Shortest Job First.

Packets are served in increasing order of the *total size of the flow they
belong to* (``packet.flow_size``, stamped by the transport layer), with
FIFO tie-breaking so a flow's own packets stay in order.

This is both one of the hard-to-replay originals of §2.3 (it produces a
large slack skew) and, per pFabric [3], a near-optimal benchmark for mean
flow completion time in Figure 2.
"""

from __future__ import annotations

from repro.core.packet import Packet
from repro.schedulers.base import KeyedScheduler

__all__ = ["SjfScheduler"]


class SjfScheduler(KeyedScheduler):
    """Serve the packet belonging to the smallest flow."""

    __slots__ = ()

    name = "sjf"

    def _key(self, packet: Packet) -> int:
        return packet.flow_size

    def preemption_key(self, packet: Packet) -> float:
        return float(packet.flow_size)
