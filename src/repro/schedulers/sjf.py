"""Shortest Job First.

Packets are served in increasing order of the *total size of the flow they
belong to* (``packet.flow_size``, stamped by the transport layer), with
FIFO tie-breaking so a flow's own packets stay in order.

This is both one of the hard-to-replay originals of §2.3 (it produces a
large slack skew) and, per pFabric [3], a near-optimal benchmark for mean
flow completion time in Figure 2.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["SjfScheduler"]


class SjfScheduler(Scheduler):
    """Serve the packet belonging to the smallest flow."""

    name = "sjf"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[int, int, Packet]] = []

    def push(self, packet: Packet, now: float) -> None:
        heapq.heappush(self._heap, (packet.flow_size, self._next_seq(), packet))

    def pop(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def preemption_key(self, packet: Packet) -> float:
        return float(packet.flow_size)
