"""Last-in, first-out scheduling.

One of the paper's deliberately adversarial "original" schedules: LIFO
produces a large skew in the slack distribution (recently arrived packets
exit immediately, old packets wait arbitrarily long), which §2.3(5) shows
is among the hardest schedules for non-preemptive LSTF to replay.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["LifoScheduler"]


class LifoScheduler(Scheduler):
    """Serve the most recently arrived packet first."""

    __slots__ = ("_stack",)

    name = "lifo"

    def __init__(self) -> None:
        super().__init__()
        self._stack: list[Packet] = []

    def push(self, packet: Packet, now: float) -> None:
        self._stack.append(packet)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
