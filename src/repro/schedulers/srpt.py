"""Shortest Remaining Processing Time with starvation prevention.

Figure 2's second FCT benchmark.  Each packet carries the bytes that
remained unacknowledged in its flow when it was sent
(``packet.remaining_flow``).  Starvation prevention follows footnote 8 of
the paper: "the router always schedules the earliest arriving packet of
the flow which contains the highest priority packet".

Implementation: the shared indexed queue keyed by ``remaining_flow``
identifies the highest-priority *flow*; the packet actually served is the
head of that flow's FIFO and is lazily evicted from the queue (its entry
is discarded whenever it later surfaces).  Liveness must be tracked per
port — a shared packet flag would be reset when the packet is pushed at
its next hop, resurrecting stale entries here — which is exactly what the
queue's pid→seq map provides.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import IndexedHeapQueue, Scheduler

__all__ = ["SrptScheduler"]


class SrptScheduler(Scheduler):
    """SRPT over flows, FIFO within a flow (starvation-free)."""

    __slots__ = ("_queue", "_flow_fifo")

    name = "srpt"

    def __init__(self) -> None:
        super().__init__()
        self._queue = IndexedHeapQueue()
        self._flow_fifo: dict[int, deque[Packet]] = {}

    def push(self, packet: Packet, now: float) -> None:
        self._queue.push(packet.remaining_flow, packet)
        fifo = self._flow_fifo.get(packet.flow_id)
        if fifo is None:
            self._flow_fifo[packet.flow_id] = deque((packet,))
        else:
            fifo.append(packet)

    def pop(self, now: float) -> Optional[Packet]:
        head = self._queue.peek()
        if head is None:
            return None
        best_flow = head.flow_id
        fifo = self._flow_fifo[best_flow]
        packet = fifo.popleft()
        if not fifo:
            del self._flow_fifo[best_flow]
        # The served packet may not be the heap head (FIFO-within-flow);
        # evict it so its queue entry is skipped when it surfaces.
        self._queue.evict(packet.pid)
        return packet

    def __len__(self) -> int:
        return len(self._queue)
