"""Shortest Remaining Processing Time with starvation prevention.

Figure 2's second FCT benchmark.  Each packet carries the bytes that
remained unacknowledged in its flow when it was sent
(``packet.remaining_flow``).  Starvation prevention follows footnote 8 of
the paper: "the router always schedules the earliest arriving packet of
the flow which contains the highest priority packet".

Implementation: a lazy min-heap keyed by ``remaining_flow`` identifies the
highest-priority *flow*; the packet actually served is the head of that
flow's FIFO.  Heap entries whose packet has already been served (because it
was the earliest of its flow at some earlier pop) are discarded lazily.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["SrptScheduler"]


class SrptScheduler(Scheduler):
    """SRPT over flows, FIFO within a flow (starvation-free)."""

    name = "srpt"

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[int, int, Packet]] = []
        self._flow_fifo: dict[int, deque[Packet]] = {}
        # Pids currently queued *here*.  Lazy heap deletion must use local
        # state: a shared packet flag would be reset when the packet is
        # pushed at its next hop, resurrecting stale entries in this heap.
        self._queued: set[int] = set()

    def push(self, packet: Packet, now: float) -> None:
        heapq.heappush(self._heap, (packet.remaining_flow, self._next_seq(), packet))
        self._flow_fifo.setdefault(packet.flow_id, deque()).append(packet)
        self._queued.add(packet.pid)

    def pop(self, now: float) -> Optional[Packet]:
        if not self._queued:
            return None
        heap = self._heap
        # Discard heap entries for packets already served as "earliest of
        # their flow" during previous pops.
        while heap and heap[0][2].pid not in self._queued:
            heapq.heappop(heap)
        assert heap, "membership set says non-empty but heap drained"
        best_flow = heap[0][2].flow_id
        fifo = self._flow_fifo[best_flow]
        packet = fifo.popleft()
        if not fifo:
            del self._flow_fifo[best_flow]
        self._queued.discard(packet.pid)
        return packet

    def __len__(self) -> int:
        return len(self._queued)
