"""Timetable (oracle) scheduling for the theory gadgets.

The paper's definition of the *original* scheduling algorithms is maximally
permissive: they "need not be work-conserving or deterministic and may even
involve oracles that know about future packet arrivals" (§2.1).  The
counter-examples of Appendices C, F and G exploit that freedom — they are
specified as explicit tables of (arrival time, scheduling time) per node.

:class:`TimetableScheduler` realises such a table: each packet has a fixed
release time at this node and is transmitted exactly then, never earlier.
It is deliberately *non*-work-conserving; the port cooperates through the
:meth:`earliest_release` hook.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.core.packet import Packet
from repro.errors import SchedulerError
from repro.schedulers.base import Scheduler
from repro.units import TIME_EPSILON

__all__ = ["TimetableScheduler"]


class TimetableScheduler(Scheduler):
    """Transmit each packet at a preordained time.

    Parameters
    ----------
    timetable:
        Maps packet pid to the time its transmission must start at this
        node.  Every packet pushed here must appear in the table.
    """

    name = "timetable"

    def __init__(self, timetable: dict[int, float]) -> None:
        super().__init__()
        self._timetable = dict(timetable)
        self._heap: list[tuple[float, int, Packet]] = []

    def push(self, packet: Packet, now: float) -> None:
        try:
            release = self._timetable[packet.pid]
        except KeyError:
            raise SchedulerError(
                f"packet {packet.pid} has no entry in this node's timetable"
            ) from None
        if release < now - TIME_EPSILON:
            raise SchedulerError(
                f"packet {packet.pid} arrived at {now:.9f}, after its "
                f"timetabled transmission time {release:.9f}; the gadget's "
                "original schedule is infeasible"
            )
        heapq.heappush(self._heap, (release, self._next_seq(), packet))

    def pop(self, now: float) -> Optional[Packet]:
        if not self._heap:
            return None
        release = self._heap[0][0]
        if release > now + TIME_EPSILON:
            return None  # nothing due yet; port will retry at earliest_release
        return heapq.heappop(self._heap)[2]

    def earliest_release(self, now: float) -> float | None:
        if not self._heap:
            return None
        return max(self._heap[0][0], now)

    def __len__(self) -> int:
        return len(self._heap)
