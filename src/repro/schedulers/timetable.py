"""Timetable (oracle) scheduling for the theory gadgets.

The paper's definition of the *original* scheduling algorithms is maximally
permissive: they "need not be work-conserving or deterministic and may even
involve oracles that know about future packet arrivals" (§2.1).  The
counter-examples of Appendices C, F and G exploit that freedom — they are
specified as explicit tables of (arrival time, scheduling time) per node.

:class:`TimetableScheduler` realises such a table: each packet has a fixed
release time at this node and is transmitted exactly then, never earlier.
It is deliberately *non*-work-conserving; the port cooperates through the
:meth:`earliest_release` hook.
"""

from __future__ import annotations

from typing import Optional

from repro.core.packet import Packet
from repro.errors import SchedulerError
from repro.schedulers.base import KeyedScheduler
from repro.units import TIME_EPSILON

__all__ = ["TimetableScheduler"]


class TimetableScheduler(KeyedScheduler):
    """Transmit each packet at a preordained time.

    Parameters
    ----------
    timetable:
        Maps packet pid to the time its transmission must start at this
        node.  Every packet pushed here must appear in the table.
    """

    __slots__ = ("_timetable",)

    name = "timetable"

    def __init__(self, timetable: dict[int, float]) -> None:
        super().__init__()
        self._timetable = dict(timetable)

    def _key(self, packet: Packet) -> float:
        try:
            return self._timetable[packet.pid]
        except KeyError:
            raise SchedulerError(
                f"packet {packet.pid} has no entry in this node's timetable"
            ) from None

    def push(self, packet: Packet, now: float) -> None:
        release = self._key(packet)
        if release < now - TIME_EPSILON:
            raise SchedulerError(
                f"packet {packet.pid} arrived at {now:.9f}, after its "
                f"timetabled transmission time {release:.9f}; the gadget's "
                "original schedule is infeasible"
            )
        self._queue.push(release, packet)

    def pop(self, now: float) -> Optional[Packet]:
        entry = self._queue.peek_entry()
        if entry is None:
            return None
        if entry[0] > now + TIME_EPSILON:
            return None  # nothing due yet; port will retry at earliest_release
        return self._queue.pop()

    def earliest_release(self, now: float) -> float | None:
        entry = self._queue.peek_entry()
        if entry is None:
            return None
        return max(entry[0], now)
