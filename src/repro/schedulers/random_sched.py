"""Uniformly random scheduling.

The paper's default "original" schedule (§2.3): each time the port is free
the scheduler picks a uniformly random packet from the queue, producing
"completely arbitrary" schedules that any would-be UPS must chase.

The generator is injected so a recorded run is exactly repeatable.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.packet import Packet
from repro.schedulers.base import Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Serve a uniformly random queued packet.

    Parameters
    ----------
    rng:
        A ``random.Random`` instance; pass a seeded one for repeatability.
        Each port may share a generator — determinism comes from the
        deterministic event order of the engine.
    """

    __slots__ = ("_rng", "_queue")

    name = "random"

    def __init__(self, rng: random.Random | None = None) -> None:
        super().__init__()
        self._rng = rng if rng is not None else random.Random(0)
        self._queue: list[Packet] = []

    def push(self, packet: Packet, now: float) -> None:
        self._queue.append(packet)

    def pop(self, now: float) -> Optional[Packet]:
        queue = self._queue
        if not queue:
            return None
        idx = self._rng.randrange(len(queue))
        # Swap-pop: O(1) removal; random service order makes the
        # resulting reordering irrelevant.
        queue[idx], queue[-1] = queue[-1], queue[idx]
        return queue.pop()

    def __len__(self) -> int:
        return len(self._queue)
