"""Packet schedulers.

One class per algorithm the paper records, replays, or compares against:

===============  =========================================================
Class            Paper role
===============  =========================================================
FifoScheduler    baseline original schedule; FCT/tail comparison baseline
LifoScheduler    hard-to-replay original (large slack skew)
RandomScheduler  default "completely arbitrary" original schedule (§2.3)
SjfScheduler     shortest-job-first original / FCT benchmark (Figure 2)
SrptScheduler    SRPT with starvation prevention, FCT benchmark (Figure 2)
FqScheduler      fair queueing [12] original / fairness baseline (Figure 4)
DrrScheduler     deficit round robin — ablation baseline for FQ
FifoPlusScheduler FIFO+ [11] — the tail-latency scheme LSTF emulates (§3.2)
PriorityScheduler simple (static) priorities — the near-UPS candidate that
                 fails beyond one congestion point (§2.2, Appendix F)
LstfScheduler    Least Slack Time First — the near-universal scheduler
EdfScheduler     network-wide EDF, provably equivalent to LSTF (Appendix E)
OmniscientScheduler per-hop timetable priorities — the perfect UPS under
                 omniscient header initialisation (Appendix B)
TimetableScheduler oracle scheduler that exactly reproduces a hand-written
                 schedule; builds the theory gadgets of Appendices C, F, G
===============  =========================================================

Use :func:`make_scheduler` to construct schedulers by name (handy for
experiment configs), or instantiate the classes directly.
"""

from __future__ import annotations

from typing import Callable

from repro.schedulers.base import IndexedHeapQueue, KeyedScheduler, Scheduler
from repro.schedulers.fifo import FifoScheduler
from repro.schedulers.lifo import LifoScheduler
from repro.schedulers.random_sched import RandomScheduler
from repro.schedulers.priority import PriorityScheduler
from repro.schedulers.sjf import SjfScheduler
from repro.schedulers.srpt import SrptScheduler
from repro.schedulers.fq import FqScheduler
from repro.schedulers.drr import DrrScheduler
from repro.schedulers.fifo_plus import FifoPlusScheduler
from repro.schedulers.lstf import LstfScheduler
from repro.schedulers.pheap import PHeap, PHeapLstfScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.omniscient import OmniscientScheduler
from repro.schedulers.timetable import TimetableScheduler

__all__ = [
    "DrrScheduler",
    "EdfScheduler",
    "FifoPlusScheduler",
    "FifoScheduler",
    "FqScheduler",
    "IndexedHeapQueue",
    "KeyedScheduler",
    "LifoScheduler",
    "LstfScheduler",
    "OmniscientScheduler",
    "PHeap",
    "PHeapLstfScheduler",
    "PriorityScheduler",
    "RandomScheduler",
    "Scheduler",
    "SjfScheduler",
    "SrptScheduler",
    "TimetableScheduler",
    "make_scheduler",
    "scheduler_names",
]

_REGISTRY: dict[str, Callable[..., Scheduler]] = {
    "fifo": FifoScheduler,
    "lifo": LifoScheduler,
    "random": RandomScheduler,
    "priority": PriorityScheduler,
    "sjf": SjfScheduler,
    "srpt": SrptScheduler,
    "fq": FqScheduler,
    "drr": DrrScheduler,
    "fifo+": FifoPlusScheduler,
    "lstf": LstfScheduler,
    "lstf-pheap": PHeapLstfScheduler,
    "edf": EdfScheduler,
    "omniscient": OmniscientScheduler,
}


def scheduler_names() -> list[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(_REGISTRY)


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Construct a scheduler by registry name.

    >>> make_scheduler("fifo").name
    'fifo'
    """
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {scheduler_names()}"
        ) from None
    return factory(**kwargs)
