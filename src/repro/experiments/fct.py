"""Figure 2: mean flow completion time.

TCP flows on the Internet2 topology at 70% utilisation, finite router
buffers (the paper uses 5 MB ≈ the average delay-bandwidth product; we
scale it with bandwidth), comparing FIFO, SJF, SRPT-with-starvation-
prevention, and LSTF with the flow-size slack heuristic.  The paper's
expected shape: SJF ≈ SRPT ≪ FIFO, and LSTF ≈ SJF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.heuristics import FlowSizeSlack, SlackPolicy, parse_slack_policy
from repro.errors import ConfigurationError
from repro.metrics.fct import FctBucket, bucket_mean_fct
from repro.schedulers import (
    FifoScheduler,
    LstfScheduler,
    Scheduler,
    SjfScheduler,
    SrptScheduler,
)
from repro.sim.network import Network
from repro.sim.node import Router
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.transport.tcp import TcpStats, install_tcp_flows
from repro.units import MB
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows

__all__ = ["FctExperimentResult", "run_fct_experiment", "FCT_SCHEMES"]

FCT_SCHEMES = ("fifo", "sjf", "srpt", "lstf")


@dataclass(slots=True)
class FctExperimentResult:
    """Per-scheme FCT statistics for one workload."""

    scheme: str
    stats: TcpStats
    buckets: list[FctBucket] = field(default_factory=list)

    @property
    def mean_fct(self) -> float:
        return self.stats.mean_fct()


def _scheme_scheduler(scheme: str) -> tuple[type[Scheduler], SlackPolicy | None]:
    if scheme == "fifo":
        return FifoScheduler, None
    if scheme == "sjf":
        return SjfScheduler, None
    if scheme == "srpt":
        return SrptScheduler, None
    if scheme == "lstf":
        # D = 1 second per flow byte dwarfs any queueing delay, exactly the
        # paper's "D much larger than the delay seen by any packet".
        return LstfScheduler, FlowSizeSlack(d=1.0)
    raise ConfigurationError(f"unknown FCT scheme {scheme!r}; choose from {FCT_SCHEMES}")


def run_fct_experiment(
    schemes: tuple[str, ...] = FCT_SCHEMES,
    utilization: float = 0.7,
    duration: float = 0.3,
    seed: int = 1,
    bandwidth_scale: float = 0.01,
    edges_per_core: int = 2,
    buffer_bytes: float | None = None,
    min_rto: float = 0.05,
    max_flow_bytes: int = 2_500_000,
    lstf_slack: SlackPolicy | None = None,
) -> dict[str, FctExperimentResult]:
    """Run the same TCP workload under each scheme; returns results by name.

    The workload (flow arrival times, sizes, endpoints) is identical across
    schemes — only the router scheduling discipline (and, for LSTF, the
    ingress slack heuristic) changes, mirroring the paper's comparison.
    ``lstf_slack`` overrides the default flow-size heuristic for the
    ``"lstf"`` scheme (e.g. to ablate against a constant slack).
    """
    cfg = Internet2Config(
        edges_per_core=edges_per_core, bandwidth_scale=bandwidth_scale
    )
    if buffer_bytes is None:
        # The paper's 5 MB buffer at full scale, scaled with bandwidth so
        # it stays at about one delay-bandwidth product.
        buffer_bytes = 5 * MB * bandwidth_scale

    sizes = BoundedPareto(alpha=1.2, low=1_500, high=max_flow_bytes)
    reference_bw = min(cfg.access_bw, cfg.host_bw) * bandwidth_scale

    results: dict[str, FctExperimentResult] = {}
    for scheme in schemes:
        scheduler_cls, slack_policy = _scheme_scheduler(scheme)
        if scheme == "lstf" and lstf_slack is not None:
            slack_policy = lstf_slack
        network = build_internet2(cfg)
        network.install_schedulers(
            lambda node, _peer, cls=scheduler_cls: None if node.startswith("h") else cls()
        )
        network.set_buffers(buffer_bytes, node_filter=lambda n: isinstance(n, Router))
        flows = poisson_flows(
            hosts=[h.name for h in network.hosts],
            sizes=sizes,
            workload=PoissonWorkload(
                utilization=utilization,
                reference_bandwidth=reference_bw,
                duration=duration,
                seed=seed,
            ),
        )
        stats = install_tcp_flows(
            network, flows, slack_policy=slack_policy, min_rto=min_rto
        )
        # Closed-loop flows with retransmission timers can in principle
        # tail on; run long enough for every flow to finish several times
        # over, then stop.
        network.run(until=duration * 50)
        result = FctExperimentResult(scheme=scheme, stats=stats)
        result.buckets = bucket_mean_fct(stats)
        results[scheme] = result
    return results


@register_experiment(
    "fig2",
    help="Figure 2: mean flow completion time (FIFO / SJF / SRPT / LSTF)",
    params=("duration", "seeds", "bandwidth_scale", "schedulers",
            "utilization", "slack_policy"),
    options=("rows",),
)
def _run_fig2(spec: ExperimentSpec) -> tuple[Table, dict]:
    schemes = spec.schedulers or FCT_SCHEMES
    rows = spec.option("rows")
    if rows is not None:
        # Like table1's --rows: 0-based indices into the scheme sweep, so
        # `repro profile fig2 --rows 1` runs a single-scheme slice.
        if not isinstance(rows, tuple):
            rows = (rows,)
        bad = [i for i in rows if not 0 <= i < len(schemes)]
        if bad:
            raise ConfigurationError(
                f"fig2 rows out of range {bad}; schemes are "
                f"{list(enumerate(schemes))}"
            )
        schemes = tuple(schemes[i] for i in rows)
    results = run_fct_experiment(
        schemes=tuple(schemes),
        utilization=spec.utilization,
        duration=spec.duration,
        seed=spec.seed,
        bandwidth_scale=spec.bandwidth_scale,
        lstf_slack=(
            parse_slack_policy(spec.slack_policy) if spec.slack_policy else None
        ),
    )
    table = Table(["scheme", "flows", "mean FCT (s)"],
                  title="Figure 2 — mean flow completion time")
    for name, res in results.items():
        table.add_row([name, res.stats.completed, res.mean_fct])
    return table, {"schemes": list(schemes), "slack_policy": spec.slack_policy}
