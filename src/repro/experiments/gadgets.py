"""The appendix counter-example gadgets as a registered experiment.

Re-derives the paper's three impossibility/possibility constructions on
the live simulator and reports whether each claim holds:

* Figure 6 / Appendix F — the priority cycle: every static priority
  ordering fails, LSTF replays perfectly.
* Figure 7 / Appendix G.3 — three congestion points: LSTF fails, the
  omniscient UPS succeeds.
* Figure 5 / Appendix C — black-box impossibility: identical header
  inputs demand opposite decisions, so LSTF fails at least one case
  while the omniscient replay passes both.

The gadgets take no workload parameters, so the spec's duration/seed
knobs are ignored — the constructions are exact.
"""

from __future__ import annotations

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec

__all__ = ["run_gadget_experiment"]


def run_gadget_experiment() -> Table:
    """Evaluate every appendix construction; one table row per claim."""
    from repro.theory.blackbox import blackbox_gadget
    from repro.theory.lstf_failure import lstf_three_congestion_gadget
    from repro.theory.priority_cycle import (
        all_priority_orderings_fail,
        priority_cycle_gadget,
    )

    table = Table(["construction", "claim", "holds"],
                  title="Appendix counter-examples")
    pc = priority_cycle_gadget()
    table.add_row(["Figure 6", "all static priority orderings fail",
                   all_priority_orderings_fail(pc)])
    table.add_row(["Figure 6", "LSTF replays perfectly", pc.replay("lstf").perfect])
    f7 = lstf_three_congestion_gadget()
    table.add_row(["Figure 7", "LSTF fails at 3 congestion points",
                   not f7.replay("lstf").perfect])
    table.add_row(["Figure 7", "omniscient replay perfect",
                   f7.replay("omniscient").perfect])
    lstf_both = all(blackbox_gadget(c).replay("lstf").perfect for c in (1, 2))
    omni_both = all(blackbox_gadget(c).replay("omniscient").perfect for c in (1, 2))
    table.add_row(["Figure 5", "LSTF fails at least one case", not lstf_both])
    table.add_row(["Figure 5", "omniscient passes both cases", omni_both])
    return table


@register_experiment(
    "gadgets",
    help="Appendix counter-examples: Figures 5/6/7 as executable theorems",
)
def _run_gadgets(_spec: ExperimentSpec) -> tuple[Table, dict]:
    table = run_gadget_experiment()
    return table, {"claims": len(table.rows)}
