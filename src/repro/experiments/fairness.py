"""Figure 4: asymptotic fairness.

Long-lived TCP flows share a bottleneck; Jain's fairness index is computed
from per-interval per-flow throughput.  Compared disciplines: FIFO, fair
queueing (the gold standard), DRR (ablation), and LSTF with the
virtual-clock slack heuristic at several fair-share-rate estimates
``r_est ≤ r*``.  The paper's claim: LSTF converges to an index of 1.0 for
*every* ``r_est ≤ r*``, merely a little later when the estimate is far
off.

The paper runs 90 flows on Internet2 with a ~1 Gbps fair share; the scaled
default shares a dumbbell bottleneck among ``num_flows`` flows, preserving
the one-shared-bottleneck structure that determines convergence while
keeping the event count tractable.  (The congestion in the paper's setup
is also engineered to happen only in the core.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.heuristics import VirtualClockSlack
from repro.metrics.fairness import fairness_timeseries, jain_index, throughput_timeseries
from repro.schedulers import DrrScheduler, FifoScheduler, FqScheduler, LstfScheduler
from repro.topology.simple import build_dumbbell
from repro.transport.tcp import install_tcp_flows
from repro.units import MBPS
from repro.workload.flows import long_lived_flows

__all__ = [
    "FairnessExperimentResult",
    "run_fairness_experiment",
    "run_weighted_fairness_experiment",
]


@dataclass(slots=True)
class FairnessExperimentResult:
    """Jain-index time series for one discipline."""

    scheme: str
    times: np.ndarray
    fairness: np.ndarray

    @property
    def final_fairness(self) -> float:
        """Mean index over the last quarter of the horizon."""
        tail = max(1, len(self.fairness) // 4)
        return float(self.fairness[-tail:].mean())

    def time_to_reach(self, level: float = 0.95) -> float | None:
        """First time the index reaches ``level`` and stays there."""
        above = self.fairness >= level
        for i in range(len(above)):
            if above[i:].all():
                return float(self.times[i])
        return None


def run_weighted_fairness_experiment(
    weights: tuple[float, ...] = (1.0, 2.0, 4.0),
    scheme: str = "lstf",
    rate_fraction: float = 0.1,
    bottleneck_bw: float = 10 * MBPS,
    host_bw: float = 100 * MBPS,
    horizon: float = 3.0,
    interval: float = 0.05,
    seed: int = 1,
    min_rto: float = 0.05,
) -> tuple[np.ndarray, np.ndarray, FairnessExperimentResult]:
    """§3.3's weighted-fairness extension.

    "We can also extend the slack assignment heuristic to achieve weighted
    fairness by using different values of r_est for different flows, in
    proportion to the desired weights."  Each flow ``i`` gets
    ``r_est_i = weight_i * rate_fraction * r*`` (via ``Flow.weight``
    feeding :class:`~repro.core.heuristics.VirtualClockSlack`), or, for
    ``scheme="fq"``, the corresponding weighted-FQ configuration.

    Returns ``(achieved_rates, weights_normalised, result)`` where
    ``achieved_rates`` are mean per-flow throughputs over the second half
    of the horizon and ``result`` carries the Jain index of the
    *weight-normalised* rates (1.0 = perfect weighted fairness).
    """
    num_flows = len(weights)
    if num_flows < 2:
        raise ValueError("need at least two flows for a weighted comparison")
    fair_share = bottleneck_bw / sum(weights)

    network = build_dumbbell(
        num_pairs=num_flows, host_bw=host_bw, bottleneck_bw=bottleneck_bw
    )
    flows = long_lived_flows(
        pairs=[(f"s_{i}", f"d_{i}") for i in range(num_flows)],
        size=10**9,
        jitter=0.05,
        seed=seed,
        weights=list(weights),
    )
    if scheme == "lstf":
        policy = VirtualClockSlack(fair_share * rate_fraction)
        network.install_schedulers(
            lambda node, _p: LstfScheduler() if node in ("L", "R") else None
        )
    elif scheme == "fq":
        policy = None

        def factory(node: str, _peer: str):
            if node not in ("L", "R"):
                return None
            fq = FqScheduler()
            for flow in flows:
                fq.set_weight(flow.fid, flow.weight)
            return fq

        network.install_schedulers(factory)
    else:
        raise ValueError(f"unknown weighted-fairness scheme {scheme!r}")

    install_tcp_flows(network, flows, slack_policy=policy, min_rto=min_rto)
    network.run(until=horizon)

    # long_lived_flows sorts by start time; align the rate columns and the
    # weight vector by flow id so index i is flow i's entitlement.
    by_fid = sorted(flows, key=lambda f: f.fid)
    times, rates = throughput_timeseries(
        network.tracer, [f.fid for f in by_fid], interval, horizon
    )
    steady = rates[len(rates) // 2:]
    achieved = steady.mean(axis=0)
    weight_vec = np.asarray([f.weight for f in by_fid], dtype=float)
    normalised = achieved / weight_vec
    fairness = np.array(
        [jain_index(r / weight_vec) if r.any() else 0.0 for r in rates]
    )
    result = FairnessExperimentResult(f"weighted-{scheme}", times, fairness)
    return achieved, normalised, result


def run_fairness_experiment(
    rest_fractions: tuple[float, ...] = (1.0, 0.5, 0.1, 0.05, 0.01),
    baselines: tuple[str, ...] = ("fifo", "fq"),
    num_flows: int = 10,
    bottleneck_bw: float = 10 * MBPS,
    host_bw: float = 100 * MBPS,
    horizon: float = 3.0,
    interval: float = 0.05,
    jitter: float = 0.05,
    seed: int = 1,
    min_rto: float = 0.05,
) -> dict[str, FairnessExperimentResult]:
    """Run each discipline on the same long-lived-flow workload.

    LSTF entries are keyed ``"lstf@<fraction>"`` where the fraction is
    ``r_est / r*`` (``r* = bottleneck_bw / num_flows``).
    """
    fair_share = bottleneck_bw / num_flows
    schemes: list[tuple[str, object, object]] = []
    for b in baselines:
        factory = {"fifo": FifoScheduler, "fq": FqScheduler, "drr": DrrScheduler}[b]
        schemes.append((b, factory, None))
    for frac in rest_fractions:
        schemes.append(
            (f"lstf@{frac:g}", LstfScheduler, VirtualClockSlack(fair_share * frac))
        )

    results: dict[str, FairnessExperimentResult] = {}
    for name, factory, slack_policy in schemes:
        network = build_dumbbell(
            num_pairs=num_flows, host_bw=host_bw, bottleneck_bw=bottleneck_bw
        )
        network.install_schedulers(
            lambda node, _peer, cls=factory: cls() if node in ("L", "R") else None
        )
        flows = long_lived_flows(
            pairs=[(f"s_{i}", f"d_{i}") for i in range(num_flows)],
            size=10**9,  # effectively infinite: outlasts any horizon
            jitter=jitter,
            seed=seed,
        )
        install_tcp_flows(network, flows, slack_policy=slack_policy, min_rto=min_rto)
        network.run(until=horizon)
        times, fairness = fairness_timeseries(
            network.tracer, [f.fid for f in flows], interval, horizon
        )
        results[name] = FairnessExperimentResult(name, times, fairness)
    return results


@register_experiment(
    "fig4",
    help="Figure 4: convergence to fairness (Jain index over time)",
    options=("rest_fractions", "horizon", "num_flows"),
    params=("seeds", "schedulers"),
)
def _run_fig4(spec: ExperimentSpec) -> tuple[Table, dict]:
    kwargs: dict = {"seed": spec.seed}
    if spec.schedulers:
        kwargs["baselines"] = tuple(spec.schedulers)
    rest = spec.option("rest_fractions")
    if rest is not None:
        kwargs["rest_fractions"] = tuple(float(f) for f in rest)
    for key in ("horizon", "num_flows"):
        value = spec.option(key)
        if value is not None:
            kwargs[key] = value
    results = run_fairness_experiment(**kwargs)
    table = Table(["scheme", "final Jain", "t(0.95) s"],
                  title="Figure 4 — convergence to fairness")
    for name, res in results.items():
        table.add_row([name, res.final_fairness, res.time_to_reach(0.95) or "never"])
    return table, {"schemes": list(results)}


@register_experiment(
    "weighted",
    help="§3.3 extension: weighted fairness via per-flow rate estimates",
    options=("weights", "horizon"),
    params=("seeds", "schedulers"),
)
def _run_weighted(spec: ExperimentSpec) -> tuple[Table, dict]:
    schemes = spec.schedulers or ("lstf", "fq")
    weights = spec.option("weights", (1.0, 2.0, 4.0))
    weight_label = "/".join(f"{w:g}" for w in weights)
    table = Table(
        ["scheme", f"rates (Mbps, weights {weight_label})", "weighted Jain"],
        title="§3.3 extension — weighted fairness",
    )
    horizon = spec.option("horizon")
    extra = {} if horizon is None else {"horizon": float(horizon)}
    for scheme in schemes:
        achieved, _norm, res = run_weighted_fairness_experiment(
            weights=tuple(float(w) for w in weights), scheme=scheme,
            seed=spec.seed, **extra,
        )
        rates = "/".join(f"{a / 1e6:.2f}" for a in achieved)
        table.add_row([scheme, rates, res.final_fairness])
    return table, {"schemes": list(schemes), "weights": list(weights)}
