"""Replayability experiments: Table 1, Figure 1, and the §2.3 ablations.

A :class:`ReplayScenario` names one Table 1 row: a topology variant, an
"original" scheduling algorithm, and a load level.  :func:`run_replay`
records the original schedule under that configuration and replays it with
a candidate UPS, returning the two Table 1 columns (fraction overdue, and
overdue by more than one bottleneck transmission time ``T``) plus the
queueing-delay ratios behind Figure 1.

Record once, replay many: recording the original schedule is the
expensive half of every replay experiment, and it depends only on the
scenario's *recording inputs* (topology, original scheduler, load, seed,
duration, scale) — never on the replay mode or slack policy under test.
:func:`get_recorded_schedule` therefore answers recordings through the
active :class:`~repro.core.trace_io.ScheduleStore` when the runner has
one open (``run_many`` over a ``replay_modes`` sweep, ``--out`` caches,
queue workers), keyed by :func:`scenario_schedule_key`; each unique
schedule simulates once and every replay-mode leg reloads it.
Recordings are pid-stream independent (:func:`build_recorded_schedule`
resets the packet-id counter) and excluded from the run's deterministic
``engine_events`` accounting, so a leg's artifact is byte-identical
whether its schedule was recorded in-process or fetched from the store.

Scale: the defaults run every scenario at 1/100th of the paper's
bandwidths on a 20-host Internet2 (2 edge routers per core router instead
of 10).  Utilisation — the quantity the paper sweeps — is set against each
scenario's bottleneck, so scheduling behaviour is preserved; see
DESIGN.md.  Passing ``bandwidth_scale=1.0, edges_per_core=10,
duration=...`` reproduces the full-scale setup if you have the hours.
"""

from __future__ import annotations

import functools
import hashlib
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Callable, Iterable

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.packet import reset_packet_ids
from repro.core.replay import (
    RecordedSchedule,
    ReplayResult,
    record_schedule,
    replay_schedule,
)
from repro.core.trace_io import active_schedule_store
from repro.errors import ConfigurationError
from repro.sim.engine import ENGINE_PERF
from repro.schedulers import (
    FifoPlusScheduler,
    FifoScheduler,
    FqScheduler,
    LifoScheduler,
    RandomScheduler,
    SjfScheduler,
)
from repro.sim.network import Network
from repro.topology.fattree import FatTreeConfig, build_fattree
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.topology.rocketfuel import RocketFuelConfig, build_rocketfuel
from repro.transport.udp import install_udp_flows
from repro.units import GBPS
from repro.workload.distributions import BoundedPareto, SizeDistribution
from repro.workload.flows import PoissonWorkload, poisson_flows

__all__ = [
    "ReplayOutcome",
    "ReplayScenario",
    "build_recorded_schedule",
    "get_recorded_schedule",
    "run_replay",
    "scenario_from_spec",
    "scenario_schedule_key",
    "table1_scenarios",
    "validate_row_indices",
]

TOPOLOGIES = ("i2-1g-10g", "i2-1g-1g", "i2-10g-10g", "rocketfuel", "fattree")
ORIGINALS = ("random", "fifo", "fq", "sjf", "lifo", "fq+fifo+")


@dataclass(frozen=True, slots=True)
class ReplayScenario:
    """One Table 1 row."""

    name: str
    topology: str = "i2-1g-10g"
    scheduler: str = "random"
    utilization: float = 0.7
    duration: float = 0.25
    seed: int = 1
    bandwidth_scale: float = 0.01
    edges_per_core: int = 2
    rocketfuel_hosts: int = 20
    fattree_k: int = 4
    max_flow_bytes: int = 1_000_000

    def with_(self, **kwargs) -> "ReplayScenario":
        return replace(self, **kwargs)


def _size_distribution(scenario: ReplayScenario) -> SizeDistribution:
    """Heavy-tailed sizes, truncated so laptop-scale runs stay bounded."""
    return BoundedPareto(alpha=1.2, low=1_500, high=scenario.max_flow_bytes)


def _i2_config(scenario: ReplayScenario) -> Internet2Config:
    base = Internet2Config(
        edges_per_core=scenario.edges_per_core,
        bandwidth_scale=scenario.bandwidth_scale,
    )
    if scenario.topology == "i2-1g-1g":
        return replace(base, host_bw=1 * GBPS)
    if scenario.topology == "i2-10g-10g":
        return replace(base, access_bw=10 * GBPS)
    return base


def topology_factory(scenario: ReplayScenario) -> Callable[[], Network]:
    """A zero-argument builder for the scenario's topology."""
    if scenario.topology.startswith("i2"):
        cfg = _i2_config(scenario)
        return lambda: build_internet2(cfg)
    if scenario.topology == "rocketfuel":
        cfg = RocketFuelConfig(
            num_hosts=scenario.rocketfuel_hosts,
            bandwidth_scale=scenario.bandwidth_scale,
        )
        return lambda: build_rocketfuel(cfg)
    if scenario.topology == "fattree":
        cfg = FatTreeConfig(
            k=scenario.fattree_k, bandwidth_scale=scenario.bandwidth_scale
        )
        return lambda: build_fattree(cfg)
    raise ConfigurationError(
        f"unknown topology {scenario.topology!r}; choose from {TOPOLOGIES}"
    )


def reference_bandwidth(scenario: ReplayScenario) -> float:
    """The bandwidth ``utilization`` is measured against (the bottleneck a
    typical packet crosses — access links normally, the slow core links
    when the access network outruns the core)."""
    scale = scenario.bandwidth_scale
    if scenario.topology == "i2-10g-10g":
        cfg = _i2_config(scenario)
        return cfg.core_bw_slow * scale
    if scenario.topology.startswith("i2"):
        cfg = _i2_config(scenario)
        return min(cfg.access_bw, cfg.host_bw) * scale
    if scenario.topology == "rocketfuel":
        cfg = RocketFuelConfig(bandwidth_scale=scale)
        return min(cfg.access_bw, cfg.core_bw_slow) * scale
    if scenario.topology == "fattree":
        return FatTreeConfig(k=scenario.fattree_k, bandwidth_scale=scale).bottleneck_bw
    raise ConfigurationError(f"unknown topology {scenario.topology!r}")


def _original_scheduler_factory(scenario: ReplayScenario):
    """Per-port scheduler factory for the *original* run (router ports
    only; host uplinks stay FIFO, i.e. the natural pacing of a NIC)."""
    rng = random.Random(scenario.seed)
    kind = scenario.scheduler

    makers = {
        "random": lambda: RandomScheduler(rng),
        "fifo": FifoScheduler,
        "fq": FqScheduler,
        "sjf": SjfScheduler,
        "lifo": LifoScheduler,
    }

    if kind in makers:
        make = makers[kind]

        def factory(node: str, _neighbor: str):
            if node.startswith("h"):  # host uplink: keep FIFO
                return None
            return make()

        return factory

    if kind == "fq+fifo+":
        # §2.3: half the routers run FIFO+, the other half fair queueing.
        # The split must be deterministic across processes (str.hash is
        # salted), so key it on a stable digest of the node name.
        def factory(node: str, _neighbor: str):
            if node.startswith("h"):
                return None
            stable = sum(node.encode())
            return FqScheduler() if stable % 2 == 0 else FifoPlusScheduler()

        return factory

    raise ConfigurationError(
        f"unknown original scheduler {kind!r}; choose from {ORIGINALS}"
    )


@dataclass(slots=True)
class ReplayOutcome:
    """A Table 1 row's worth of results."""

    scenario: ReplayScenario
    mode: str
    schedule: RecordedSchedule
    result: ReplayResult

    @property
    def fraction_overdue(self) -> float:
        return self.result.fraction_overdue

    @property
    def fraction_overdue_beyond_t(self) -> float:
        return self.result.fraction_overdue_beyond_threshold

    def row(self) -> tuple[str, str, str, int, float, float]:
        s = self.scenario
        return (
            s.topology,
            f"{s.utilization:.0%}",
            s.scheduler,
            len(self.schedule),
            self.fraction_overdue,
            self.fraction_overdue_beyond_t,
        )


def scenario_schedule_key(scenario: ReplayScenario) -> str:
    """The schedule-store key for a scenario's recorded original schedule.

    Derived from every :class:`ReplayScenario` field *except* ``name``:
    the display name never changes what gets recorded, so two scenarios
    that differ only in labelling (a Table 1 row and a Figure 1 sweep
    point, say) share one cache entry.
    """
    payload = {
        f.name: getattr(scenario, f.name)
        for f in fields(ReplayScenario)
        if f.name != "name"
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"sched-{digest[:12]}"


def _recording_description(scenario: ReplayScenario) -> str:
    """Deterministic schedule description from recording inputs only.

    Deliberately not ``scenario.name``: the stored schedule must be
    byte-identical no matter which experiment triggered the recording.
    """
    return (
        f"{scenario.topology}/{scenario.scheduler}"
        f"/util={scenario.utilization:g}/seed={scenario.seed}"
        f"/dur={scenario.duration:g}/scale={scenario.bandwidth_scale:g}"
    )


def build_recorded_schedule(scenario: ReplayScenario) -> RecordedSchedule:
    """Record the original schedule for a scenario (no replay, no cache).

    Context-independent by construction, which is what makes recordings
    cacheable: the packet-id counter is reset so the recorded pids never
    depend on what ran earlier in the process, and the recording's
    engine work is excluded from :data:`~repro.sim.engine.ENGINE_PERF`
    so a run's deterministic event count is the same whether its
    schedule was recorded here or loaded from a
    :class:`~repro.core.trace_io.ScheduleStore`.
    """
    with ENGINE_PERF.paused():
        reset_packet_ids()
        factory = topology_factory(scenario)
        network = factory()
        network.install_schedulers(_original_scheduler_factory(scenario))
        flows = poisson_flows(
            hosts=[h.name for h in network.hosts],
            sizes=_size_distribution(scenario),
            workload=PoissonWorkload(
                utilization=scenario.utilization,
                reference_bandwidth=reference_bandwidth(scenario),
                duration=scenario.duration,
                seed=scenario.seed,
            ),
        )
        install_udp_flows(network, flows)
        schedule = record_schedule(
            network, description=_recording_description(scenario)
        )
        reset_packet_ids()
    return schedule


def get_recorded_schedule(scenario: ReplayScenario) -> RecordedSchedule:
    """The scenario's recorded schedule — cached when a store is active.

    With an active :class:`~repro.core.trace_io.ScheduleStore` (the
    runner opens one around every driver call that has somewhere durable
    to put it), the schedule is answered from the store and recorded at
    most once per key; without one it is recorded in memory, the
    pre-store behaviour.
    """
    store = active_schedule_store()
    if store is None:
        return build_recorded_schedule(scenario)
    return store.get_or_record(
        scenario_schedule_key(scenario),
        functools.partial(build_recorded_schedule, scenario),
    )


def run_replay(
    scenario: ReplayScenario,
    mode: str = "lstf",
    schedule: RecordedSchedule | None = None,
    **replay_kwargs,
) -> ReplayOutcome:
    """Record (or reuse) the original schedule and replay it under ``mode``.

    Parameters
    ----------
    scenario:
        The Table 1 row to run.
    mode:
        One of :data:`repro.core.replay.REPLAY_MODES`.
    schedule:
        A pre-recorded schedule to reuse.  When given, *no recording
        happens* — this is the record-once path: record (or load) the
        scenario's schedule once, then call ``run_replay(schedule=...)``
        for every mode under test.  ``None`` fetches the schedule via
        :func:`get_recorded_schedule`.
    replay_kwargs:
        Forwarded to :func:`repro.core.replay.replay_schedule`.
    """
    if schedule is None:
        schedule = get_recorded_schedule(scenario)
    result = replay_schedule(
        schedule, topology_factory(scenario), mode=mode, **replay_kwargs
    )
    return ReplayOutcome(scenario=scenario, mode=mode, schedule=schedule, result=result)


def table1_scenarios(
    duration: float = 0.25, seed: int = 1, bandwidth_scale: float = 0.01
) -> list[ReplayScenario]:
    """The thirteen rows of Table 1, in the paper's order."""
    base = ReplayScenario(
        name="", duration=duration, seed=seed, bandwidth_scale=bandwidth_scale
    )
    rows = [
        base.with_(name="I2 1G-10G / 70% / Random"),
        base.with_(name="I2 1G-10G / 10% / Random", utilization=0.10),
        base.with_(name="I2 1G-10G / 30% / Random", utilization=0.30),
        base.with_(name="I2 1G-10G / 50% / Random", utilization=0.50),
        base.with_(name="I2 1G-10G / 90% / Random", utilization=0.90),
        base.with_(name="I2 1G-1G / 70% / Random", topology="i2-1g-1g"),
        base.with_(name="I2 10G-10G / 70% / Random", topology="i2-10g-10g"),
        base.with_(name="RocketFuel / 70% / Random", topology="rocketfuel"),
        base.with_(name="Datacenter / 70% / Random", topology="fattree"),
        base.with_(name="I2 1G-10G / 70% / FIFO", scheduler="fifo"),
        base.with_(name="I2 1G-10G / 70% / FQ", scheduler="fq"),
        base.with_(name="I2 1G-10G / 70% / SJF", scheduler="sjf"),
        base.with_(name="I2 1G-10G / 70% / LIFO", scheduler="lifo"),
        base.with_(name="I2 1G-10G / 70% / FQ+FIFO+", scheduler="fq+fifo+"),
    ]
    return rows


def validate_row_indices(rows: Iterable[int], count: int) -> tuple[int, ...]:
    """Check 0-based row indices against ``count``; raise a clean error.

    Shared by the Table 1 driver and the CLI dispatcher so a typo like
    ``--rows 99`` reports the valid range instead of an ``IndexError``.
    """
    indices = tuple(rows)
    for index in indices:
        if not isinstance(index, int) or isinstance(index, bool):
            raise ConfigurationError(f"row index {index!r} is not an integer")
        if not 0 <= index < count:
            raise ConfigurationError(
                f"row index {index} out of range; Table 1 has {count} rows "
                f"(valid: 0..{count - 1})"
            )
    return indices


def scenario_from_spec(spec: ExperimentSpec, default_scheduler: str = "random") -> ReplayScenario:
    """The :class:`ReplayScenario` a spec describes (single-scenario runs)."""
    return ReplayScenario(
        name=spec.label,
        topology=spec.topology,
        scheduler=spec.schedulers[0] if spec.schedulers else default_scheduler,
        utilization=spec.utilization,
        duration=spec.duration,
        seed=spec.seed,
        bandwidth_scale=spec.bandwidth_scale,
    )


def _table1_row_scenarios(spec: ExperimentSpec) -> list[ReplayScenario]:
    """The scenarios a table1 spec runs (honouring the ``rows`` option)."""
    scenarios = table1_scenarios(
        duration=spec.duration, seed=spec.seed, bandwidth_scale=spec.bandwidth_scale
    )
    rows_opt = spec.option("rows")
    if rows_opt is not None:
        indices = validate_row_indices(
            rows_opt if isinstance(rows_opt, tuple) else (rows_opt,),
            len(scenarios),
        )
        scenarios = [scenarios[i] for i in indices]
    return scenarios


def _table1_recordings(spec: ExperimentSpec) -> dict[str, Callable]:
    """Registry hook: the recordings a table1 spec needs (key → recorder)."""
    return {
        scenario_schedule_key(s): functools.partial(build_recorded_schedule, s)
        for s in _table1_row_scenarios(spec)
    }


@register_experiment(
    "table1",
    help="Table 1: LSTF replayability across topologies, loads, schedulers",
    options=("rows",),
    params=("duration", "seeds", "bandwidth_scale", "replay_modes"),
    recordings=_table1_recordings,
)
def _run_table1(spec: ExperimentSpec) -> tuple[Table, dict]:
    mode = spec.replay_mode
    scenarios = _table1_row_scenarios(spec)
    table = Table(
        ["scenario", "packets", "overdue", "overdue > T"],
        title=f"Table 1 — {mode} replayability",
    )
    for scenario in scenarios:
        # Record once, replay many: fetch the schedule through the store
        # and hand it to run_replay explicitly, so every replay-mode leg
        # of a sweep replays the same recorded artifact.
        schedule = get_recorded_schedule(scenario)
        outcome = run_replay(scenario, mode=mode, schedule=schedule)
        table.add_row(
            [
                scenario.name,
                outcome.result.num_packets,
                outcome.fraction_overdue,
                outcome.fraction_overdue_beyond_t,
            ]
        )
    return table, {"mode": mode, "scenarios": [s.name for s in scenarios]}


def _fig1_scenarios(spec: ExperimentSpec) -> list[ReplayScenario]:
    """One scenario per original scheduler in a fig1 spec's sweep."""
    return [
        scenario_from_spec(
            spec.with_(name=f"fig1/{scheduler}", schedulers=(scheduler,))
        )
        for scheduler in (spec.schedulers or ORIGINALS)
    ]


def _fig1_recordings(spec: ExperimentSpec) -> dict[str, Callable]:
    """Registry hook: the recordings a fig1 spec needs (key → recorder)."""
    return {
        scenario_schedule_key(s): functools.partial(build_recorded_schedule, s)
        for s in _fig1_scenarios(spec)
    }


@register_experiment(
    "fig1",
    help="Figure 1: LSTF:original queueing-delay-ratio quantiles",
    params=("duration", "seeds", "bandwidth_scale", "schedulers",
            "topology", "utilization", "replay_modes"),
    recordings=_fig1_recordings,
)
def _run_fig1(spec: ExperimentSpec) -> tuple[Table, dict]:
    import numpy as np

    mode = spec.replay_mode
    scenarios = _fig1_scenarios(spec)
    table = Table(
        ["original", "p10", "p50", "p90", "p99", "frac <= 1"],
        title=f"Figure 1 — {mode}:original queueing delay ratio",
    )
    for scenario in scenarios:
        schedule = get_recorded_schedule(scenario)
        outcome = run_replay(scenario, mode=mode, schedule=schedule)
        ratios = outcome.result.queueing_delay_ratios()
        q = np.quantile(ratios, [0.1, 0.5, 0.9, 0.99])
        table.add_row([scenario.scheduler, q[0], q[1], q[2], q[3],
                       float(np.mean(ratios <= 1.0 + 1e-9))])
    return table, {"mode": mode, "schedulers": [s.scheduler for s in scenarios]}
