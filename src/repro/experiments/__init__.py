"""Experiment orchestration: one module per paper artefact.

Every module exposes a laptop-scale ``run_*`` entry point used by both the
``examples/`` scripts and the ``benchmarks/`` harness, and accepts
parameters that restore the paper's full scale (see DESIGN.md for the
scaling argument: all bandwidth ratios, utilisations, and scheduler logic
are preserved; only the event count shrinks).

* :mod:`repro.experiments.replayability` — Table 1, Figure 1, the §2.3(7)
  priority comparison and the §2.3(5) preemption ablation.
* :mod:`repro.experiments.fct` — Figure 2 (mean FCT vs SJF/SRPT/FIFO).
* :mod:`repro.experiments.tail` — Figure 3 (tail delays vs FIFO).
* :mod:`repro.experiments.fairness` — Figure 4 (convergence to fairness).
"""

from repro.experiments.replayability import (
    ReplayOutcome,
    ReplayScenario,
    run_replay,
    table1_scenarios,
)
from repro.experiments.fct import FctExperimentResult, run_fct_experiment
from repro.experiments.tail import TailExperimentResult, run_tail_experiment
from repro.experiments.fairness import (
    FairnessExperimentResult,
    run_fairness_experiment,
    run_weighted_fairness_experiment,
)
from repro.experiments.information import QuantisationPoint, run_information_experiment

__all__ = [
    "FairnessExperimentResult",
    "FctExperimentResult",
    "QuantisationPoint",
    "ReplayOutcome",
    "ReplayScenario",
    "TailExperimentResult",
    "run_fairness_experiment",
    "run_fct_experiment",
    "run_information_experiment",
    "run_replay",
    "run_tail_experiment",
    "run_weighted_fairness_experiment",
    "table1_scenarios",
]
