"""Experiment orchestration: one module per paper artefact.

Every module exposes a laptop-scale ``run_*`` entry point used by both the
``examples/`` scripts and the ``benchmarks/`` harness, and accepts
parameters that restore the paper's full scale (see DESIGN.md for the
scaling argument: all bandwidth ratios, utilisations, and scheduler logic
are preserved; only the event count shrinks).

Each module also registers a declarative driver with
:mod:`repro.api.registry` (``table1``, ``fig1`` … ``gadgets``), so the
preferred entry point is now::

    from repro.api import ExperimentSpec, run
    artifact = run(ExperimentSpec("fig2", duration=0.2))

* :mod:`repro.experiments.replayability` — Table 1, Figure 1, the §2.3(7)
  priority comparison and the §2.3(5) preemption ablation.
* :mod:`repro.experiments.fct` — Figure 2 (mean FCT vs SJF/SRPT/FIFO).
* :mod:`repro.experiments.tail` — Figure 3 (tail delays vs FIFO).
* :mod:`repro.experiments.fairness` — Figure 4 (convergence to fairness)
  and the §3.3 weighted-fairness extension.
* :mod:`repro.experiments.information` — the §5 information-precision
  extension.
* :mod:`repro.experiments.gadgets` — the appendix counter-examples.
* :mod:`repro.experiments.branch` — branch-from-checkpoint sweeps
  (simulate-once-branch-many; see ``docs/checkpointing.md``).
* :mod:`repro.experiments.scenario_matrix` — declarative scenarios ×
  schedulers × seeds with fairness/utilisation summaries (see
  ``docs/scenarios.md``).
"""

from repro.experiments.replayability import (
    ReplayOutcome,
    ReplayScenario,
    build_recorded_schedule,
    get_recorded_schedule,
    run_replay,
    scenario_from_spec,
    scenario_schedule_key,
    table1_scenarios,
    validate_row_indices,
)
from repro.experiments.fct import FctExperimentResult, run_fct_experiment
from repro.experiments.tail import TailExperimentResult, run_tail_experiment
from repro.experiments.fairness import (
    FairnessExperimentResult,
    run_fairness_experiment,
    run_weighted_fairness_experiment,
)
from repro.experiments.information import QuantisationPoint, run_information_experiment
from repro.experiments.gadgets import run_gadget_experiment
from repro.experiments.perf import run_perf_bench
from repro.experiments.branch import (
    BranchPrefix,
    branch_checkpoint_key,
    build_branch_snapshot,
    get_branch_network,
    prefix_from_spec,
)
from repro.experiments.scenario_matrix import run_scenario_leg

__all__ = [
    "BranchPrefix",
    "FairnessExperimentResult",
    "FctExperimentResult",
    "QuantisationPoint",
    "ReplayOutcome",
    "ReplayScenario",
    "TailExperimentResult",
    "branch_checkpoint_key",
    "build_branch_snapshot",
    "build_recorded_schedule",
    "get_branch_network",
    "prefix_from_spec",
    "get_recorded_schedule",
    "run_fairness_experiment",
    "run_fct_experiment",
    "run_gadget_experiment",
    "run_information_experiment",
    "run_perf_bench",
    "run_replay",
    "run_scenario_leg",
    "run_tail_experiment",
    "run_weighted_fairness_experiment",
    "scenario_from_spec",
    "scenario_schedule_key",
    "table1_scenarios",
    "validate_row_indices",
]
