"""The §5 open question, made measurable: how much information does the
ingress need for LSTF replay?

"We showed existence of a UPS with omniscient header initialization, and
nonexistence with limited-information initialization.  What is the least
information we can use in header initialization in order to achieve
universality?"

This extension degrades the black-box information — the target output
time ``o(p)`` — by quantising it to a grid of step ``q`` before slack
initialisation, while still judging the replay against the true targets.
``q`` is expressed in multiples of the bottleneck transmission time ``T``
so results are scale-free:

* ``q = 0`` is the paper's exact replay;
* small ``q`` models an ingress learning targets at reduced precision
  (fewer header bits / coarser clocks);
* large ``q`` degrades toward "no information".

Both rounding directions are supported: ``"down"`` (targets can only get
*tighter*, so failures mean packets the original schedule could still
have satisfied) and ``"nearest"`` (unbiased noise).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.replay import RecordedPacket, RecordedSchedule, replay_schedule
from repro.errors import ConfigurationError
from repro.experiments.replayability import (
    ReplayScenario,
    build_recorded_schedule,
    get_recorded_schedule,
    scenario_from_spec,
    scenario_schedule_key,
    topology_factory,
)

__all__ = ["QuantisationPoint", "run_information_experiment"]


@dataclass(frozen=True, slots=True)
class QuantisationPoint:
    """Replay quality at one quantisation step."""

    step_in_t: float
    fraction_overdue: float
    fraction_overdue_beyond_t: float
    max_lateness: float


def _quantiser(step: float, rounding: str):
    if rounding == "down":
        return lambda rec: math.floor(rec.output_time / step) * step
    if rounding == "nearest":
        return lambda rec: round(rec.output_time / step) * step
    raise ConfigurationError(f"rounding must be 'down' or 'nearest', got {rounding!r}")


def run_information_experiment(
    steps_in_t: tuple[float, ...] = (0.0, 0.5, 1.0, 4.0, 16.0, 64.0),
    rounding: str = "down",
    scenario: ReplayScenario | None = None,
    schedule: RecordedSchedule | None = None,
) -> list[QuantisationPoint]:
    """Sweep quantisation steps and measure LSTF replay degradation.

    Returns one :class:`QuantisationPoint` per step (in units of the
    schedule's bottleneck transmission time ``T``).
    """
    if scenario is None:
        scenario = ReplayScenario(name="information", duration=0.15, seed=1)
    if schedule is None:
        schedule = get_recorded_schedule(scenario)
    factory = topology_factory(scenario)
    threshold = schedule.threshold

    points: list[QuantisationPoint] = []
    for step_t in steps_in_t:
        if step_t < 0:
            raise ConfigurationError(f"quantisation step must be >= 0, got {step_t!r}")
        if step_t == 0:
            output_time_fn = None
        else:
            output_time_fn = _quantiser(step_t * threshold, rounding)
        result = replay_schedule(
            schedule, factory, mode="lstf", output_time_fn=output_time_fn
        )
        points.append(
            QuantisationPoint(
                step_in_t=step_t,
                fraction_overdue=result.fraction_overdue,
                fraction_overdue_beyond_t=result.fraction_overdue_beyond_threshold,
                max_lateness=result.max_lateness,
            )
        )
    return points


def _info_recordings(spec: ExperimentSpec) -> dict:
    """Registry hook: the single recording an info spec sweeps over."""
    scenario = scenario_from_spec(spec)
    return {
        scenario_schedule_key(scenario): functools.partial(
            build_recorded_schedule, scenario
        )
    }


@register_experiment(
    "info",
    help="§5 extension: replay quality vs quantised slack information",
    options=("rounding", "steps_in_t"),
    params=("duration", "seeds", "bandwidth_scale", "schedulers",
            "topology", "utilization"),
    recordings=_info_recordings,
)
def _run_info(spec: ExperimentSpec) -> tuple[Table, dict]:
    scenario = scenario_from_spec(spec)
    rounding = spec.option("rounding", "down")
    steps = spec.option("steps_in_t")
    kwargs: dict = {"scenario": scenario, "rounding": str(rounding)}
    if steps is not None:
        kwargs["steps_in_t"] = tuple(float(s) for s in steps)
    table = Table(
        ["quantisation (T)", "overdue", "overdue > T", "max lateness (s)"],
        title="§5 extension — replay vs information precision",
    )
    for point in run_information_experiment(**kwargs):
        table.add_row([point.step_in_t, point.fraction_overdue,
                       point.fraction_overdue_beyond_t, point.max_lateness])
    return table, {"rounding": str(rounding)}
