"""Figure 3: tail packet delays — FIFO vs LSTF-with-constant-slack (FIFO+).

UDP flows (so the offered load is identical under both disciplines, the
paper's point about a fair in-network comparison), Internet2 at 70%
utilisation.  Expected shape: nearly identical means, with LSTF/FIFO+
trimming the high percentiles because packets that already waited upstream
get priority downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.heuristics import ConstantSlack, SlackPolicy, parse_slack_policy
from repro.errors import ConfigurationError
from repro.metrics.delay import packet_delays, percentile
from repro.schedulers import FifoPlusScheduler, FifoScheduler, LstfScheduler
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows

__all__ = ["TailExperimentResult", "run_tail_experiment", "TAIL_SCHEMES"]

TAIL_SCHEMES = ("fifo", "lstf-constant", "fifo+")


@dataclass(slots=True)
class TailExperimentResult:
    """Delay distribution under one discipline."""

    scheme: str
    delays: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.delays.mean())

    @property
    def p99(self) -> float:
        return percentile(self.delays, 99)

    @property
    def p999(self) -> float:
        return percentile(self.delays, 99.9)

    @property
    def max(self) -> float:
        return float(self.delays.max())


def run_tail_experiment(
    schemes: tuple[str, ...] = ("fifo", "lstf-constant"),
    utilization: float = 0.7,
    duration: float = 0.3,
    seed: int = 1,
    bandwidth_scale: float = 0.01,
    edges_per_core: int = 2,
    max_flow_bytes: int = 1_000_000,
    lstf_slack: SlackPolicy | None = None,
) -> dict[str, TailExperimentResult]:
    """Identical UDP workload under each scheme; returns results by name.

    ``"lstf-constant"`` is LSTF with the §3.2 slack initialisation (all
    packets get the same large slack), which the paper notes is identical
    to FIFO+; ``"fifo+"`` runs the direct FIFO+ implementation so the
    equivalence can be checked as an ablation.  ``lstf_slack`` replaces
    the default :class:`ConstantSlack` for the ``"lstf-constant"`` scheme
    (e.g. a flow-size policy, to see size-awareness reshape the tail).
    """
    cfg = Internet2Config(edges_per_core=edges_per_core, bandwidth_scale=bandwidth_scale)
    sizes = BoundedPareto(alpha=1.2, low=1_500, high=max_flow_bytes)
    reference_bw = min(cfg.access_bw, cfg.host_bw) * bandwidth_scale

    results: dict[str, TailExperimentResult] = {}
    for scheme in schemes:
        if scheme == "fifo":
            make, slack_policy = FifoScheduler, None
        elif scheme == "fifo+":
            make, slack_policy = FifoPlusScheduler, None
        elif scheme == "lstf-constant":
            make = LstfScheduler
            slack_policy = ConstantSlack(1.0) if lstf_slack is None else lstf_slack
        else:
            raise ConfigurationError(
                f"unknown tail scheme {scheme!r}; choose from {TAIL_SCHEMES}"
            )
        network = build_internet2(cfg)
        network.install_schedulers(
            lambda node, _peer, cls=make: None if node.startswith("h") else cls()
        )
        flows = poisson_flows(
            hosts=[h.name for h in network.hosts],
            sizes=sizes,
            workload=PoissonWorkload(
                utilization=utilization,
                reference_bandwidth=reference_bw,
                duration=duration,
                seed=seed,
            ),
        )
        install_udp_flows(network, flows, slack_policy=slack_policy)
        network.run()
        results[scheme] = TailExperimentResult(
            scheme=scheme, delays=packet_delays(network.tracer)
        )
    return results


@register_experiment(
    "fig3",
    help="Figure 3: tail packet delays (FIFO vs LSTF-constant vs FIFO+)",
    params=("duration", "seeds", "bandwidth_scale", "schedulers",
            "utilization", "slack_policy"),
)
def _run_fig3(spec: ExperimentSpec) -> tuple[Table, dict]:
    schemes = spec.schedulers or TAIL_SCHEMES
    results = run_tail_experiment(
        schemes=tuple(schemes),
        utilization=spec.utilization,
        duration=spec.duration,
        seed=spec.seed,
        bandwidth_scale=spec.bandwidth_scale,
        lstf_slack=(
            parse_slack_policy(spec.slack_policy) if spec.slack_policy else None
        ),
    )
    table = Table(["scheme", "mean (s)", "p99 (s)", "p99.9 (s)"],
                  title="Figure 3 — tail packet delays")
    for name, res in results.items():
        table.add_row([name, res.mean, res.p99, res.p999])
    return table, {"schemes": list(schemes), "slack_policy": spec.slack_policy}
