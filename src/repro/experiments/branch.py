"""Branch-from-checkpoint sweeps: warm one network up, branch many legs.

The counterpart of record-once/replay-many for *open-loop* sweeps.  A
:class:`BranchPrefix` names a sweep's shared warm-up: a topology, an
original scheduler, a load level, and a warm-up horizon.  Every leg of a
``branch`` sweep (one per seed) continues the same warmed-up network with
its own fresh traffic, so the expensive prefix — typically much longer
than the per-leg delta — needs to be simulated exactly once per sweep:

* :func:`build_branch_snapshot` simulates the prefix from t=0 and
  captures it as a :class:`~repro.sim.checkpoint.Snapshot`;
* :func:`get_branch_network` answers warm-ups through the active
  :class:`~repro.sim.checkpoint.CheckpointStore` when the runner has one
  open (``run_many`` sweeps, ``--out`` caches, queue workers), keyed by
  :func:`branch_checkpoint_key`; without a store it builds in memory and
  branches the live graph — the pre-checkpoint behaviour.

Builds are pid-stream independent (the packet-id counter is reset before
the warm-up and captured with the snapshot) and excluded from the run's
deterministic ``engine_events`` accounting (the restore credit is the
only path warm-up events take into the accumulator), so a leg's artifact
is byte-identical whether its prefix was simulated in-process or fetched
from the store — the invariant the branch byte-identity tests enforce
across schedulers × seeds × executors.

Leg flows are offset into a disjoint flow-id range (:data:`LEG_FID_BASE`)
and shifted to start after the warm-up horizon, so per-flow schedulers
(FQ, DRR) never merge a leg flow into a warm-up flow's queue and leg
packets are cleanly separable in the tracer.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Callable

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.core.packet import reset_packet_ids
from repro.errors import ConfigurationError
from repro.experiments.replayability import (
    ORIGINALS,
    ReplayScenario,
    _original_scheduler_factory,
    _size_distribution,
    reference_bandwidth,
    topology_factory,
)
from repro.metrics.delay import percentile
from repro.sim.checkpoint import (
    Snapshot,
    active_checkpoint_store,
    restore_snapshot,
    snapshot_network,
)
from repro.sim.engine import ENGINE_PERF
from repro.sim.network import Network
from repro.transport.udp import install_udp_flows
from repro.workload.flows import PoissonWorkload, poisson_flows

__all__ = [
    "BranchPrefix",
    "branch_checkpoint_key",
    "build_branch_snapshot",
    "get_branch_network",
    "prefix_from_spec",
]

#: Default shared warm-up horizon (simulated seconds).
DEFAULT_WARMUP = 0.05

#: Branch-leg flow ids start here — far above any warm-up fid — so
#: per-flow schedulers never alias a leg flow onto a warm-up flow's
#: queue, and leg packets are identifiable by ``flow_id`` alone.
LEG_FID_BASE = 1_000_000


@dataclass(frozen=True, slots=True)
class BranchPrefix:
    """One sweep's shared warm-up: everything the checkpoint depends on."""

    topology: str = "i2-1g-10g"
    scheduler: str = "fifo"
    utilization: float = 0.7
    warmup: float = DEFAULT_WARMUP
    bandwidth_scale: float = 0.01
    warmup_seed: int = 1

    def with_(self, **kwargs) -> "BranchPrefix":
        return replace(self, **kwargs)


def branch_checkpoint_key(prefix: BranchPrefix) -> str:
    """The checkpoint-store key for a prefix's warmed-up network.

    Derived from every :class:`BranchPrefix` field, so any sweep whose
    legs share (topology, scheduler, load, horizon, warm-up seed)
    addresses the same cache entry.
    """
    payload = {f.name: getattr(prefix, f.name) for f in fields(BranchPrefix)}
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()
    return f"ckpt-{digest[:12]}"


def _warmup_scenario(prefix: BranchPrefix) -> ReplayScenario:
    """The replayability scenario describing the warm-up run."""
    return ReplayScenario(
        name="",
        topology=prefix.topology,
        scheduler=prefix.scheduler,
        utilization=prefix.utilization,
        duration=prefix.warmup,
        seed=prefix.warmup_seed,
        bandwidth_scale=prefix.bandwidth_scale,
    )


def build_branch_snapshot(prefix: BranchPrefix) -> Snapshot:
    """Simulate the warm-up prefix from t=0 and capture it (no cache).

    Context-independent by construction, which is what makes checkpoints
    cacheable: the packet-id counter is reset so warm-up pids never
    depend on what ran earlier in the process, and the warm-up's engine
    work is excluded from :data:`~repro.sim.engine.ENGINE_PERF` — the
    snapshot carries the deterministic event count instead, and
    :func:`~repro.sim.checkpoint.restore_snapshot` credits it, so a
    leg's ``engine_events`` is the same whether the prefix was simulated
    here or loaded from a :class:`~repro.sim.checkpoint.CheckpointStore`.
    """
    with ENGINE_PERF.paused():
        reset_packet_ids()
        scenario = _warmup_scenario(prefix)
        network = topology_factory(scenario)()
        network.install_schedulers(_original_scheduler_factory(scenario))
        flows = poisson_flows(
            hosts=[h.name for h in network.hosts],
            sizes=_size_distribution(scenario),
            workload=PoissonWorkload(
                utilization=prefix.utilization,
                reference_bandwidth=reference_bandwidth(scenario),
                duration=prefix.warmup,
                seed=prefix.warmup_seed,
            ),
        )
        install_udp_flows(network, flows)
        network.run(until=prefix.warmup)
        snapshot = snapshot_network(
            network,
            description=(
                f"{prefix.topology}/{prefix.scheduler}"
                f"/util={prefix.utilization:g}/warmup={prefix.warmup:g}"
                f"/seed={prefix.warmup_seed}/scale={prefix.bandwidth_scale:g}"
            ),
        )
    return snapshot


def get_branch_network(prefix: BranchPrefix) -> Network:
    """A network warmed to ``prefix.warmup`` — cached when a store is active.

    With an active :class:`~repro.sim.checkpoint.CheckpointStore` (the
    runner opens one around every driver call that has somewhere durable
    to put it), the warm-up is answered from the store and simulated at
    most once per key; without one the prefix is simulated in memory and
    the live graph is branched directly.  Both paths go through
    :func:`~repro.sim.checkpoint.restore_snapshot`, so the packet-id
    counter and the ``ENGINE_PERF`` credit are identical either way.
    """
    store = active_checkpoint_store()
    if store is None:
        return restore_snapshot(build_branch_snapshot(prefix))
    snapshot = store.get_or_build(
        branch_checkpoint_key(prefix),
        functools.partial(build_branch_snapshot, prefix),
    )
    return restore_snapshot(snapshot)


def prefix_from_spec(spec: ExperimentSpec) -> BranchPrefix:
    """The :class:`BranchPrefix` a branch spec describes.

    Deliberately independent of ``spec.seed``: the per-leg seed drives
    only the post-warm-up traffic, so every leg of a seed sweep shares
    one prefix — that sharing is the whole point.
    """
    warmup = spec.option("warmup", DEFAULT_WARMUP)
    if isinstance(warmup, bool) or not isinstance(warmup, (int, float)):
        raise ConfigurationError(f"warmup must be a number, got {warmup!r}")
    if warmup <= 0:
        raise ConfigurationError(f"warmup must be positive, got {warmup!r}")
    warmup_seed = spec.option("warmup_seed", 1)
    if isinstance(warmup_seed, bool) or not isinstance(warmup_seed, int):
        raise ConfigurationError(
            f"warmup_seed must be an integer, got {warmup_seed!r}"
        )
    scheduler = spec.schedulers[0] if spec.schedulers else "fifo"
    if scheduler not in ORIGINALS:
        raise ConfigurationError(
            f"unknown branch scheduler {scheduler!r}; choose from {ORIGINALS}"
        )
    return BranchPrefix(
        topology=spec.topology,
        scheduler=scheduler,
        utilization=spec.utilization,
        warmup=float(warmup),
        bandwidth_scale=spec.bandwidth_scale,
        warmup_seed=warmup_seed,
    )


def _branch_checkpoints(spec: ExperimentSpec) -> dict[str, Callable]:
    """Registry hook: the checkpoints a branch spec needs (key → builder)."""
    prefix = prefix_from_spec(spec)
    return {
        branch_checkpoint_key(prefix): functools.partial(
            build_branch_snapshot, prefix
        )
    }


def _leg_flows(network: Network, prefix: BranchPrefix, spec: ExperimentSpec):
    """The branch leg's own traffic: seeded per leg, shifted past the
    warm-up horizon, fids offset into the leg range."""
    scenario = _warmup_scenario(prefix)
    flows = poisson_flows(
        hosts=[h.name for h in network.hosts],
        sizes=_size_distribution(scenario),
        workload=PoissonWorkload(
            utilization=prefix.utilization,
            reference_bandwidth=reference_bandwidth(scenario),
            duration=spec.duration,
            seed=spec.seed,
        ),
    )
    return [
        replace(flow, fid=flow.fid + LEG_FID_BASE, start=flow.start + prefix.warmup)
        for flow in flows
    ]


@register_experiment(
    "branch",
    help="Branch-from-checkpoint sweep: one shared warm-up, one leg per seed",
    options=("warmup", "warmup_seed"),
    params=("duration", "seeds", "bandwidth_scale", "schedulers"),
    checkpoints=_branch_checkpoints,
)
def _run_branch(spec: ExperimentSpec) -> tuple[Table, dict]:
    prefix = prefix_from_spec(spec)
    network = get_branch_network(prefix)
    leg_flows = _leg_flows(network, prefix, spec)
    install_udp_flows(network, leg_flows)
    network.run()

    records = [
        record
        for record in network.tracer.delivered_records()
        if record.flow_id >= LEG_FID_BASE
    ]
    delays = [record.total_delay for record in records]
    waits = [record.total_wait for record in records]
    table = Table(
        [
            "topology", "scheduler", "seed", "leg flows", "delivered",
            "mean delay", "p99 delay", "mean wait",
        ],
        title=f"branch — {prefix.topology}/{prefix.scheduler}"
              f" warm-up {prefix.warmup:g}s + leg seed {spec.seed}",
    )
    table.add_row(
        [
            prefix.topology,
            prefix.scheduler,
            spec.seed,
            len(leg_flows),
            len(records),
            sum(delays) / len(delays) if delays else 0.0,
            percentile(delays, 99.0) if delays else 0.0,
            sum(waits) / len(waits) if waits else 0.0,
        ]
    )
    return table, {
        "checkpoint_key": branch_checkpoint_key(prefix),
        "warmup": prefix.warmup,
        "topology": prefix.topology,
        "scheduler": prefix.scheduler,
    }
