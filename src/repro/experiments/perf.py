"""Performance micro-benchmarks for the simulation substrate.

Not a paper artefact: this driver quantifies the *substrate* — engine
event throughput, per-scheduler enqueue/dequeue cost, and a fig2-shaped
end-to-end run — so regressions in the hot path (heap ops, port state
machine, LSTF keying) show up as numbers, not as mysteriously slower
sweeps.  It registers as ``bench`` in the experiment registry, which
makes ``repro bench`` (and ``repro run bench``) work like any other
artefact and lets seed sweeps, ``--json``, ``--out`` caching and the
parallel runner apply unchanged.

The stable row schema (one row per bench: name, scale, ops, seconds,
ops_per_sec) is what ``benchmarks/perf/run_bench.py`` persists into the
repo-level ``BENCH_*.json`` trajectory files; see
``benchmarks/perf/README.md`` for how to compare runs.

Unlike every other driver, the rows here are wall-clock measurements and
therefore *not* deterministic — bench artifacts are trajectory data, not
replayable results.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.runner import EXECUTORS as RUN_MANY_EXECUTORS
from repro.api.spec import ExperimentSpec
from repro.core.packet import Packet, reset_packet_ids
from repro.schedulers import make_scheduler
from repro.schedulers.lstf import LstfScheduler
from repro.sim.engine import ENGINE_PERF, Engine
from repro.sim.network import Network
from repro.units import MBPS

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BRANCH_STRATEGIES",
    "DEFAULT_SCHEDULERS",
    "ENGINE_BENCHES",
    "OBS_MODES",
    "REPLAY_STRATEGIES",
    "RESUME_STRATEGIES",
    "SWEEP_EXECUTORS",
    "bench_e2e_fig2_style",
    "bench_engine_chain",
    "bench_engine_defer",
    "bench_engine_fan",
    "bench_obs_engine",
    "bench_obs_sweep_queue",
    "bench_scheduler_ops",
    "bench_sweep_branch",
    "bench_sweep_executor",
    "bench_sweep_replay",
    "bench_sweep_resume",
    "run_perf_bench",
]

#: Version of the (name, scale, ops, seconds, ops_per_sec) row contract.
BENCH_SCHEMA_VERSION = 1

#: Scheduler sweep used when the spec does not name one.
DEFAULT_SCHEDULERS = (
    "fifo",
    "lstf",
    "lstf-pheap",
    "priority",
    "sjf",
    "fifo+",
    "fq",
    "srpt",
    "edf",
)


def _best_of(fn: Callable[[], int], repeats: int) -> tuple[int, float]:
    """Run ``fn`` ``repeats`` times; return (ops, best wall seconds)."""
    best = None
    ops = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()  # repro: allow(DET-WALLCLOCK) wall-clock benchmark harness, not simulation state
        ops = fn()
        elapsed = time.perf_counter() - start  # repro: allow(DET-WALLCLOCK) wall-clock benchmark harness, not simulation state
        if best is None or elapsed < best:
            best = elapsed
    return ops, best


# --- engine microbenches ----------------------------------------------------


def bench_engine_chain(events: int, repeats: int = 3) -> tuple[int, float]:
    """Self-rescheduling event chain: the minimal schedule→fire cycle."""

    def run() -> int:
        engine = Engine()
        count = events

        def tick() -> None:
            nonlocal count
            count -= 1
            if count:
                engine.schedule(1e-6, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return events

    return _best_of(run, repeats)


def bench_engine_fan(events: int, repeats: int = 3) -> tuple[int, float]:
    """Deep heap: schedule everything up front, then drain."""

    def run() -> int:
        engine = Engine()
        sink = [].append
        for i in range(events):
            engine.schedule(((i * 7919) % events) * 1e-6, sink, i)
        engine.run()
        return events

    return _best_of(run, repeats)


def bench_engine_defer(events: int, repeats: int = 3) -> tuple[int, float]:
    """Alternating event→deferred-decision pairs: the two-phase machinery."""

    def run() -> int:
        engine = Engine()
        count = events

        def decide() -> None:
            nonlocal count
            count -= 1
            if count:
                engine.schedule(1e-6, lambda: engine.defer(decide))

        engine.schedule(0.0, lambda: engine.defer(decide))
        engine.run()
        return events

    return _best_of(run, repeats)


# --- scheduler enqueue/dequeue ---------------------------------------------


def _bench_port():
    """A real attached port so keyed schedulers can read link/topology."""
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    return net.nodes["a"].ports["b"]


def bench_scheduler_ops(
    name: str, packets: int, repeats: int = 3
) -> tuple[int, float]:
    """Push then drain ``packets`` packets; counts one op per push/pop."""
    port = _bench_port()

    def run() -> int:
        reset_packet_ids()
        kwargs = {"capacity": 2 * packets} if name == "lstf-pheap" else {}
        scheduler = make_scheduler(name, **kwargs)
        scheduler.attach(port)
        batch = []
        for i in range(packets):
            packet = Packet(i % 50, 1000, "a", "b", 0.0)
            packet.slack = ((i * 7919) % 1000) / 1000.0
            packet.priority = float((i * 104729) % 997)
            packet.deadline = 1.0 + packet.slack
            packet.flow_size = 1000 * (1 + (i * 31) % 64)
            packet.remaining_flow = packet.flow_size
            packet.enqueue_time = 0.0
            batch.append(packet)
        for packet in batch:
            scheduler.push(packet, 0.0)
        popped = 0
        while len(scheduler):
            if scheduler.pop(1.0) is not None:
                popped += 1
        assert popped == packets, f"{name} lost {packets - popped} packets"
        return 2 * packets

    return _best_of(run, repeats)


# --- end-to-end -------------------------------------------------------------


def bench_e2e_fig2_style(
    duration: float, seed: int = 1, repeats: int = 3
) -> tuple[int, float]:
    """Dumbbell + Poisson UDP + LSTF: the fig2-shaped end-to-end run.

    Ops are engine events processed, so the number is directly comparable
    with the engine microbenches and with ``events_per_sec`` in ordinary
    experiment artifacts.
    """
    from repro.topology.simple import build_dumbbell
    from repro.transport.udp import install_udp_flows
    from repro.workload.distributions import BoundedPareto
    from repro.workload.flows import PoissonWorkload, poisson_flows

    def run() -> int:
        reset_packet_ids()
        net = build_dumbbell(num_pairs=8)
        net.install_uniform(LstfScheduler)
        flows = poisson_flows(
            hosts=[h.name for h in net.hosts],
            sizes=BoundedPareto(1.2, 1500, 50_000),
            workload=PoissonWorkload(0.7, 50e6, duration=duration, seed=seed),
        )
        install_udp_flows(net, flows)
        net.run()
        return net.engine.events_processed

    return _best_of(run, repeats)


#: The engine-bench roster shared by the ``bench`` driver below and
#: ``benchmarks/perf/run_bench.py`` — one definition, two entry points,
#: so a bench added here automatically joins the BENCH_*.json trajectory.
ENGINE_BENCHES = (
    ("engine-chain", bench_engine_chain),
    ("engine-fan", bench_engine_fan),
    ("engine-defer", bench_engine_defer),
)


# --- sweep executors ---------------------------------------------------------


#: The executor variants ``bench_sweep_executor`` prices against each
#: other: ``run_many``'s three modes, plus ``"queue-batched"`` — the
#: queue executor at its default batch size.  The plain ``"queue"``
#: bench pins ``batch_size=1`` (the pre-batching per-job protocol), so
#: its trajectory stays comparable across PRs and the
#: ``sweep-queue-batched`` : ``sweep-queue`` ratio *is* the batch-claim
#: speedup.
SWEEP_EXECUTORS = RUN_MANY_EXECUTORS + ("queue-batched",)


def bench_sweep_executor(
    executor: str,
    seeds: int = 4,
    workers: int = 2,
    duration: float = 0.04,
    repeats: int = 1,
) -> tuple[int, float]:
    """One seed sweep through ``run_many`` under ``executor``.

    Measures executor *overhead*: the specs are identical across modes
    (a tiny Table-1 row sweep), ops are the summed deterministic
    ``engine_events`` of the gathered artifacts, and each repeat uses a
    fresh cache/queue directory so nothing is answered from disk.  The
    gap between ``sweep-queue`` and ``sweep-process`` is the price of
    durability: SQLite claims, leases, heartbeats, and artifact
    (de)serialisation through the shared store — and the gap between
    ``sweep-queue-batched`` and ``sweep-queue`` is how much of that
    price batch claims and persistent worker leases win back.

    Runs in the calling process only — do not call from inside a
    daemonised pool worker (children of daemons are forbidden).
    """
    import tempfile
    from pathlib import Path

    from repro.api.runner import run_many

    if executor not in SWEEP_EXECUTORS:
        raise ValueError(f"unknown sweep executor {executor!r}")
    specs = ExperimentSpec(
        "table1",
        duration=duration,
        seeds=tuple(range(1, seeds + 1)),
        options={"rows": (0,)},
    ).sweep()

    def run() -> int:
        with tempfile.TemporaryDirectory() as tmp:
            kwargs: dict = {"executor": executor}
            if executor == "queue":
                kwargs["queue_dir"] = Path(tmp) / "queue"
                kwargs["batch_size"] = 1  # the per-job protocol, unchanged
            elif executor == "queue-batched":
                kwargs["executor"] = "queue"  # default (batched) claims
                kwargs["queue_dir"] = Path(tmp) / "queue"
            artifacts = run_many(
                specs,
                workers=1 if executor == "serial" else workers,
                **kwargs,
            )
        return sum(a.metadata["engine_events"] for a in artifacts)

    return _best_of(run, repeats)


#: The two recording strategies ``bench_sweep_replay`` prices against
#: each other: ``"perleg"`` re-records the original schedule for every
#: replay-mode leg (independent ``run()`` calls, the pre-PR-4 cost
#: model); ``"once"`` runs the same legs through ``run_many``'s shared
#: schedule store (record once, replay many).
REPLAY_STRATEGIES = ("perleg", "once")


def bench_sweep_replay(
    strategy: str,
    modes: int = 3,
    duration: float = 0.04,
    repeats: int = 1,
) -> tuple[int, float]:
    """One replay-mode sweep, recorded per-leg or once (the PR-4 tentpole).

    The sweep is a single Table 1 scenario replayed under ``modes``
    candidate UPSes.  Ops are legs completed, so the
    ``sweep-replay-once`` : ``sweep-replay-perleg`` ops/sec ratio *is*
    the record-once speedup; it grows with the number of modes because
    per-leg pays one recording per mode and record-once pays exactly
    one.  Results are byte-identical between strategies (guarded by
    ``tests/experiments/test_record_once.py``); this bench prices the
    difference.
    """
    from repro.api.runner import run, run_many
    from repro.core.replay import REPLAY_MODES

    if strategy not in REPLAY_STRATEGIES:
        raise ValueError(f"unknown sweep-replay strategy {strategy!r}")
    mode_axis = tuple(m for m in REPLAY_MODES if m != "omniscient")[:modes]
    specs = ExperimentSpec(
        "table1",
        duration=duration,
        options={"rows": (0,)},
        replay_modes=mode_axis,
    ).sweep()

    def run_sweep() -> int:
        if strategy == "once":
            run_many(specs)  # serial, sharing a sweep-scoped schedule store
        else:
            for spec in specs:  # independent runs: one recording per leg
                run(spec)
        return len(specs)

    return _best_of(run_sweep, repeats)


#: The two warm-up strategies ``bench_sweep_branch`` prices against each
#: other: ``"scratch"`` re-simulates the shared warm-up prefix for every
#: leg (independent ``run()`` calls, the pre-checkpoint cost model);
#: ``"many"`` runs the same legs through ``run_many``'s shared checkpoint
#: store (simulate once, branch many).
BRANCH_STRATEGIES = ("scratch", "many")


def bench_sweep_branch(
    strategy: str,
    legs: int = 16,
    warmup: float = 0.4,
    duration: float = 0.005,
    utilization: float = 0.2,
    repeats: int = 1,
) -> tuple[int, float]:
    """One branch seed sweep, warmed up per-leg or once (the checkpoint
    tentpole).

    The sweep is ``legs`` seeds of the ``branch`` experiment sharing one
    warm-up prefix.  Ops are legs completed, so the ``sweep-branch-many``
    : ``sweep-branch-scratch`` ops/sec ratio *is* the
    simulate-once/branch-many speedup; it grows with ``warmup/duration``
    because scratch pays the prefix once per leg and many pays it once
    per sweep (plus a cheap pickle round trip per leg).  The default
    shape keeps utilization low on purpose: near-empty standing queues
    at the branch point mean the per-leg cost is the restore, not a
    backlog drain both strategies would pay equally — the regime the
    checkpoint exists for.  Results are byte-identical between
    strategies (guarded by ``tests/experiments/test_branch.py``); this
    bench prices the difference.
    """
    from repro.api.runner import run, run_many

    if strategy not in BRANCH_STRATEGIES:
        raise ValueError(f"unknown sweep-branch strategy {strategy!r}")
    specs = ExperimentSpec(
        "branch",
        duration=duration,
        seeds=tuple(range(1, legs + 1)),
        utilization=utilization,
        schedulers=("fq",),
        options={"warmup": warmup},
    ).sweep()

    def run_sweep() -> int:
        if strategy == "many":
            run_many(specs)  # serial, sharing a sweep-scoped checkpoint store
        else:
            for spec in specs:  # independent runs: one warm-up per leg
                run(spec)
        return len(specs)

    return _best_of(run_sweep, repeats)


#: The two recovery strategies ``bench_sweep_resume`` prices against
#: each other after a preemption: ``"scratch"`` re-simulates every
#: killed leg from t=0 (the pre-policy cost model); ``"resumed"`` runs
#: the same legs with a checkpoint policy armed, so each retry
#: fast-forwards from the mid-run snapshot its killed attempt left
#: behind.
RESUME_STRATEGIES = ("scratch", "resumed")


def _preempt_leg(spec: ExperimentSpec, out_dir: str, policy: str,
                 kill_after: int) -> None:
    """Child-process target: run one leg, SIGKILL it mid-simulation.

    Snapshot recording is hooked so the process dies right after its
    ``kill_after``-th mid-run snapshot lands — the same fault model the
    resume test harness uses, here building the preempted state the
    timed strategies recover from.  Module-level so multiprocessing can
    pickle it.
    """
    import os
    import signal

    from repro.api.runner import run
    from repro.sim import resume

    original = resume.ResumeSession._record
    state = {"count": 0}

    def record_then_die(self, network, prefix, index):
        original(self, network, prefix, index)
        state["count"] += 1
        if state["count"] >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    resume.ResumeSession._record = record_then_die
    run(spec, out_dir=out_dir, checkpoint_policy=policy)


def bench_sweep_resume(
    strategy: str,
    legs: int = 16,
    duration: float = 0.5,
    utilization: float = 0.2,
    warmup: float = 0.05,
    kill_after: int = 9,
    repeats: int = 1,
) -> tuple[int, float]:
    """One preempted seed sweep, recovered from scratch or from snapshots
    (the preemption-safe-resume tentpole).

    The untimed pre-pass runs every leg in a real child process with a
    checkpoint policy armed and SIGKILLs it at roughly
    ``kill_after/(kill_after+1)`` progress (the snapshot cadence is
    calibrated from the probe legs' deterministic event counts), leaving
    a store full of near-complete mid-run snapshots and no artifacts.
    The timed phase then completes the sweep: ``"scratch"`` without a
    policy, so every leg re-simulates from t=0; ``"resumed"`` with the
    policy, so every leg fast-forwards from its snapshot and only pays
    the tail (plus the tail's own snapshot upkeep).  Ops are legs
    completed, so the ``sweep-resume-resumed`` :
    ``sweep-resume-scratch`` ops/sec ratio *is* what mid-run
    checkpointing saves a preempted sweep.

    The sweep shape is the ``branch`` experiment at a long horizon and
    low utilization: lots of events over a *small* live graph, which is
    exactly where resume pays — snapshot and restore cost scale with
    state size, the saved work scales with events.  (It also makes the
    preempted legs share a warm-up checkpoint, so the bench prices
    resume composed with the simulate-once store, as shipped.)  Results
    are byte-identical between strategies (guarded by
    ``tests/cluster/test_resume_points.py``); this bench prices the
    difference.
    """
    import multiprocessing
    import shutil
    import tempfile
    from pathlib import Path

    from repro.api.runner import run, run_many

    if strategy not in RESUME_STRATEGIES:
        raise ValueError(f"unknown sweep-resume strategy {strategy!r}")
    specs = ExperimentSpec(
        "branch",
        duration=duration,
        seeds=tuple(range(1, legs + 1)),
        utilization=utilization,
        schedulers=("fq",),
        options={"warmup": warmup},
    ).sweep()
    # Calibrate a snapshot cadence *per leg* from untimed probes: events
    # are deterministic per spec, so ``kill_after`` snapshots at
    # ``total/(kill_after+1)`` land every kill at the same fractional
    # progress regardless of how leg sizes vary.  (A shared cadence
    # would kill the longest leg early and hand its timed retry a fat
    # tail to re-simulate.)  Snapshot *discovery* is cadence-independent
    # — keys carry run id and phase entry state, not the policy — so the
    # timed run below still uses one policy for the whole sweep.
    totals = [run(spec).metadata["engine_events"] for spec in specs]
    intervals = [max(1, total // (kill_after + 1)) for total in totals]
    policy = f"{max(intervals)}ev"

    ctx = multiprocessing.get_context()
    with tempfile.TemporaryDirectory() as tmp:
        pre = Path(tmp) / "pre"
        pre.mkdir()
        for spec, every in zip(specs, intervals):
            proc = ctx.Process(
                target=_preempt_leg,
                args=(spec, str(pre), f"{every}ev", kill_after),
            )
            proc.start()
            proc.join(timeout=120.0)
            if proc.is_alive():  # pragma: no cover - hung child backstop
                proc.kill()
                proc.join()
        # A leg that outran its kill hook saved an artifact; drop any so
        # neither timed strategy is answered from the cache.
        for leftover in pre.glob("*.json"):
            leftover.unlink()

        # One pristine copy of the preempted state per repeat: the timed
        # function must never run against a directory a previous repeat
        # already healed (and pruned the snapshots of).
        outs = [Path(tmp) / f"out{i}" for i in range(max(1, repeats))]
        for out in outs:
            shutil.copytree(pre, out)
        remaining = iter(outs)

        def run_sweep() -> int:
            out = next(remaining)
            kwargs: dict = {}
            if strategy == "resumed":
                kwargs["checkpoint_policy"] = policy
            artifacts = run_many(specs, out_dir=out, **kwargs)
            return len(artifacts)

        return _best_of(run_sweep, repeats)


# --- observability overhead --------------------------------------------------


#: The two telemetry states the ``obs-*`` benches price against each
#: other.  ``"off"`` must track the uninstrumented trajectory — CI gates
#: the pre-existing ``engine-*`` / ``sweep-queue`` benches within 3% of
#: the PR-7 file, so the zero-allocation-when-off guard stays honest —
#: and the off/on gap is what full telemetry costs.
OBS_MODES = ("off", "on")


def bench_obs_engine(mode: str, events: int, repeats: int = 3) -> tuple[int, float]:
    """The ``engine-chain`` workload with engine-side telemetry off vs on.

    ``"on"`` arms what a ``REPRO_OBS=1`` run arms at the engine itself: a
    flight recorder noting every dispatched event, plus a periodic
    sampler riding the heap via :meth:`Engine.schedule_sample` at the
    metrics hub's default cadence.  Ops are the chain's own events either
    way — sampler firings are excluded from event accounting by design,
    so an off/on ops mismatch here would itself be a bug.
    """
    from repro.obs.flight import FlightRecorder

    if mode not in OBS_MODES:
        raise ValueError(f"unknown obs mode {mode!r}")

    def run() -> int:
        engine = Engine()
        count = events

        def tick() -> None:
            nonlocal count
            count -= 1
            if count:
                engine.schedule(1e-6, tick)

        if mode == "on":
            engine.flight = FlightRecorder()

            def sample() -> None:
                # A pure reader, as OBS-SAMPLER-PURE demands of every
                # sampler callback; re-arms only while work remains,
                # like the hub's tick.
                _ = engine.events_processed
                if engine.pending_events:
                    engine.schedule_sample(engine.now + 1e-3, sample)

            engine.schedule_sample(1e-3, sample)
        engine.schedule(0.0, tick)
        engine.run()
        return events

    return _best_of(run, repeats)


def bench_obs_sweep_queue(
    mode: str,
    seeds: int = 4,
    workers: int = 2,
    duration: float = 0.04,
    repeats: int = 1,
) -> tuple[int, float]:
    """The ``sweep-queue`` bench with ``REPRO_OBS`` off vs on.

    Toggles the same environment switch forked pool workers and queue
    drain workers honour, so ``"on"`` prices the full shipped stack —
    hub attach and periodic sampling in every worker, the per-job span
    log, and the armed flight recorder — on top of the broker overhead
    ``sweep-queue`` already measures.  Ops are the summed deterministic
    ``engine_events``, identical across modes by the byte-identity
    contract.
    """
    import os

    from repro.api.runner import OBS_ENV

    if mode not in OBS_MODES:
        raise ValueError(f"unknown obs mode {mode!r}")
    previous = os.environ.get(OBS_ENV)
    os.environ[OBS_ENV] = "1" if mode == "on" else "0"
    try:
        return bench_sweep_executor(
            "queue", seeds=seeds, workers=workers,
            duration=duration, repeats=repeats,
        )
    finally:
        if previous is None:
            os.environ.pop(OBS_ENV, None)
        else:
            os.environ[OBS_ENV] = previous


# --- the registered driver ---------------------------------------------------


@register_experiment(
    "bench",
    help="substrate micro-benchmarks: engine, schedulers, e2e throughput",
    options=("packets", "events", "repeats"),
    params=("duration", "seeds", "schedulers"),
)
def run_perf_bench(spec: ExperimentSpec):
    """One row per bench: ``(bench, scale, ops, seconds, ops_per_sec)``."""
    events = int(spec.option("events", 50_000))
    packets = int(spec.option("packets", 10_000))
    repeats = int(spec.option("repeats", 3))
    schedulers = spec.schedulers or DEFAULT_SCHEDULERS
    table = Table(
        ["bench", "scale", "ops", "seconds", "ops_per_sec"],
        title="Substrate benchmarks (higher ops/sec is better)",
    )

    def add(bench: str, scale: int, ops: int, seconds: float) -> None:
        rate = ops / seconds if seconds > 0 else 0.0
        table.add_row([bench, scale, ops, round(seconds, 6), round(rate, 1)])

    for bench, fn in ENGINE_BENCHES:
        ops, seconds = fn(events, repeats)
        add(bench, events, ops, seconds)
    for name in schedulers:
        ops, seconds = bench_scheduler_ops(name, packets, repeats)
        add(f"sched-{name}", packets, ops, seconds)
    ops, seconds = bench_e2e_fig2_style(spec.duration, spec.seed, repeats)
    add("e2e-fig2", int(round(spec.duration * 1e3)), ops, seconds)
    # The driver ran engines outside the runner's notion of "the run", so
    # report its own totals rather than whatever the wrapper would see.
    metadata = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "engine_events": ENGINE_PERF.events,
        "deterministic_rows": False,
    }
    return table, metadata
