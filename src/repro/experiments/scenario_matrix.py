"""The scenario matrix: declarative scenarios × schedulers × seeds.

Each leg simulates one registered :class:`~repro.scenarios.Scenario`
under each requested scheduler and reports the evaluation-methodology
staples: Jain's fairness index over per-flow delivered throughput and
per-link utilisation, both embedded (rounded, sorted) in the
:class:`~repro.api.results.RunArtifact` metadata so a gathered sweep
diffs byte-for-byte across executors.

The heavy axes live on the spec, not here: ``--scenarios a,b --seeds
1..8`` fans (scenario × seed) legs through :meth:`ExperimentSpec.sweep`
and any executor, while this driver loops only over schedulers within
one leg.
"""

from __future__ import annotations

import random

from repro.analysis.tables import Table
from repro.api.registry import register_experiment
from repro.api.spec import ExperimentSpec
from repro.errors import ConfigurationError
from repro.metrics.congestion import link_utilisation
from repro.metrics.fairness import artifact_fairness, flow_throughputs
from repro.scenarios import (
    Scenario,
    build_scenario_network,
    get_scenario,
    scenario_flows,
)
from repro.schedulers import make_scheduler, scheduler_names
from repro.transport.udp import install_udp_flows

__all__ = ["DEFAULT_SCHEDULERS", "run_scenario_leg"]

#: Schedulers a matrix leg compares when the spec does not pick its own:
#: the FIFO baseline, the fairness gold standard, and a size-aware queue.
DEFAULT_SCHEDULERS = ("fifo", "fq", "sjf")


def _scheduler_factory(name: str, seed: int, routers: frozenset[str]):
    """Per-port factory installing ``name`` on router ports only.

    Host uplinks keep their natural FIFO pacing (``None``), matching the
    other drivers; the ``random`` scheduler gets a seed-derived RNG so
    the leg stays deterministic.
    """
    rng = random.Random(seed)

    def factory(node: str, _neighbor: str):
        if node not in routers:
            return None
        if name == "random":
            return make_scheduler(name, rng=rng)
        return make_scheduler(name)

    return factory


def run_scenario_leg(
    scenario: Scenario,
    scheduler: str,
    seed: int,
    duration: float,
    bandwidth_scale: float,
) -> dict[str, object]:
    """Simulate one (scenario, scheduler, seed) cell of the matrix.

    Returns the cell's summary: flow counts, Jain's fairness index over
    per-flow throughput, and the per-link utilisation map — all already
    rounded for artifact embedding.
    """
    network = build_scenario_network(scenario, bandwidth_scale)
    routers = frozenset(r.name for r in network.routers)
    network.install_schedulers(_scheduler_factory(scheduler, seed, routers))
    flows = scenario_flows(scenario, seed=seed, duration=duration)
    install_udp_flows(network, flows)
    network.run()
    window = network.engine.now if network.engine.now > 0 else duration
    rates = flow_throughputs(network.tracer, [f.fid for f in flows], window)
    utilisation = link_utilisation(network.tracer, network.links, window)
    delivered = sum(1 for r in rates.values() if r > 0)
    return {
        "scheduler": scheduler,
        "flows": len(flows),
        "delivered": delivered,
        "jain": artifact_fairness(rates.values()),
        "max_utilisation": max(utilisation.values(), default=0.0),
        "link_utilisation": utilisation,
    }


@register_experiment(
    "scenario-matrix",
    help="scenario matrix: declarative scenarios x schedulers x seeds",
    params=("duration", "seeds", "schedulers", "scenarios", "bandwidth_scale"),
)
def _run_scenario_matrix(spec: ExperimentSpec) -> tuple[Table, dict]:
    scenario = get_scenario(spec.scenario)
    schedulers = spec.schedulers or DEFAULT_SCHEDULERS
    known = scheduler_names()
    unknown = [s for s in schedulers if s not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown scheduler(s) {unknown}; choose from {known}"
        )
    table = Table(
        ["scenario", "pattern", "scheduler", "seed", "flows", "delivered",
         "Jain", "max util"],
        title="Scenario matrix",
    )
    per_scheduler: dict[str, dict[str, object]] = {}
    for scheduler in schedulers:
        cell = run_scenario_leg(
            scenario, scheduler, spec.seed, spec.duration,
            spec.bandwidth_scale,
        )
        per_scheduler[scheduler] = cell
        table.add_row([
            scenario.name, scenario.pattern, scheduler, spec.seed,
            cell["flows"], cell["delivered"], cell["jain"],
            cell["max_utilisation"],
        ])
    return table, {
        "scenario": scenario.name,
        "pattern": scenario.pattern,
        "distribution": scenario.distribution,
        "topology": scenario.topology,
        "seed": spec.seed,
        "fairness": {s: c["jain"] for s, c in per_scheduler.items()},
        "link_utilisation": {
            s: c["link_utilisation"] for s, c in per_scheduler.items()
        },
    }
