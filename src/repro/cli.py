"""Command-line interface: regenerate any paper artefact from the shell.

Examples::

    python -m repro table1                   # all 14 Table 1 rows
    python -m repro table1 --rows 1 12 13    # a subset
    python -m repro fig1                     # delay-ratio quantiles
    python -m repro fig2                     # FCT comparison
    python -m repro fig3                     # tail latency
    python -m repro fig4                     # fairness convergence
    python -m repro gadgets                  # Figures 5/6/7 theorems
    python -m repro info                     # §5 quantisation extension
    python -m repro weighted                 # §3.3 weighted fairness

Shared flags: ``--duration`` (workload horizon, seconds), ``--seed``,
``--scale`` (bandwidth scale; 0.01 default, 1.0 = the paper's full
bandwidths — expect long runtimes).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.tables import Table

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--duration", type=float, default=0.2,
                        help="workload duration in simulated seconds")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.01,
                        help="bandwidth scale (1.0 = paper's full scale)")


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.replayability import run_replay, table1_scenarios

    scenarios = table1_scenarios(
        duration=args.duration, seed=args.seed, bandwidth_scale=args.scale
    )
    if args.rows:
        scenarios = [scenarios[i] for i in args.rows]
    table = Table(
        ["scenario", "packets", "overdue", "overdue > T"],
        title="Table 1 — LSTF replayability",
    )
    for scenario in scenarios:
        outcome = run_replay(scenario)
        table.add_row(
            [
                scenario.name,
                outcome.result.num_packets,
                outcome.fraction_overdue,
                outcome.fraction_overdue_beyond_t,
            ]
        )
        print(f"  done: {scenario.name}", file=sys.stderr)
    print(table.render())
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.experiments.replayability import ReplayScenario, run_replay

    table = Table(
        ["original", "p10", "p50", "p90", "p99", "frac <= 1"],
        title="Figure 1 — LSTF:original queueing delay ratio",
    )
    for scheduler in ("random", "fifo", "fq", "sjf", "lifo", "fq+fifo+"):
        scenario = ReplayScenario(
            name=f"fig1/{scheduler}", scheduler=scheduler,
            duration=args.duration, seed=args.seed, bandwidth_scale=args.scale,
        )
        ratios = run_replay(scenario).result.queueing_delay_ratios()
        q = np.quantile(ratios, [0.1, 0.5, 0.9, 0.99])
        table.add_row([scheduler, q[0], q[1], q[2], q[3],
                       float(np.mean(ratios <= 1.0 + 1e-9))])
    print(table.render())
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.fct import run_fct_experiment

    results = run_fct_experiment(
        duration=max(args.duration, 0.2), seed=args.seed, bandwidth_scale=args.scale
    )
    table = Table(["scheme", "flows", "mean FCT (s)"],
                  title="Figure 2 — mean flow completion time")
    for name, res in results.items():
        table.add_row([name, res.stats.completed, res.mean_fct])
    print(table.render())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.tail import run_tail_experiment

    results = run_tail_experiment(
        schemes=("fifo", "lstf-constant", "fifo+"),
        duration=max(args.duration, 0.2), seed=args.seed,
        bandwidth_scale=args.scale,
    )
    table = Table(["scheme", "mean (s)", "p99 (s)", "p99.9 (s)"],
                  title="Figure 3 — tail packet delays")
    for name, res in results.items():
        table.add_row([name, res.mean, res.p99, res.p999])
    print(table.render())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fairness import run_fairness_experiment

    results = run_fairness_experiment(seed=args.seed)
    table = Table(["scheme", "final Jain", "t(0.95) s"],
                  title="Figure 4 — convergence to fairness")
    for name, res in results.items():
        table.add_row([name, res.final_fairness, res.time_to_reach(0.95) or "never"])
    print(table.render())
    return 0


def _cmd_gadgets(_args: argparse.Namespace) -> int:
    from repro.theory.blackbox import blackbox_gadget
    from repro.theory.lstf_failure import lstf_three_congestion_gadget
    from repro.theory.priority_cycle import (
        all_priority_orderings_fail,
        priority_cycle_gadget,
    )

    table = Table(["construction", "claim", "holds"],
                  title="Appendix counter-examples")
    pc = priority_cycle_gadget()
    table.add_row(["Figure 6", "all static priority orderings fail",
                   all_priority_orderings_fail(pc)])
    table.add_row(["Figure 6", "LSTF replays perfectly", pc.replay("lstf").perfect])
    f7 = lstf_three_congestion_gadget()
    table.add_row(["Figure 7", "LSTF fails at 3 congestion points",
                   not f7.replay("lstf").perfect])
    table.add_row(["Figure 7", "omniscient replay perfect",
                   f7.replay("omniscient").perfect])
    lstf_both = all(blackbox_gadget(c).replay("lstf").perfect for c in (1, 2))
    omni_both = all(blackbox_gadget(c).replay("omniscient").perfect for c in (1, 2))
    table.add_row(["Figure 5", "LSTF fails at least one case", not lstf_both])
    table.add_row(["Figure 5", "omniscient passes both cases", omni_both])
    print(table.render())
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments.information import run_information_experiment
    from repro.experiments.replayability import ReplayScenario

    scenario = ReplayScenario(
        name="cli/info", duration=args.duration, seed=args.seed,
        bandwidth_scale=args.scale,
    )
    table = Table(["quantisation (T)", "overdue", "overdue > T", "max lateness (s)"],
                  title="§5 extension — replay vs information precision")
    for point in run_information_experiment(scenario=scenario):
        table.add_row([point.step_in_t, point.fraction_overdue,
                       point.fraction_overdue_beyond_t, point.max_lateness])
    print(table.render())
    return 0


def _cmd_weighted(args: argparse.Namespace) -> int:
    from repro.experiments.fairness import run_weighted_fairness_experiment

    table = Table(["scheme", "rates (Mbps, weights 1/2/4)", "weighted Jain"],
                  title="§3.3 extension — weighted fairness")
    for scheme in ("lstf", "fq"):
        achieved, _norm, res = run_weighted_fairness_experiment(
            weights=(1.0, 2.0, 4.0), scheme=scheme, seed=args.seed
        )
        rates = "/".join(f"{a / 1e6:.2f}" for a in achieved)
        table.add_row([scheme, rates, res.final_fairness])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from 'Universal Packet Scheduling' (NSDI 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="Table 1: LSTF replayability rows")
    p.add_argument("--rows", type=int, nargs="*", default=None,
                   help="row indices (0-based) to run; default all 14")
    _add_common(p)
    p.set_defaults(fn=_cmd_table1)

    for name, fn, needs_common in (
        ("fig1", _cmd_fig1, True),
        ("fig2", _cmd_fig2, True),
        ("fig3", _cmd_fig3, True),
        ("fig4", _cmd_fig4, True),
        ("gadgets", _cmd_gadgets, False),
        ("info", _cmd_info, True),
        ("weighted", _cmd_weighted, True),
    ):
        p = sub.add_parser(name, help=f"regenerate {name}")
        if needs_common:
            _add_common(p)
        p.set_defaults(fn=fn)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
