"""Command-line interface: regenerate any paper artefact from the shell.

Subcommands are generated from the experiment registry
(:mod:`repro.api.registry`), so a newly registered experiment appears
here with no CLI changes.  Examples::

    python -m repro list                     # what can I run?
    python -m repro run table1 --json        # generic dispatcher
    python -m repro run fig3 --seeds 1 2 3 --workers 3 --out artifacts/
    python -m repro table1 --rows 1 12 13    # legacy alias, still works
    python -m repro fig2                     # FCT comparison
    python -m repro gadgets                  # Figures 5/6/7 theorems

Distributed sweeps ride the same registry through the job queue of
:mod:`repro.cluster`::

    python -m repro submit fig3 --seeds 1 2 3 4 --queue runs/q   # enqueue
    python -m repro worker --queue runs/q &                      # N daemons
    python -m repro status --queue runs/q                        # watch
    python -m repro gather runs/q                                # collect
    python -m repro gc --queue runs/q                            # GC schedules
    python -m repro submit fig3 --seeds 1 2 3 4 --queue runs/q --wait
    python -m repro run fig3 --seeds 1 2 3 4 --executor queue --queue runs/q

Workers lease jobs in batches (``--batch-size``, default 4) under one
persistent worker lease, which amortises the broker's claim/heartbeat/
report cost across tiny jobs; ``--batch-size 1`` recovers the per-job
protocol.  ``repro gather QUEUE_DIR`` lets any process — not just the
submitter — block on a sweep and collect its artifacts; ``repro gc
--queue DIR`` prunes recorded schedules no live job needs.

Flags are honored exactly as given — a spec never lies about the run it
describes.  (One deliberate divergence from the pre-registry CLI: fig2
and fig3 used to clamp ``--duration`` up to 0.2 s silently; now the
requested duration runs as-is, and an unworkably small one fails with a
clean error.)

Shared flags: ``--duration`` (workload horizon, seconds), ``--seed`` /
``--seeds`` (a sweep; accepts ``1..8`` ranges and comma lists),
``--scale`` (bandwidth scale; 0.01 default, 1.0 = the paper's full
bandwidths — expect long runtimes), ``--schedulers`` (override an
experiment's scheme sweep), ``--replay-modes`` (a replay-mode sweep: one
run per candidate UPS, all legs sharing each recorded original schedule
— record once, replay many; see ``docs/replay.md``), ``--scenarios`` (a
declarative-scenario sweep for scenario-driven experiments; enumerate
with ``repro list --scenarios``, semantics in ``docs/scenarios.md``),
``--workers`` (parallel seed sweeps via
multiprocessing), ``--json`` / ``--csv`` (emit the RunArtifact or a CSV
table instead of ASCII), and ``--out DIR`` (persist artifacts as JSON
files).  ``--out`` doubles as a content-addressed cache keyed by the
spec's run-id: re-running the same spec answers from the saved artifact
(``--force`` re-simulates), and its ``schedules/`` subdirectory caches
recorded schedules the same way.

``repro bench`` (registered like any experiment) runs the substrate
micro-benchmarks of :mod:`repro.experiments.perf`; see
``benchmarks/perf/README.md`` for the trajectory workflow.

Three maintenance verbs round out the surface: ``repro record EXPERIMENT
--out PATH`` exports a record-once experiment's recorded schedule(s) as
standalone hash-verified trace files (:mod:`repro.core.trace_io`
format), ``repro checkpoint EXPERIMENT --at T --out PATH`` exports a
branchable experiment's warm-up checkpoint(s) in the
:mod:`repro.sim.checkpoint` format (the same files ``repro run --branch-from
DIR`` restores sweeps from; see ``docs/checkpointing.md``), and ``repro
lint [PATHS]`` runs the determinism/concurrency analyzer of
:mod:`repro.lintkit` (rule catalogue: ``docs/determinism.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.tables import Table
from repro.api import EXECUTORS, REGISTRY, ExperimentSpec, run_many, spec_run_id
from repro.cluster.worker import DEFAULT_BATCH_SIZE
from repro.errors import ConfigurationError, ReproError

__all__ = ["main", "build_parser"]


# experiment flag -> the ExperimentSpec field it sets; flags whose field a
# driver does not declare in RegisteredExperiment.params are rejected, so
# `repro gadgets --duration 9` fails loudly instead of silently ignoring.
_FLAG_TO_PARAM = {
    "duration": "duration",
    "seed": "seeds",
    "seeds": "seeds",
    "scale": "bandwidth_scale",
    "schedulers": "schedulers",
    "slack": "slack_policy",
    "replay_modes": "replay_modes",
    "scenarios": "scenarios",
}


def _expand_seeds(tokens: Sequence[object]) -> tuple[int, ...]:
    """Expand seed tokens: ``7``, ``"3"``, ``"1..8"`` (inclusive), ``"1,5"``.

    ``--seeds 1 2 3``, ``--seeds 1..8`` and ``--seeds 1,2,5..7`` all work;
    ranges keep sweep invocations readable at scale.
    """
    seeds: list[int] = []
    for token in tokens:
        for part in str(token).split(","):
            if not part:
                continue
            lo, sep, hi = part.partition("..")
            try:
                if sep:
                    first, last = int(lo), int(hi)
                    if last < first:
                        raise ConfigurationError(
                            f"seed range {part!r} runs backwards"
                        )
                    seeds.extend(range(first, last + 1))
                else:
                    seeds.append(int(part))
            except ValueError:
                raise ConfigurationError(
                    f"bad seed token {part!r}: expected an integer, "
                    f"'A..B', or a comma list"
                ) from None
    return tuple(seeds)


def _add_spec_args(parser: argparse.ArgumentParser, with_rows: bool) -> None:
    """Flags that shape the :class:`ExperimentSpec` itself."""
    parser.add_argument("--duration", type=float, default=None,
                        help="workload duration in simulated seconds "
                             "(default 0.2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default 1)")
    parser.add_argument("--seeds", nargs="+", default=None, metavar="SEED",
                        help="seed sweep (one run per seed; overrides "
                             "--seed); accepts integers, 'A..B' inclusive "
                             "ranges, and comma lists, e.g. --seeds 1..8")
    parser.add_argument("--scale", type=float, default=None,
                        help="bandwidth scale (default 0.01; 1.0 = paper's "
                             "full scale)")
    parser.add_argument("--schedulers", nargs="+", default=None, metavar="NAME",
                        help="override the experiment's scheduler/scheme sweep")
    parser.add_argument("--slack", default=None, metavar="POLICY",
                        help="LSTF slack policy override, e.g. 'constant:0.5', "
                             "'flow-size:2', 'virtual-clock:1e6'")
    parser.add_argument("--replay-modes", nargs="+", default=None,
                        metavar="MODE", dest="replay_modes",
                        help="replay-mode sweep (one run per mode, sharing "
                             "each recorded schedule): lstf, lstf-preemptive, "
                             "edf, edf-preemptive, priority, omniscient")
    parser.add_argument("--scenarios", nargs="+", default=None, metavar="NAME",
                        help="scenario sweep (one run per registered "
                             "scenario; see `repro list --scenarios`); "
                             "accepts comma lists, e.g. "
                             "--scenarios websearch-incast,datamining-a2a")
    if with_rows:
        parser.add_argument("--rows", type=int, nargs="*", default=None,
                            help="row/scheme indices (0-based) to run, for "
                                 "experiments that declare a 'rows' option "
                                 "(table1, fig2, ...); default all")


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    """Flags that shape how gathered artifacts are rendered."""
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", dest="as_json",
                     help="print the structured RunArtifact as JSON "
                          "(an array when sweeping seeds)")
    fmt.add_argument("--csv", action="store_true", dest="as_csv",
                     help="print the result table as CSV (tables "
                          "concatenated when sweeping seeds)")


def _add_experiment_args(parser: argparse.ArgumentParser, with_rows: bool) -> None:
    _add_spec_args(parser, with_rows)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for seed sweeps (default: serial)")
    parser.add_argument("--executor", default=None, choices=EXECUTORS,
                        help="execution mode (default: serial, or process "
                             "when --workers > 1; queue needs --queue)")
    parser.add_argument("--queue", default=None, metavar="DIR",
                        help="job-queue directory for --executor queue "
                             "(implies it); local drain workers are spawned "
                             "and external `repro worker` daemons join in")
    parser.add_argument("--batch-size", type=int, default=None, metavar="N",
                        dest="batch_size",
                        help="with --executor queue: jobs each worker leases "
                             "per broker round trip (default 4; 1 = the "
                             "per-job protocol)")
    _add_output_args(parser)
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="persist each artifact under DIR; DIR doubles "
                             "as a content-addressed cache — a spec already "
                             "saved there is answered without simulating")
    parser.add_argument("--force", action="store_true",
                        help="with --out: re-simulate even when DIR already "
                             "holds this spec's artifact")
    parser.add_argument("--branch-from", default=None, metavar="DIR",
                        dest="branch_from",
                        help="checkpoint store directory to branch shared "
                             "warm-ups from (simulate once, branch many; "
                             "serial/process executors — queue workers use "
                             "the queue's own store)")
    parser.add_argument("--checkpoint-every", default=None, metavar="POLICY",
                        dest="checkpoint_every",
                        help="take mid-run snapshots so a killed run resumes "
                             "instead of restarting: comma-separated "
                             "'<seconds>[s]' (simulated seconds), '<n>ev' "
                             "(engine events), 'keep=<n>' (rolling depth), "
                             "e.g. '0.05s,5000ev,keep=3'; needs --out or "
                             "--branch-from for a durable store")


def spec_from_args(experiment: str, args: argparse.Namespace) -> ExperimentSpec:
    """Build the declarative spec an invocation describes."""
    if args.seeds:
        seeds = _expand_seeds(args.seeds)
    else:
        seeds = (args.seed,) if args.seed is not None else (1,)
    options: dict[str, object] = {}
    rows = getattr(args, "rows", None)
    if rows:  # a bare `--rows` (no indices) means "all rows", like before
        options["rows"] = tuple(rows)
    scenarios = tuple(
        name
        for token in (getattr(args, "scenarios", None) or ())
        for name in token.split(",")
        if name
    )
    return ExperimentSpec(
        experiment=experiment,
        schedulers=tuple(args.schedulers) if args.schedulers else (),
        duration=args.duration if args.duration is not None else 0.2,
        seeds=seeds,
        bandwidth_scale=args.scale if args.scale is not None else 0.01,
        slack_policy=args.slack,
        replay_modes=tuple(args.replay_modes) if args.replay_modes else (),
        scenarios=scenarios,
        options=options,
    )


def _reject_unused_flags(entry, args: argparse.Namespace) -> None:
    """Fail loudly when a flag names a spec field the driver ignores."""
    for flag, param in _FLAG_TO_PARAM.items():
        if getattr(args, flag, None) is not None and param not in entry.params:
            raise ConfigurationError(
                f"experiment {entry.name!r} does not use "
                f"--{flag.replace('_', '-')}"
            )


def _emit_artifacts(args: argparse.Namespace, artifacts: list) -> None:
    """Render gathered artifacts per the --json/--csv/ASCII choice."""
    if args.as_json:
        payloads = [a.to_dict() for a in artifacts]
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads,
                         indent=2))
    elif args.as_csv:
        for artifact in artifacts:
            print(artifact.table().to_csv(), end="")
    else:
        for artifact in artifacts:
            print(artifact.table().render())


def _sweep_specs(spec: ExperimentSpec) -> list[ExperimentSpec]:
    """Expand multi-valued scenario/seed/replay-mode axes, one spec per leg."""
    if (len(spec.seeds) > 1 or len(spec.replay_modes) > 1
            or len(spec.scenarios) > 1):
        return spec.sweep()
    return [spec]


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment = getattr(args, "experiment", None) or args.command
    try:
        # Validate the execution knobs before any simulation work: a raw
        # multiprocessing traceback is not an error message.
        if args.workers < 1:
            raise ConfigurationError(
                f"--workers must be >= 1, got {args.workers}"
            )
        if args.executor == "queue" and not args.queue:
            raise ConfigurationError("--executor queue needs --queue DIR")
        # Registry lookup up front so an unknown `run NAME` fails before
        # any simulation work, with the list of valid names.
        entry = REGISTRY.get(experiment)
        _reject_unused_flags(entry, args)
        spec = spec_from_args(experiment, args)
        artifacts = run_many(
            _sweep_specs(spec), workers=args.workers, out_dir=args.out,
            force=args.force, executor=args.executor, queue_dir=args.queue,
            batch_size=args.batch_size, checkpoint_dir=args.branch_from,
            checkpoint_policy=args.checkpoint_every,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        out = Path(args.out)
        for artifact in artifacts:
            verb = "cached" if artifact.from_cache else "wrote"
            print(f"{verb} {out / (artifact.run_id() + '.json')}",
                  file=sys.stderr)
    _emit_artifacts(args, artifacts)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Enqueue a sweep onto a job queue (workers run it, now or later)."""
    from repro.cluster import client

    try:
        entry = REGISTRY.get(args.experiment)
        _reject_unused_flags(entry, args)
        spec = spec_from_args(args.experiment, args)
        specs = _sweep_specs(spec)
        job_ids = client.submit(specs, args.queue, force=args.force,
                                max_attempts=args.max_attempts)
        for job_id, job_spec in zip(job_ids, specs):
            print(f"queued job {job_id}: {job_spec.experiment} "
                  f"seed={job_spec.seed} ({spec_run_id(job_spec)})",
                  file=sys.stderr)
        print(f"submitted {len(job_ids)} job(s) to {args.queue}; "
              f"run `repro worker --queue {args.queue}` to execute them",
              file=sys.stderr)
        if args.wait:
            artifacts = client.gather(args.queue, job_ids,
                                      timeout=args.timeout)
            _emit_artifacts(args, artifacts)
        else:
            print(json.dumps({"queue": str(args.queue), "jobs": job_ids}))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run a worker daemon against a queue directory."""
    from repro.cluster import JobQueue, Worker

    try:
        queue = JobQueue(args.queue)
        worker = Worker(queue, worker_id=args.id, lease_s=args.lease,
                        poll_s=args.poll, batch_size=args.batch_size,
                        checkpoint_policy=args.checkpoint_every)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker.install_signal_handlers()
    print(f"worker {worker.worker_id} serving {queue.queue_dir} "
          f"(lease {worker.lease_s:g}s, batch {worker.batch_size}, "
          f"{'drain' if args.drain else 'daemon'} mode)", file=sys.stderr)
    if args.drain:
        count = worker.drain(max_jobs=args.max_jobs)
    else:
        count = worker.serve(max_jobs=args.max_jobs)
    print(f"worker {worker.worker_id} exiting after {count} job(s)",
          file=sys.stderr)
    return 0


def _cmd_gather(args: argparse.Namespace) -> int:
    """Block until a queue's jobs are terminal and print their artifacts.

    The non-submitter's collection path: any process that can see the
    queue directory can gather a sweep, without holding the job ids the
    submitter printed (``--jobs`` narrows to a subset).
    """
    from repro.cluster import client

    try:
        job_ids = args.jobs
        if job_ids is None:
            job_ids = [job.id for job in client.status(args.queue).jobs]
            if not job_ids:
                raise ConfigurationError(
                    f"queue {args.queue} has no jobs to gather — nothing "
                    f"was submitted yet?"
                )
        artifacts = client.gather(args.queue, job_ids, timeout=args.timeout)
        if args.out:
            for artifact in artifacts:
                print(f"wrote {artifact.save(args.out)}", file=sys.stderr)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _emit_artifacts(args, artifacts)
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    """Prune recorded schedules and warm-up checkpoints no live job needs."""
    from repro.cluster import client

    try:
        removed, kept = client.prune_schedules(args.queue,
                                               dry_run=args.dry_run)
        ckpt_removed, ckpt_kept = client.prune_checkpoints(
            args.queue, dry_run=args.dry_run)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    verb = "would remove" if args.dry_run else "removed"
    for key in (*removed, *ckpt_removed):
        print(f"{verb} {key}", file=sys.stderr)
    print(f"{verb} {len(removed)} schedule(s), kept {len(kept)} in use "
          f"({args.queue})")
    print(f"{verb} {len(ckpt_removed)} checkpoint(s), kept "
          f"{len(ckpt_kept)} in use ({args.queue})")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    """Snapshot a queue: per-state counts and one row per job."""
    from repro.cluster import client

    try:
        snapshot = client.status(args.queue, job_ids=args.jobs,
                                 events=args.events)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(snapshot.to_dict(), indent=2))
    else:
        print(snapshot.render())
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    """Print (and follow) a queue's structured event log."""
    from repro.cluster import JobQueue
    from repro.obs.events import follow_events, format_event, read_events

    try:
        JobQueue(args.queue, create=False)  # typo'd path -> clean error
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    printed = 0
    for event in read_events(args.queue, limit=args.lines):
        print(format_event(event))
        printed += 1
    if args.once:
        if not printed:
            # A queue that exists but has not logged yet (no events.jsonl,
            # or an empty one) is not an error — say so instead of exiting
            # in silence that looks like a crash.
            print(f"no events in {args.queue}")
        return 0
    try:
        for event in follow_events(args.queue):
            print(format_event(event), flush=True)
    except KeyboardInterrupt:
        pass
    return 0


def _run_profiled(specs: list, hub) -> tuple[int, float]:
    """Run a profile's legs serially into one shared hub; returns
    ``(engine_events, wall_seconds)`` totals."""
    from repro.api.runner import run

    events = 0
    wall = 0.0
    for leg in specs:
        artifact = run(leg, obs=hub)
        events += int(artifact.metadata.get("engine_events", 0))
        wall += artifact.wall_time_s
    return events, wall


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run an experiment under full telemetry and print the breakdown.

    All legs run serially in-process under one shared
    :class:`~repro.obs.hub.MetricsHub` + flight recorder, with phase
    spans enabled — profiling trades parallelism for attribution.
    """
    from repro.obs.flight import FlightRecorder
    from repro.obs.hub import MetricsHub
    from repro.obs.spans import SPANS, write_chrome_trace

    try:
        entry = REGISTRY.get(args.experiment)
        _reject_unused_flags(entry, args)
        spec = spec_from_args(args.experiment, args)
        specs = _sweep_specs(spec)
        hub = MetricsHub(flight=FlightRecorder(capacity=1024))
        SPANS.clear()
        SPANS.enable()
        try:
            events, wall = _run_profiled(specs, hub)
        finally:
            SPANS.disable()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    breakdown = SPANS.breakdown()
    rate = events / wall if wall > 0 else 0.0
    top = hub.flight.top(args.top)
    if args.trace:
        write_chrome_trace(args.trace, SPANS.records)
        print(f"wrote {args.trace} ({len(SPANS.records)} span(s)) — "
              f"load in Perfetto or chrome://tracing", file=sys.stderr)
    if args.as_json:
        print(json.dumps({
            "experiment": args.experiment,
            "legs": len(specs),
            "engine_events": events,
            "wall_time_s": wall,
            "events_per_sec": rate,
            "phases": [{"name": n, "seconds": s} for n, s in breakdown],
            "top_callbacks": [{"name": n, "events": c} for n, c in top],
            "obs": hub.summary(),
        }, indent=2))
        return 0
    total = sum(s for _, s in breakdown) or 1.0
    table = Table(["phase", "seconds", "share"],
                  title=f"repro profile {args.experiment} — "
                        f"{len(specs)} leg(s)")
    for name, seconds in breakdown:
        table.add_row([name, f"{seconds:.4f}", f"{100 * seconds / total:.1f}%"])
    print(table.render())
    print(f"engine events: {events}  ({rate:,.0f} events/s wall)")
    if top:
        attribution = Table(["callback", "events", "share"],
                            title="top callbacks (flight recorder)")
        for name, count in top:
            attribution.add_row(
                [name, count, f"{100 * count / max(events, 1):.1f}%"])
        print(attribution.render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Export spans as Chrome trace-event JSON (queue or experiment mode)."""
    from repro.obs.spans import SPANS, read_span_records, write_chrome_trace

    try:
        target = Path(args.target)
        if target.is_dir():
            records = read_span_records(target)
            if not records:
                raise ConfigurationError(
                    f"{target} has no span records (spans.jsonl) — workers "
                    f"write one per executed job; run the queue first"
                )
        else:
            entry = REGISTRY.get(args.target)
            _reject_unused_flags(entry, args)
            specs = _sweep_specs(spec_from_args(args.target, args))
            SPANS.clear()
            SPANS.enable()
            try:
                _run_profiled(specs, hub=None)
            finally:
                SPANS.disable()
            records = list(SPANS.records)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    write_chrome_trace(args.out, records)
    print(f"wrote {args.out} ({len(records)} span(s)) — load in Perfetto "
          f"or chrome://tracing", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the determinism/concurrency analyzer (see docs/determinism.md).

    Exit codes follow lint convention: 0 clean, 1 unsuppressed findings,
    2 usage/configuration error — so CI can distinguish "the tree is
    dirty" from "the invocation is broken".
    """
    from repro.lintkit import JSON_SCHEMA_VERSION, lint_paths, load_baseline
    from repro.lintkit.rules import load_rules

    try:
        if args.list_rules:
            rules = load_rules()
            if args.format == "json":
                print(json.dumps(
                    {"version": JSON_SCHEMA_VERSION,
                     "rules": [rules[rid].to_dict() for rid in sorted(rules)]},
                    indent=2))
            else:
                table = Table(["rule", "scopes", "summary"],
                              title="repro lint rules")
                for rule_id in sorted(rules):
                    rule = rules[rule_id]
                    table.add_row([rule.id, ",".join(rule.scopes),
                                   rule.summary])
                print(table.render())
            return 0
        baseline = load_baseline(args.baseline) if args.baseline else None
        report = lint_paths(args.paths or ["src"], baseline=baseline)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render(verbose=args.verbose))
    return 0 if report.clean else 1


def _cmd_record(args: argparse.Namespace) -> int:
    """Export an experiment's recorded schedule(s) as standalone traces.

    The written files are the hash-verified format of
    :mod:`repro.core.trace_io`: ``repro record table1 --out trace.json``
    then ``load_schedule("trace.json")`` anywhere, with no queue, store,
    or registry in sight.
    """
    from repro.core.trace_io import load_schedule, save_schedule

    try:
        entry = REGISTRY.get(args.experiment)
        if entry.recordings is None:
            raise ConfigurationError(
                f"experiment {entry.name!r} records no replayable "
                f"schedules — only record-once/replay-many experiments "
                f"(a registered `recordings` hook) can be exported"
            )
        _reject_unused_flags(entry, args)
        spec = spec_from_args(args.experiment, args)
        recorders = entry.recordings(spec)
        if not recorders:
            raise ConfigurationError(
                f"spec for {entry.name!r} yields no recordings "
                f"(empty sweep?)"
            )
        out = Path(args.out)
        single_file = out.suffix in (".json", ".gz")
        if single_file and len(recorders) > 1:
            raise ConfigurationError(
                f"spec yields {len(recorders)} recordings but --out "
                f"{args.out} names a single file; pass a directory, or "
                f"narrow the spec (e.g. --rows N, one seed)"
            )
        if not single_file:
            out.mkdir(parents=True, exist_ok=True)
        for key in sorted(recorders):
            schedule = recorders[key]()
            path = out if single_file else out / f"{key}.json"
            save_schedule(schedule, path)
            load_schedule(path)  # verify the round trip before reporting
            print(f"wrote {path} ({key}: {len(schedule)} "
                  f"packet record(s))", file=sys.stderr)
        print(json.dumps({"experiment": entry.name,
                          "recordings": sorted(recorders),
                          "out": str(out)}))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Export an experiment's warm-up checkpoint(s) as standalone files.

    The written files are the hash-verified format of
    :mod:`repro.sim.checkpoint`: ``repro checkpoint branch --at 0.05 --out
    warm.ckpt`` then ``load_checkpoint("warm.ckpt")`` anywhere — or drop
    the file into a directory and hand it to ``repro run --branch-from``.
    """
    from repro.sim.checkpoint import load_checkpoint, save_checkpoint

    try:
        entry = REGISTRY.get(args.experiment)
        if entry.checkpoints is None:
            raise ConfigurationError(
                f"experiment {entry.name!r} has no branchable warm-up — "
                f"only simulate-once/branch-many experiments (a registered "
                f"`checkpoints` hook) can be checkpointed"
            )
        _reject_unused_flags(entry, args)
        spec = spec_from_args(args.experiment, args)
        if args.at is not None:
            if "warmup" not in entry.options:
                raise ConfigurationError(
                    f"experiment {entry.name!r} has no warm-up horizon; "
                    f"--at does not apply"
                )
            spec = spec.with_(
                options={**dict(spec.options), "warmup": args.at})
        builders = entry.checkpoints(spec)
        if not builders:
            raise ConfigurationError(
                f"spec for {entry.name!r} yields no checkpoints "
                f"(empty sweep?)"
            )
        out = Path(args.out)
        single_file = out.suffix == ".ckpt"
        if single_file and len(builders) > 1:
            raise ConfigurationError(
                f"spec yields {len(builders)} checkpoints but --out "
                f"{args.out} names a single file; pass a directory, or "
                f"narrow the spec (one scheduler, one warm-up)"
            )
        if not single_file:
            out.mkdir(parents=True, exist_ok=True)
        for key in sorted(builders):
            snapshot = builders[key]()
            path = out if single_file else out / f"{key}.ckpt"
            save_checkpoint(snapshot, path)
            load_checkpoint(path)  # verify the round trip before reporting
            print(f"wrote {path} ({key}: t={snapshot.time:g}, "
                  f"{snapshot.engine_events} engine event(s))",
                  file=sys.stderr)
        print(json.dumps({"experiment": entry.name,
                          "checkpoints": sorted(builders),
                          "out": str(out)}))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "scenarios", False):
        from repro.scenarios import SCENARIOS

        table = Table(["scenario", "pattern", "distribution", "topology"],
                      title="Registered scenarios")
        for scenario in SCENARIOS.entries():
            table.add_row([scenario.name, scenario.pattern,
                           scenario.distribution, scenario.topology])
        print(table.render())
        return 0
    table = Table(["experiment", "description"], title="Registered experiments")
    for entry in REGISTRY.entries():
        table.add_row([entry.name, entry.help])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from 'Universal Packet Scheduling' (NSDI 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list",
                       help="list registered experiments (or scenarios)")
    p.add_argument("--scenarios", action="store_true",
                   help="list registered scenarios instead of experiments")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="run any registered experiment by name")
    p.add_argument("experiment", help="a name from `repro list`")
    _add_experiment_args(p, with_rows=True)
    p.set_defaults(fn=_cmd_experiment)

    # -- the distributed trio: submit -> N x worker -> status/gather -------
    p = sub.add_parser(
        "submit",
        help="enqueue an experiment sweep onto a job queue (repro.cluster)")
    p.add_argument("experiment", help="a name from `repro list`")
    p.add_argument("--queue", required=True, metavar="DIR",
                   help="queue directory shared with the workers")
    _add_spec_args(p, with_rows=True)
    p.add_argument("--force", action="store_true",
                   help="re-simulate even when the queue's artifact cache "
                        "already holds a spec's result")
    p.add_argument("--max-attempts", type=int, default=None, metavar="N",
                   help="retry budget per job (default 3)")
    p.add_argument("--wait", action="store_true",
                   help="block until the sweep completes and print the "
                        "gathered artifacts (workers must be running)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="with --wait: give up after S seconds")
    _add_output_args(p)
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "worker",
        help="run a worker daemon: claim -> simulate -> ack until stopped")
    p.add_argument("--queue", required=True, metavar="DIR",
                   help="queue directory shared with the submitters")
    p.add_argument("--drain", action="store_true",
                   help="exit once the queue is quiescent instead of "
                        "polling forever")
    p.add_argument("--max-jobs", type=int, default=None, metavar="N",
                   help="exit after N jobs (default: unlimited)")
    p.add_argument("--lease", type=float, default=None, metavar="S",
                   help="job lease seconds; a worker dead this long has "
                        "its job reclaimed (default 30)")
    p.add_argument("--poll", type=float, default=0.2, metavar="S",
                   help="idle poll interval in seconds (default 0.2)")
    p.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
                   metavar="N", dest="batch_size",
                   help="jobs leased per broker round trip (default "
                        f"{DEFAULT_BATCH_SIZE}; 1 = the per-job protocol)")
    p.add_argument("--id", default=None, metavar="NAME",
                   help="worker identity (default host:pid)")
    p.add_argument("--checkpoint-every", default=None, metavar="POLICY",
                   dest="checkpoint_every",
                   help="take mid-run snapshots while executing jobs so a "
                        "preempted worker's retry resumes mid-run (same "
                        "grammar as `repro run --checkpoint-every`)")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "gather",
        help="block until a queue's jobs finish and print their artifacts")
    p.add_argument("queue", metavar="QUEUE_DIR",
                   help="queue directory to collect from (any process can "
                        "gather, not just the submitter)")
    p.add_argument("--jobs", type=int, nargs="+", default=None, metavar="ID",
                   help="only these job ids (default: every job in the queue)")
    p.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="give up after S seconds (default: wait forever)")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="also save each gathered artifact under DIR")
    _add_output_args(p)
    p.set_defaults(fn=_cmd_gather)

    p = sub.add_parser(
        "gc",
        help="prune recorded schedules and warm-up checkpoints no "
             "pending/running job still needs")
    p.add_argument("--queue", required=True, metavar="DIR",
                   help="queue directory whose schedule/checkpoint stores "
                        "to collect")
    p.add_argument("--dry-run", action="store_true", dest="dry_run",
                   help="report what would be removed without removing it")
    p.set_defaults(fn=_cmd_gc)

    p = sub.add_parser(
        "lint",
        help="run the determinism/concurrency analyzer over Python sources")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default: text)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="JSON baseline whose (path, rule, line) findings "
                        "are waived (e.g. lint-baseline.json)")
    p.add_argument("--list-rules", action="store_true", dest="list_rules",
                   help="print the rule registry instead of linting")
    p.add_argument("--verbose", action="store_true",
                   help="text format: also show suppressed findings")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "record",
        help="export an experiment's recorded schedule(s) as standalone "
             "hash-verified trace files")
    p.add_argument("experiment",
                   help="a record-once/replay-many experiment from "
                        "`repro list` (e.g. table1, fig1)")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output file (.json/.json.gz, single recording) "
                        "or directory (one <key>.json per recording)")
    _add_spec_args(p, with_rows=True)
    p.set_defaults(fn=_cmd_record)

    p = sub.add_parser(
        "checkpoint",
        help="export an experiment's warm-up checkpoint(s) as standalone "
             "hash-verified files")
    p.add_argument("experiment",
                   help="a simulate-once/branch-many experiment from "
                        "`repro list` (e.g. branch)")
    p.add_argument("--at", type=float, default=None, metavar="T",
                   help="warm-up horizon in simulated seconds "
                        "(overrides the experiment default)")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="output file (.ckpt, single checkpoint) or "
                        "directory (one <key>.ckpt per checkpoint)")
    _add_spec_args(p, with_rows=False)
    p.set_defaults(fn=_cmd_checkpoint)

    p = sub.add_parser(
        "status", help="snapshot a job queue: counts plus one row per job")
    p.add_argument("--queue", required=True, metavar="DIR")
    p.add_argument("--jobs", type=int, nargs="+", default=None, metavar="ID",
                   help="only these job ids (default: all)")
    p.add_argument("--events", type=int, default=0, metavar="N",
                   help="also show the last N records of the queue's "
                        "structured event log (claim/ack/fail/heartbeat/"
                        "lease-expiry/...)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the snapshot as JSON instead of a table")
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser(
        "tail",
        help="follow a queue's structured event log (tail -f semantics)")
    p.add_argument("queue", metavar="QUEUE_DIR",
                   help="queue directory whose events.jsonl to follow")
    p.add_argument("--lines", type=int, default=10, metavar="N",
                   help="existing records to print before following "
                        "(default 10)")
    p.add_argument("--once", action="store_true",
                   help="print the tail and exit instead of following")
    p.set_defaults(fn=_cmd_tail)

    p = sub.add_parser(
        "profile",
        help="run an experiment under full telemetry and print the "
             "phase/throughput/callback breakdown")
    p.add_argument("experiment", help="a name from `repro list`")
    _add_spec_args(p, with_rows=True)
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="also write the phase spans as Chrome trace-event "
                        "JSON (load in Perfetto / chrome://tracing)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="callbacks to show in the attribution table "
                        "(default 10)")
    p.add_argument("--json", action="store_true", dest="as_json",
                   help="emit the profile as JSON instead of tables")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "trace",
        help="export wall-clock spans as Chrome trace-event JSON: from a "
             "queue's spans.jsonl, or by running an experiment")
    p.add_argument("target", metavar="QUEUE_DIR|EXPERIMENT",
                   help="a queue directory (convert its per-job spans) or "
                        "an experiment name (run it with spans enabled)")
    p.add_argument("--out", default="trace.json", metavar="FILE",
                   help="output file (default trace.json)")
    _add_spec_args(p, with_rows=True)
    p.set_defaults(fn=_cmd_trace)

    # One legacy-style alias per registered experiment (`repro table1` ==
    # `repro run table1`), so existing invocations keep working.
    for entry in REGISTRY.entries():
        p = sub.add_parser(entry.name, help=entry.help or f"regenerate {entry.name}")
        _add_experiment_args(p, with_rows="rows" in entry.options)
        p.set_defaults(fn=_cmd_experiment, experiment=entry.name)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro list | head`); exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
