"""Command-line interface: regenerate any paper artefact from the shell.

Subcommands are generated from the experiment registry
(:mod:`repro.api.registry`), so a newly registered experiment appears
here with no CLI changes.  Examples::

    python -m repro list                     # what can I run?
    python -m repro run table1 --json        # generic dispatcher
    python -m repro run fig3 --seeds 1 2 3 --workers 3 --out artifacts/
    python -m repro table1 --rows 1 12 13    # legacy alias, still works
    python -m repro fig2                     # FCT comparison
    python -m repro gadgets                  # Figures 5/6/7 theorems

Flags are honored exactly as given — a spec never lies about the run it
describes.  (One deliberate divergence from the pre-registry CLI: fig2
and fig3 used to clamp ``--duration`` up to 0.2 s silently; now the
requested duration runs as-is, and an unworkably small one fails with a
clean error.)

Shared flags: ``--duration`` (workload horizon, seconds), ``--seed`` /
``--seeds`` (a sweep), ``--scale`` (bandwidth scale; 0.01 default, 1.0 =
the paper's full bandwidths — expect long runtimes), ``--schedulers``
(override an experiment's scheme sweep), ``--workers`` (parallel seed
sweeps via multiprocessing), ``--json`` / ``--csv`` (emit the RunArtifact
or a CSV table instead of ASCII), and ``--out DIR`` (persist artifacts as
JSON files).  ``--out`` doubles as a content-addressed cache keyed by the
spec's run-id: re-running the same spec answers from the saved artifact
(``--force`` re-simulates).

``repro bench`` (registered like any experiment) runs the substrate
micro-benchmarks of :mod:`repro.experiments.perf`; see
``benchmarks/perf/README.md`` for the trajectory workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.tables import Table
from repro.api import REGISTRY, ExperimentSpec, run, run_many
from repro.errors import ConfigurationError, ReproError

__all__ = ["main", "build_parser"]


# experiment flag -> the ExperimentSpec field it sets; flags whose field a
# driver does not declare in RegisteredExperiment.params are rejected, so
# `repro gadgets --duration 9` fails loudly instead of silently ignoring.
_FLAG_TO_PARAM = {
    "duration": "duration",
    "seed": "seeds",
    "seeds": "seeds",
    "scale": "bandwidth_scale",
    "schedulers": "schedulers",
    "slack": "slack_policy",
}


def _add_experiment_args(parser: argparse.ArgumentParser, with_rows: bool) -> None:
    parser.add_argument("--duration", type=float, default=None,
                        help="workload duration in simulated seconds "
                             "(default 0.2)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload RNG seed (default 1)")
    parser.add_argument("--seeds", type=int, nargs="+", default=None,
                        help="seed sweep (one run per seed; overrides --seed)")
    parser.add_argument("--scale", type=float, default=None,
                        help="bandwidth scale (default 0.01; 1.0 = paper's "
                             "full scale)")
    parser.add_argument("--schedulers", nargs="+", default=None, metavar="NAME",
                        help="override the experiment's scheduler/scheme sweep")
    parser.add_argument("--slack", default=None, metavar="POLICY",
                        help="LSTF slack policy override, e.g. 'constant:0.5', "
                             "'flow-size:2', 'virtual-clock:1e6'")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for seed sweeps (default: serial)")
    fmt = parser.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true", dest="as_json",
                     help="print the structured RunArtifact as JSON "
                          "(an array when sweeping seeds)")
    fmt.add_argument("--csv", action="store_true", dest="as_csv",
                     help="print the result table as CSV (tables "
                          "concatenated when sweeping seeds)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="persist each artifact under DIR; DIR doubles "
                             "as a content-addressed cache — a spec already "
                             "saved there is answered without simulating")
    parser.add_argument("--force", action="store_true",
                        help="with --out: re-simulate even when DIR already "
                             "holds this spec's artifact")
    if with_rows:
        parser.add_argument("--rows", type=int, nargs="*", default=None,
                            help="row indices (0-based) to run, table1 only; "
                                 "default all 14")


def spec_from_args(experiment: str, args: argparse.Namespace) -> ExperimentSpec:
    """Build the declarative spec an invocation describes."""
    if args.seeds:
        seeds = tuple(args.seeds)
    else:
        seeds = (args.seed,) if args.seed is not None else (1,)
    options: dict[str, object] = {}
    rows = getattr(args, "rows", None)
    if rows:  # a bare `--rows` (no indices) means "all rows", like before
        options["rows"] = tuple(rows)
    return ExperimentSpec(
        experiment=experiment,
        schedulers=tuple(args.schedulers) if args.schedulers else (),
        duration=args.duration if args.duration is not None else 0.2,
        seeds=seeds,
        bandwidth_scale=args.scale if args.scale is not None else 0.01,
        slack_policy=args.slack,
        options=options,
    )


def _reject_unused_flags(entry, args: argparse.Namespace) -> None:
    """Fail loudly when a flag names a spec field the driver ignores."""
    for flag, param in _FLAG_TO_PARAM.items():
        if getattr(args, flag, None) is not None and param not in entry.params:
            raise ConfigurationError(
                f"experiment {entry.name!r} does not use --{flag}"
            )


def _cmd_experiment(args: argparse.Namespace) -> int:
    experiment = getattr(args, "experiment", None) or args.command
    try:
        # Registry lookup up front so an unknown `run NAME` fails before
        # any simulation work, with the list of valid names.
        entry = REGISTRY.get(experiment)
        _reject_unused_flags(entry, args)
        spec = spec_from_args(experiment, args)
        if len(spec.seeds) > 1:
            artifacts = run_many(spec.sweep(), workers=args.workers,
                                 out_dir=args.out, force=args.force)
        else:
            artifacts = [run(spec, out_dir=args.out, force=args.force)]
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        out = Path(args.out)
        for artifact in artifacts:
            verb = "cached" if artifact.from_cache else "wrote"
            print(f"{verb} {out / (artifact.run_id() + '.json')}",
                  file=sys.stderr)
    if args.as_json:
        payloads = [a.to_dict() for a in artifacts]
        print(json.dumps(payloads[0] if len(payloads) == 1 else payloads,
                         indent=2))
    elif args.as_csv:
        for artifact in artifacts:
            print(artifact.table().to_csv(), end="")
    else:
        for artifact in artifacts:
            print(artifact.table().render())
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    table = Table(["experiment", "description"], title="Registered experiments")
    for entry in REGISTRY.entries():
        table.add_row([entry.name, entry.help])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artefacts from 'Universal Packet Scheduling' (NSDI 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list every registered experiment")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("run", help="run any registered experiment by name")
    p.add_argument("experiment", help="a name from `repro list`")
    _add_experiment_args(p, with_rows=True)
    p.set_defaults(fn=_cmd_experiment)

    # One legacy-style alias per registered experiment (`repro table1` ==
    # `repro run table1`), so existing invocations keep working.
    for entry in REGISTRY.entries():
        p = sub.add_parser(entry.name, help=entry.help or f"regenerate {entry.name}")
        _add_experiment_args(p, with_rows=entry.name == "table1")
        p.set_defaults(fn=_cmd_experiment, experiment=entry.name)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro list | head`); exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
