"""Open-loop UDP sources.

A UDP flow's segments all become available at the flow's start time; the
source host's uplink port then clocks them out back to back, exactly like
an ns-2 CBR/UDP source at line rate.  This open-loop behaviour is what
makes the §2 replay experiments well-posed: the packet arrival process
``{(p, i(p), path(p))}`` is identical in the original and replayed runs
because nothing feeds back from the network to the senders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.flow import Flow
from repro.core.heuristics import SlackPolicy
from repro.core.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = ["UdpSource", "install_udp_flows"]


class UdpSource:
    """Injects one flow's segments at its start time."""

    def __init__(
        self,
        network: "Network",
        flow: Flow,
        slack_policy: SlackPolicy | None = None,
    ) -> None:
        self._network = network
        self._flow = flow
        self._slack_policy = slack_policy
        network.engine.schedule_at(flow.start, self._emit)

    def _emit(self) -> None:
        flow = self._flow
        network = self._network
        host = network.host(flow.src)
        now = network.engine.now
        remaining = flow.size
        offset = 0
        for size in flow.segment_sizes():
            packet = Packet(
                flow_id=flow.fid,
                size=size,
                src=flow.src,
                dst=flow.dst,
                created=now,
                seq=offset,
            )
            packet.flow_size = flow.size
            packet.remaining_flow = remaining
            if self._slack_policy is not None:
                self._slack_policy.assign(packet, flow, now)
            host.inject(packet)
            offset += size
            remaining -= size


def install_udp_flows(
    network: "Network",
    flows: Sequence[Flow],
    slack_policy: SlackPolicy | None = None,
) -> list[UdpSource]:
    """Attach a :class:`UdpSource` for every flow.  Returns the sources."""
    return [UdpSource(network, flow, slack_policy) for flow in flows]
