"""A simplified TCP Reno for the closed-loop experiments (§3).

The FCT (Figure 2) and fairness (Figure 4) experiments need realistic
window dynamics, not a full TCP stack.  This implementation provides the
pieces those comparisons actually exercise:

* slow start / congestion avoidance with an EWMA RTT estimator,
* cumulative ACKs (one per data segment, no delayed ACKs),
* fast retransmit on three duplicate ACKs with multiplicative decrease,
* retransmission timeout with exponential backoff back to slow start.

Simplifications relative to RFC 5681 (documented here so the scope is
explicit): no fast-recovery window inflation, no SACK, no receive-window
limit, no Nagle, byte-counting approximated by segment counting.  None of
these affect the *shape* of the comparisons the paper draws — they change
when losses are detected, not how schedulers order packets.

Slack/priority headers: data segments go through the experiment's
:class:`~repro.core.heuristics.SlackPolicy`; ACKs always get zero slack
(and priority), keeping the lightly loaded reverse path from distorting
the forward-path comparison.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.core.flow import Flow
from repro.core.heuristics import SlackPolicy
from repro.core.packet import Packet
from repro.units import ACK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = ["TcpReceiver", "TcpSender", "TcpStats", "install_tcp_flows"]


class TcpStats:
    """Completion times and progress counters for a set of TCP flows."""

    def __init__(self) -> None:
        self.fct: dict[int, float] = {}
        self.start: dict[int, float] = {}
        self.flow_size: dict[int, int] = {}
        self.retransmissions: dict[int, int] = {}

    def record_start(self, flow: Flow) -> None:
        self.start[flow.fid] = flow.start
        self.flow_size[flow.fid] = flow.size
        self.retransmissions.setdefault(flow.fid, 0)

    def record_completion(self, fid: int, now: float) -> None:
        if fid not in self.fct:
            self.fct[fid] = now - self.start[fid]

    @property
    def completed(self) -> int:
        return len(self.fct)

    def mean_fct(self) -> float:
        if not self.fct:
            raise ValueError("no flows completed")
        return sum(self.fct.values()) / len(self.fct)


class TcpSender:
    """Reno-style sender for one flow."""

    INITIAL_CWND = 2.0
    INITIAL_SSTHRESH = 1e9
    MIN_CWND = 1.0
    DUPACK_THRESHOLD = 3
    #: RTO is clamped to [min_rto, MAX_RTO_FACTOR * min_rto]; congested-run
    #: RTT samples otherwise inflate the estimator and strand a flow for
    #: tens of simulated seconds after a burst loss.
    MAX_RTO_FACTOR = 20.0
    RTO_BACKOFF_CAP = 8.0

    def __init__(
        self,
        network: "Network",
        flow: Flow,
        stats: TcpStats,
        slack_policy: SlackPolicy | None = None,
        min_rto: float = 0.01,
    ) -> None:
        self._network = network
        self._flow = flow
        self._stats = stats
        self._slack_policy = slack_policy
        self._host = network.host(flow.src)
        self._host.register_sender(flow.fid, self)

        self.cwnd = self.INITIAL_CWND
        self.ssthresh = self.INITIAL_SSTHRESH
        self.next_seq = 0
        self.highest_acked = 0
        self._dupacks = 0
        self._done = False

        self._min_rto = min_rto
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._rto = 4 * min_rto
        self._backoff = 1.0
        self._timer = None
        self._send_times: dict[int, float] = {}  # seq -> send time (RTT samples)

        network.engine.schedule_at(flow.start, self._start)

    # --- helpers ----------------------------------------------------------

    @property
    def _mss(self) -> int:
        return self._flow.mtu

    def _inflight_segments(self) -> int:
        return -(-(self.next_seq - self.highest_acked) // self._mss)

    def _start(self) -> None:
        self._stats.record_start(self._flow)
        self._send_window()

    def _make_segment(self, seq: int, retx: bool) -> Packet:
        flow = self._flow
        size = min(self._mss, flow.size - seq)
        now = self._network.engine.now
        packet = Packet(
            flow_id=flow.fid, size=size, src=flow.src, dst=flow.dst,
            created=now, seq=seq,
        )
        packet.flow_size = flow.size
        packet.remaining_flow = flow.size - self.highest_acked
        packet.retx = 1 if retx else 0
        if self._slack_policy is not None:
            self._slack_policy.assign(packet, flow, now)
        return packet

    def _send_window(self) -> None:
        while (
            self.next_seq < self._flow.size
            and self._inflight_segments() < int(self.cwnd)
        ):
            seq = self.next_seq
            packet = self._make_segment(seq, retx=False)
            self._send_times[seq] = self._network.engine.now
            self._host.inject(packet)
            self.next_seq = min(seq + self._mss, self._flow.size)
        if not self._done and self.next_seq > self.highest_acked:
            self._arm_timer()

    # --- ACK processing -------------------------------------------------------

    def on_packet(self, ack: Packet) -> None:
        if self._done:
            return
        acked_to = ack.seq
        if acked_to > self.highest_acked:
            self._sample_rtt(acked_to)
            self.highest_acked = acked_to
            self._dupacks = 0
            self._backoff = 1.0
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start: +1 segment per new ACK
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            if self.highest_acked >= self._flow.size:
                self._done = True
                self._cancel_timer()
                return
            self._arm_timer()
            self._send_window()
        else:
            self._dupacks += 1
            if self._dupacks == self.DUPACK_THRESHOLD:
                self._fast_retransmit()

    def _sample_rtt(self, acked_to: int) -> None:
        # Karn's rule by construction: samples only from first transmissions.
        stale = [s for s in self._send_times if s + self._mss <= acked_to]
        sample = None
        for seq in stale:
            sample = self._network.engine.now - self._send_times.pop(seq)
        if sample is None:
            return
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rto = min(
            max(self._min_rto, self._srtt + 4 * self._rttvar),
            self.MAX_RTO_FACTOR * self._min_rto,
        )

    def _fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = max(self.ssthresh, self.MIN_CWND)
        self._retransmit_head()
        self._arm_timer()

    def _retransmit_head(self) -> None:
        seq = self.highest_acked
        self._send_times.pop(seq, None)  # Karn: no RTT sample from retx
        self._stats.retransmissions[self._flow.fid] = (
            self._stats.retransmissions.get(self._flow.fid, 0) + 1
        )
        self._host.inject(self._make_segment(seq, retx=True))

    # --- timer ----------------------------------------------------------------

    def _arm_timer(self) -> None:
        self._cancel_timer()
        timeout = min(self._rto * self._backoff, self.RTO_BACKOFF_CAP * self._rto)
        self._timer = self._network.engine.schedule_cancellable(timeout, self._on_timeout)

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_timeout(self) -> None:
        self._timer = None
        if self._done or self.highest_acked >= self.next_seq:
            return
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.MIN_CWND
        self._dupacks = 0
        self._backoff = min(self._backoff * 2.0, self.RTO_BACKOFF_CAP)
        self._retransmit_head()
        self._arm_timer()


class TcpReceiver:
    """Cumulative-ACK receiver for one flow."""

    def __init__(
        self,
        network: "Network",
        flow: Flow,
        stats: TcpStats,
        on_complete: Callable[[int, float], None] | None = None,
    ) -> None:
        self._network = network
        self._flow = flow
        self._stats = stats
        self._on_complete = on_complete
        self._host = network.host(flow.dst)
        self._host.register_receiver(flow.fid, self)
        self._expected = 0
        self._out_of_order: dict[int, int] = {}  # seq -> size
        self.bytes_in_order = 0

    def on_packet(self, packet: Packet) -> None:
        seq, size = packet.seq, packet.size
        if seq == self._expected:
            self._expected += size
            while self._expected in self._out_of_order:
                self._expected += self._out_of_order.pop(self._expected)
        elif seq > self._expected:
            self._out_of_order.setdefault(seq, size)
        self.bytes_in_order = self._expected
        self._send_ack()
        if self._expected >= self._flow.size:
            now = self._network.engine.now
            self._stats.record_completion(self._flow.fid, now)
            if self._on_complete is not None:
                self._on_complete(self._flow.fid, now)
                self._on_complete = None

    def _send_ack(self) -> None:
        now = self._network.engine.now
        ack = Packet(
            flow_id=self._flow.fid,
            size=ACK_SIZE,
            src=self._flow.dst,
            dst=self._flow.src,
            created=now,
            seq=self._expected,
            is_ack=True,
        )
        # ACKs ride with maximal urgency on every discipline: zero slack,
        # zero priority, and a tiny flow size for the size-based schedulers.
        ack.slack = 0.0
        ack.priority = 0.0
        ack.flow_size = ACK_SIZE
        ack.remaining_flow = ACK_SIZE
        self._host.inject(ack)


def install_tcp_flows(
    network: "Network",
    flows: Sequence[Flow],
    slack_policy: SlackPolicy | None = None,
    min_rto: float = 0.01,
) -> TcpStats:
    """Create a sender/receiver pair per flow; returns the shared stats."""
    stats = TcpStats()
    for flow in flows:
        TcpReceiver(network, flow, stats)
        TcpSender(network, flow, stats, slack_policy=slack_policy, min_rto=min_rto)
    return stats
