"""Transport layer: open-loop UDP and a simplified closed-loop TCP."""

from repro.transport.udp import UdpSource, install_udp_flows
from repro.transport.tcp import TcpReceiver, TcpSender, install_tcp_flows

__all__ = [
    "TcpReceiver",
    "TcpSender",
    "UdpSource",
    "install_tcp_flows",
    "install_udp_flows",
]
