"""Figure 5 / Appendix C: no UPS exists under black-box initialisation.

Two viable schedules ("Case 1" and "Case 2") over the same topology and
the same input load.  The critical packets ``a`` and ``x`` meet at their
first congestion point α0, and their black-box attributes —
``(i(p), o(p), path(p))`` — are *identical in both cases*:

    a: enters at 0, exits at 5, path α0 → α1 → α2
    x: enters at 0, exits at 4, path α0 → α3 → α4

Yet Case 1 is only replayable if α0 sends ``a`` before ``x``, and Case 2
only if ``x`` goes before ``a`` (the downstream cross traffic of flows
B, C, Y, Z is timed to punish the wrong choice).  A deterministic UPS
initialises headers from black-box attributes alone, so it makes the same
α0 decision in both cases — and therefore fails at least one.  This module
provides both cases as gadgets so the argument can be executed against any
concrete candidate (LSTF, EDF, priorities, ...).

Topology (unidirectional, zero propagation, unit transmission at the five
congestion points, splitters ``w*`` infinitely fast):

    SA → α0 → w0 → α1 → w1 → α2 → w2 → DA      (flow A)
    SX → α0,  w0 → α3 → w3 → α4 → w4 → DX      (flow X)
    SB → α1,  w1 → DB                           (flow B: b1 b2 b3)
    SC → α2,  w2 → DC                           (flow C: c1 c2)
    SY → α3,  w3 → DY                           (flow Y: y1 y2)
    SZ → α4,  w4 → DZ                           (flow Z: z)
"""

from __future__ import annotations

from repro.sim.network import Network
from repro.theory.gadgets import Gadget, GadgetPacket, INFINITE_BW, bw_for_tx_time

__all__ = ["blackbox_gadget"]

_CASE_TIMETABLES = {
    1: {
        "b0": {"a": 0.0, "x": 1.0},
        "b1": {"a": 1.0, "b1": 2.0, "b2": 3.0, "b3": 4.0},
        "b2": {"c1": 2.0, "c2": 3.0, "a": 4.0},
        "b3": {"x": 2.0, "y1": 3.0, "y2": 4.0},
        "b4": {"z": 2.0, "x": 3.0},
    },
    2: {
        "b0": {"x": 0.0, "a": 1.0},
        "b1": {"a": 2.0, "b1": 3.0, "b2": 4.0, "b3": 5.0},
        "b2": {"c1": 2.0, "c2": 3.0, "a": 4.0},
        "b3": {"x": 1.0, "y1": 2.0, "y2": 3.0},
        "b4": {"z": 2.0, "x": 3.0},
    },
}


def _build_network() -> Network:
    net = Network()
    for host in ("SA", "SX", "SB", "SC", "SY", "SZ",
                 "DA", "DX", "DB", "DC", "DY", "DZ"):
        net.add_host(host)
    for router in ("b0", "b1", "b2", "b3", "b4", "w0", "w1", "w2", "w3", "w4"):
        net.add_router(router)

    unit = bw_for_tx_time(1.0)
    fast = INFINITE_BW
    for node, splitter in (("b0", "w0"), ("b1", "w1"), ("b2", "w2"),
                           ("b3", "w3"), ("b4", "w4")):
        net.add_link(node, splitter, unit, 0.0, bidirectional=False)

    plumbing = (
        ("SA", "b0"), ("SX", "b0"),
        ("w0", "b1"), ("w0", "b3"),
        ("SB", "b1"), ("w1", "b2"), ("w1", "DB"),
        ("SC", "b2"), ("w2", "DA"), ("w2", "DC"),
        ("SY", "b3"), ("w3", "b4"), ("w3", "DY"),
        ("SZ", "b4"), ("w4", "DX"), ("w4", "DZ"),
    )
    for u, v in plumbing:
        net.add_link(u, v, fast, 0.0, bidirectional=False)
    return net


def blackbox_gadget(case: int) -> Gadget:
    """Build Case 1 or Case 2 of the Figure 5 construction."""
    if case not in (1, 2):
        raise ValueError(f"case must be 1 or 2, got {case!r}")
    packets = [
        GadgetPacket("a", "SA", "DA", 0.0),
        GadgetPacket("x", "SX", "DX", 0.0),
        GadgetPacket("b1", "SB", "DB", 2.0),
        GadgetPacket("b2", "SB", "DB", 3.0),
        GadgetPacket("b3", "SB", "DB", 4.0),
        GadgetPacket("c1", "SC", "DC", 2.0),
        GadgetPacket("c2", "SC", "DC", 3.0),
        GadgetPacket("y1", "SY", "DY", 2.0),
        GadgetPacket("y2", "SY", "DY", 3.0),
        GadgetPacket("z", "SZ", "DZ", 2.0),
    ]
    return Gadget(
        name=f"figure-5-blackbox-case-{case}",
        network_factory=_build_network,
        packets=packets,
        timetables=_CASE_TIMETABLES[case],
    )
