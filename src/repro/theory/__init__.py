"""Executable theory: the paper's counter-example constructions.

The appendices prove the replayability hierarchy with hand-crafted
networks and oracle schedules.  This subpackage turns each one into a
runnable gadget on the real simulator:

* :mod:`repro.theory.lstf_failure` — Figure 7 / Appendix G.3: a schedule
  with three congestion points per packet that LSTF cannot replay.
* :mod:`repro.theory.priority_cycle` — Figure 6 / Appendix F: a priority
  cycle no static priority assignment can satisfy (two potential
  congestion points per packet) — while LSTF replays it exactly.
* :mod:`repro.theory.blackbox` — Figure 5 / Appendix C: two viable
  schedules that agree on every black-box attribute of the two critical
  packets yet demand opposite scheduling decisions, so *no* deterministic
  black-box UPS exists.

All gadgets share the :class:`~repro.theory.gadgets.Gadget` harness:
record the oracle schedule with timetable schedulers, then replay it with
any candidate UPS mode and judge the outcome.
"""

from repro.theory.gadgets import Gadget, GadgetPacket
from repro.theory.lstf_failure import lstf_three_congestion_gadget
from repro.theory.priority_cycle import priority_cycle_gadget
from repro.theory.blackbox import blackbox_gadget
from repro.theory.transformation import (
    BitJob,
    is_feasible,
    simulate_bit_lstf,
    simulate_priority_schedule,
    transform_to_lstf,
)

__all__ = [
    "BitJob",
    "Gadget",
    "GadgetPacket",
    "blackbox_gadget",
    "is_feasible",
    "lstf_three_congestion_gadget",
    "priority_cycle_gadget",
    "simulate_bit_lstf",
    "simulate_priority_schedule",
    "transform_to_lstf",
]
