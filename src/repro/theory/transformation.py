"""Appendix G.2, step 2, executed: transforming a feasible single-switch
schedule into the LSTF schedule by slack-ordered swaps.

The paper's proof that LSTF replays ≤ 2 congestion points hinges on a
single-switch lemma: *any* feasible schedule (no bit sees negative slack)
can be transformed into the LSTF schedule by repeatedly swapping a pair of
scheduled bits that violate least-slack order — and every intermediate
schedule stays feasible, so the LSTF schedule itself is feasible.

This module renders that argument executable at bit granularity on a
discrete-time single switch:

* a **job** is a packet at the switch: arrival slot, length in bits
  (one bit per slot), and a last-bit deadline ``arrival + slack + length``;
* a **schedule** is the slot-by-slot assignment of the transmitter;
* the **swap step** finds slots ``t1 < t2`` whose bits violate the
  least-remaining-slack order (the later-scheduled bit has the earlier
  deadline and had already arrived at ``t1``) and exchanges them;
* :func:`transform_to_lstf` iterates the step to a fixed point, checking
  feasibility after every swap, and verifies the fixed point equals the
  directly simulated (preemptive, bit-level) LSTF schedule.

The tests and the ``bench_theory_gadgets`` harness use this to check the
lemma on randomized feasible instances — a mechanical confirmation of the
paper's central replay argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "BitJob",
    "is_feasible",
    "simulate_bit_lstf",
    "simulate_priority_schedule",
    "transform_to_lstf",
]


class TransformationError(ReproError):
    """The swap argument's invariant failed (would disprove the lemma)."""


@dataclass(frozen=True, slots=True)
class BitJob:
    """A packet at a single switch, in discrete bit-slots.

    ``deadline`` is the slot by which the last bit must have been served
    (exclusive): serving the final bit in slot ``deadline - 1`` is on
    time.  ``deadline = arrival + slack + length``.
    """

    pid: int
    arrival: int
    length: int
    deadline: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"job {self.pid}: length must be >= 1")
        if self.deadline < self.arrival + self.length:
            raise ValueError(
                f"job {self.pid}: deadline {self.deadline} precedes earliest "
                f"possible completion {self.arrival + self.length}"
            )


Schedule = list[int | None]  # slot -> pid (None = idle)


def _completions(schedule: Schedule) -> dict[int, int]:
    done: dict[int, int] = {}
    for slot, pid in enumerate(schedule):
        if pid is not None:
            done[pid] = slot + 1  # completion is exclusive
    return done


def is_feasible(schedule: Schedule, jobs: dict[int, BitJob]) -> bool:
    """Every job fully served, after arrival, by its deadline."""
    served: dict[int, int] = {}
    for slot, pid in enumerate(schedule):
        if pid is None:
            continue
        job = jobs[pid]
        if slot < job.arrival:
            return False
        served[pid] = served.get(pid, 0) + 1
    for pid, job in jobs.items():
        if served.get(pid, 0) != job.length:
            return False
    for pid, completion in _completions(schedule).items():
        if completion > jobs[pid].deadline:
            return False
    return True


def _simulate(jobs: dict[int, BitJob], key) -> Schedule:
    """Work-conserving bit-level simulation serving min ``key(job)`` first."""
    remaining = {pid: job.length for pid, job in jobs.items()}
    horizon = max(j.deadline for j in jobs.values()) + sum(
        j.length for j in jobs.values()
    )
    schedule: Schedule = []
    slot = 0
    while any(remaining.values()):
        if slot > horizon:
            raise TransformationError("simulation failed to drain (bug)")
        available = [
            jobs[pid]
            for pid, bits in remaining.items()
            if bits > 0 and jobs[pid].arrival <= slot
        ]
        if not available:
            schedule.append(None)
            slot += 1
            continue
        chosen = min(available, key=key)
        remaining[chosen.pid] -= 1
        schedule.append(chosen.pid)
        slot += 1
    return schedule


def simulate_priority_schedule(jobs: dict[int, BitJob], priority: dict[int, float]) -> Schedule:
    """The proof's step-1 construction: bit priorities, FIFO tie-break."""
    return _simulate(jobs, key=lambda j: (priority[j.pid], j.pid))


def simulate_bit_lstf(jobs: dict[int, BitJob]) -> Schedule:
    """Preemptive bit-level LSTF: least last-bit slack == earliest deadline."""
    return _simulate(jobs, key=lambda j: (j.deadline, j.pid))


def _find_violation(schedule: Schedule, jobs: dict[int, BitJob]) -> tuple[int, int] | None:
    """A pair of slots (t1 < t2) violating least-slack order.

    Matching the proof's conditions: the bit at t2 has strictly smaller
    remaining slack at time t1 (i.e. an earlier deadline — the difference
    of two remaining slacks is time-independent), it had already arrived
    by t1, and t1's bit exists.  FIFO tie-breaking means equal deadlines
    are resolved by pid, mirroring the pseudocode's final shuffle.
    """
    for t1, p1 in enumerate(schedule):
        if p1 is None:
            continue
        j1 = jobs[p1]
        for t2 in range(t1 + 1, len(schedule)):
            p2 = schedule[t2]
            if p2 is None or p2 == p1:
                continue
            j2 = jobs[p2]
            if j2.arrival <= t1 and (j2.deadline, j2.pid) < (j1.deadline, j1.pid):
                return t1, t2
    return None


def transform_to_lstf(
    schedule: Schedule,
    jobs: dict[int, BitJob],
    max_swaps: int | None = None,
) -> tuple[Schedule, int]:
    """Run the Appendix G.2 swap loop to its fixed point.

    Returns ``(lstf_schedule, num_swaps)``.  Raises
    :class:`TransformationError` if any intermediate schedule loses
    feasibility — which the lemma proves cannot happen, so a raise here
    would indicate a bug (or a counter-example to the paper).
    """
    if not is_feasible(schedule, jobs):
        raise TransformationError("initial schedule is not feasible")
    work = list(schedule)
    limit = max_swaps if max_swaps is not None else len(work) ** 2 + len(work)
    swaps = 0
    while True:
        found = _find_violation(work, jobs)
        if found is None:
            break
        t1, t2 = found
        work[t1], work[t2] = work[t2], work[t1]
        swaps += 1
        if not is_feasible(work, jobs):
            raise TransformationError(
                f"swap #{swaps} at slots ({t1}, {t2}) broke feasibility — "
                "this would contradict Appendix G.2"
            )
        if swaps > limit:
            raise TransformationError("swap loop exceeded its bound (bug)")
    # Normalise bit order within a packet (the pseudocode's line 10): our
    # bits are interchangeable, so the schedule is already canonical up to
    # same-deadline ordering, which FIFO/pid tie-breaking fixed above.
    return work, swaps
