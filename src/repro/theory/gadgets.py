"""Harness for the appendix counter-example gadgets.

A gadget is a network plus a hand-written *original schedule*: for each
congestion point, the exact time every packet's transmission starts
(§2.1 allows original schedules produced by oracles, which is precisely
what these constructions are).  The harness:

1. builds the network, installs a
   :class:`~repro.schedulers.timetable.TimetableScheduler` on every
   congestion point's output port (plain FIFO elsewhere — those links are
   infinitely fast, so FIFO never delays anything),
2. injects the packets at their specified ingress times,
3. records the resulting schedule, and
4. replays it under any candidate UPS mode via the standard
   :func:`~repro.core.replay.replay_schedule` machinery.

Packet naming: gadget packets carry human names ("a", "b1", ...) that map
to deterministic pids, so tests can ask "was packet ``c2`` overdue?".

Conventions from the figures: unit-size packets; a congestion point with
transmission time ``T`` is a node whose single outgoing link has bandwidth
``8/T`` bits/s (one byte in ``T`` seconds); every other link is infinitely
fast; propagation delays are zero unless the figure says otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.core.packet import Packet
from repro.core.replay import RecordedSchedule, ReplayResult, record_schedule, replay_schedule
from repro.errors import ConfigurationError
from repro.schedulers.timetable import TimetableScheduler
from repro.sim.network import Network

__all__ = ["Gadget", "GadgetPacket", "INFINITE_BW", "bw_for_tx_time"]

INFINITE_BW = math.inf

#: Every gadget packet is one byte.
PACKET_SIZE = 1


def bw_for_tx_time(t: float) -> float:
    """Bandwidth making a 1-byte packet take ``t`` seconds to transmit."""
    if t <= 0:
        raise ConfigurationError(f"transmission time must be positive, got {t!r}")
    return 8.0 * PACKET_SIZE / t


@dataclass(frozen=True, slots=True)
class GadgetPacket:
    """One packet of a gadget: name, endpoints, ingress time."""

    name: str
    src: str
    dst: str
    ingress_time: float


@dataclass
class Gadget:
    """A counter-example construction.

    Parameters
    ----------
    name:
        Figure reference for reporting.
    network_factory:
        Builds a fresh copy of the gadget topology.
    packets:
        The input load.
    timetables:
        ``{congestion_node: {packet_name: tx_start_time}}`` — the original
        schedule at each congestion point.
    """

    name: str
    network_factory: Callable[[], Network]
    packets: list[GadgetPacket]
    timetables: dict[str, dict[str, float]]
    _pids: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        names = [p.name for p in self.packets]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate packet names in gadget {self.name!r}")
        # Stable name -> pid assignment, shared by record and replay.
        self._pids = {p.name: idx + 1 for idx, p in enumerate(self.packets)}

    # --- identity helpers --------------------------------------------------

    def pid(self, name: str) -> int:
        return self._pids[name]

    def packet_name(self, pid: int) -> str:
        for name, p in self._pids.items():
            if p == pid:
                return name
        raise KeyError(pid)

    # --- record -------------------------------------------------------------

    def record(self) -> RecordedSchedule:
        """Run the oracle schedule and capture it."""
        network = self.network_factory()

        def factory(node: str, _neighbor: str):
            table = self.timetables.get(node)
            if table is None:
                return None  # uncongested: keep FIFO on an infinite link
            return TimetableScheduler({self._pids[n]: t for n, t in table.items()})

        network.install_schedulers(factory)
        for spec in self.packets:
            packet = Packet(
                flow_id=self._pids[spec.name],
                size=PACKET_SIZE,
                src=spec.src,
                dst=spec.dst,
                created=spec.ingress_time,
                pid=self._pids[spec.name],
            )
            network.inject_at(spec.ingress_time, packet)
        return record_schedule(network, description=self.name)

    # --- replay -------------------------------------------------------------

    def replay(self, mode: str = "lstf", **kwargs) -> ReplayResult:
        """Replay the recorded oracle schedule under a candidate UPS."""
        return replay_schedule(self.record(), self.network_factory, mode=mode, **kwargs)

    def overdue_names(self, result: ReplayResult) -> list[str]:
        """Names of packets that missed their targets in ``result``."""
        late = []
        for rec, lateness in zip(result.schedule.packets, result.lateness):
            if lateness > 1e-9:
                late.append(self.packet_name(rec.pid))
        return sorted(late)
