"""Figure 6 / Appendix F: the priority cycle.

Three packets, three congestion points with different speeds
(T(α1) = 1, T(α2) = 0.5, T(α3) = 0.2), and one long-propagation link L
(delay 2) on packet ``a``'s path.  A successful replay needs

    priority(a) < priority(b)   at α1
    priority(b) < priority(c)   at α2
    priority(c) < priority(a)   at α3

— a cycle, so *no* static priority assignment replays this schedule, no
matter what information the ingress uses.  LSTF, by contrast, replays it
exactly: the slack headers evolve along the path, so the relative order of
two packets can differ at different hops.

Topology (unidirectional, zero propagation except L = w1→α3):

    SA → α1 → w1 → (L, prop 2) → α3 → w3 → DA
    SB → α1,  w1 → α2 → w2 → DB
    SC → α2,  w2 → α3, w3 → DC

Original schedule, exactly the figure's table:

    α1: a(0,0), b(0,1)
    α2: b(2,2), c(2,2.5)
    α3: c(3,3), a(3,3.2)
"""

from __future__ import annotations

import itertools

from repro.core.replay import RecordedPacket, replay_schedule
from repro.sim.network import Network
from repro.theory.gadgets import Gadget, GadgetPacket, INFINITE_BW, bw_for_tx_time

__all__ = ["all_priority_orderings_fail", "priority_cycle_gadget"]


def _build_network() -> Network:
    net = Network()
    for host in ("SA", "SB", "SC", "DA", "DB", "DC"):
        net.add_host(host)
    for router in ("x1", "x2", "x3", "w1", "w2", "w3"):
        net.add_router(router)

    fast = INFINITE_BW
    net.add_link("x1", "w1", bw_for_tx_time(1.0), 0.0, bidirectional=False)
    net.add_link("x2", "w2", bw_for_tx_time(0.5), 0.0, bidirectional=False)
    net.add_link("x3", "w3", bw_for_tx_time(0.2), 0.0, bidirectional=False)

    net.add_link("SA", "x1", fast, 0.0, bidirectional=False)
    net.add_link("SB", "x1", fast, 0.0, bidirectional=False)
    net.add_link("SC", "x2", fast, 0.0, bidirectional=False)
    net.add_link("w1", "x3", fast, 2.0, bidirectional=False)  # the link L
    net.add_link("w1", "x2", fast, 0.0, bidirectional=False)
    net.add_link("w2", "x3", fast, 0.0, bidirectional=False)
    net.add_link("w2", "DB", fast, 0.0, bidirectional=False)
    net.add_link("w3", "DA", fast, 0.0, bidirectional=False)
    net.add_link("w3", "DC", fast, 0.0, bidirectional=False)
    return net


def priority_cycle_gadget() -> Gadget:
    """The Figure 6 gadget, ready to record and replay."""
    packets = [
        GadgetPacket("a", "SA", "DA", 0.0),
        GadgetPacket("b", "SB", "DB", 0.0),
        GadgetPacket("c", "SC", "DC", 2.0),
    ]
    timetables = {
        "x1": {"a": 0.0, "b": 1.0},
        "x2": {"b": 2.0, "c": 2.5},
        "x3": {"c": 3.0, "a": 3.2},
    }
    return Gadget(
        name="figure-6-priority-cycle",
        network_factory=_build_network,
        packets=packets,
        timetables=timetables,
    )


def all_priority_orderings_fail(gadget: Gadget) -> bool:
    """Exhaustively check Appendix F's claim on the gadget.

    Replays the schedule under simple priority scheduling for *every*
    strict ordering of the three packets; returns True iff each one leaves
    at least one packet overdue.  Only relative order matters for static
    priorities, so six permutations cover the entire assignment space.
    """
    schedule = gadget.record()
    names = [p.name for p in gadget.packets]
    for perm in itertools.permutations(names):
        rank = {gadget.pid(name): float(i) for i, name in enumerate(perm)}

        def priority_fn(rec: RecordedPacket, _rank=rank) -> float:
            return _rank[rec.pid]

        outcome = replay_schedule(
            schedule, gadget.network_factory, mode="priority", priority_fn=priority_fn
        )
        if outcome.perfect:
            return False
    return True
