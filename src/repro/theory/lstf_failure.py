"""Figure 7 / Appendix G.3: LSTF replay failure at three congestion points.

The construction: packet ``a`` crosses three congestion points α0, α1, α2
(each with transmission time 1).  In the original schedule ``a`` never
waits until α2, where it queues behind ``d1`` and ``d2``, so its total
slack is 2.  During the replay LSTF has no way to know the slack should be
hoarded: ``b`` (slack 1) beats ``a`` at α0, spending one unit of ``a``'s
slack; ``c1`` (slack 0) beats ``a`` at α1, spending the rest; then ``a``
and ``c2`` tie with zero slack at α1 and one of them must exit late.

Topology (all figure links are zero-propagation; congestion points have a
single outgoing wire feeding an infinitely fast splitter that fans out to
the egresses, so contention is modelled faithfully):

    SA → α0 → w0 → α1 → w1 → α2 → w2 → DA
    SB → α0,  w0 → DB
    SC → α1,  w1 → DC
    SD → α2,  w2 → DD

Original schedule (arrival, tx-start), exactly the figure's table:

    α0: a(0,0), b(0,1)
    α1: a(1,1), c1(2,2), c2(3,3)
    α2: d1(2,2), d2(3,3), a(2,4)
"""

from __future__ import annotations

from repro.sim.network import Network
from repro.theory.gadgets import Gadget, GadgetPacket, INFINITE_BW, bw_for_tx_time

__all__ = ["lstf_three_congestion_gadget"]


def _build_network() -> Network:
    net = Network()
    for host in ("SA", "SB", "SC", "SD", "DA", "DB", "DC", "DD"):
        net.add_host(host)
    for router in ("a0", "a1", "a2", "w0", "w1", "w2"):
        net.add_router(router)

    unit = bw_for_tx_time(1.0)
    fast = INFINITE_BW
    # Single outgoing wire per congestion point (the contended resource).
    net.add_link("a0", "w0", unit, 0.0, bidirectional=False)
    net.add_link("a1", "w1", unit, 0.0, bidirectional=False)
    net.add_link("a2", "w2", unit, 0.0, bidirectional=False)
    # Uncongested plumbing.
    net.add_link("SA", "a0", fast, 0.0, bidirectional=False)
    net.add_link("SB", "a0", fast, 0.0, bidirectional=False)
    net.add_link("SC", "a1", fast, 0.0, bidirectional=False)
    net.add_link("SD", "a2", fast, 0.0, bidirectional=False)
    net.add_link("w0", "a1", fast, 0.0, bidirectional=False)
    net.add_link("w0", "DB", fast, 0.0, bidirectional=False)
    net.add_link("w1", "a2", fast, 0.0, bidirectional=False)
    net.add_link("w1", "DC", fast, 0.0, bidirectional=False)
    net.add_link("w2", "DA", fast, 0.0, bidirectional=False)
    net.add_link("w2", "DD", fast, 0.0, bidirectional=False)
    return net


def lstf_three_congestion_gadget() -> Gadget:
    """The Figure 7 gadget, ready to record and replay."""
    packets = [
        GadgetPacket("a", "SA", "DA", 0.0),
        GadgetPacket("b", "SB", "DB", 0.0),
        GadgetPacket("c1", "SC", "DC", 2.0),
        GadgetPacket("c2", "SC", "DC", 3.0),
        GadgetPacket("d1", "SD", "DD", 2.0),
        GadgetPacket("d2", "SD", "DD", 3.0),
    ]
    timetables = {
        "a0": {"a": 0.0, "b": 1.0},
        "a1": {"a": 1.0, "c1": 2.0, "c2": 3.0},
        "a2": {"d1": 2.0, "d2": 3.0, "a": 4.0},
    }
    return Gadget(
        name="figure-7-lstf-three-congestion-points",
        network_factory=_build_network,
        packets=packets,
        timetables=timetables,
    )
