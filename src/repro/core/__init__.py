"""Core abstractions: packets, flows, slack algebra, replay, heuristics.

This subpackage holds the paper's primary contribution — the LSTF replay
machinery (§2) and the practical slack-initialisation heuristics (§3) —
plus the packet/flow data model everything else shares.
"""

from repro.core.flow import Flow
from repro.core.packet import Packet
from repro.core.slack import initialize_replay_slack, path_tmin, remaining_tmin
from repro.core.replay import (
    RecordedPacket,
    RecordedSchedule,
    ReplayResult,
    record_schedule,
    replay_schedule,
)
from repro.core.heuristics import (
    ConstantSlack,
    FlowSizeSlack,
    SlackPolicy,
    VirtualClockSlack,
)

__all__ = [
    "ConstantSlack",
    "Flow",
    "FlowSizeSlack",
    "Packet",
    "RecordedPacket",
    "RecordedSchedule",
    "ReplayResult",
    "SlackPolicy",
    "VirtualClockSlack",
    "initialize_replay_slack",
    "path_tmin",
    "record_schedule",
    "remaining_tmin",
    "replay_schedule",
]
