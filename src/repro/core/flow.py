"""Flow descriptions shared by the workload generators and transports."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import MTU, packets_for

__all__ = ["Flow"]


@dataclass(frozen=True, slots=True)
class Flow:
    """A unidirectional transfer of ``size`` bytes from ``src`` to ``dst``.

    ``start`` is the time the first byte becomes available at the source
    host.  For open-loop (UDP) workloads every segment's ingress time
    ``i(p)`` equals ``start``; the host uplink then paces the burst, exactly
    like an ns-2 CBR source at line rate.  For closed-loop (TCP) workloads
    segment creation times are governed by the congestion window.
    """

    fid: int
    src: str
    dst: str
    size: int
    start: float
    mtu: int = MTU
    weight: float = field(default=1.0, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size}")
        if self.src == self.dst:
            raise ValueError(f"flow endpoints must differ, got {self.src!r}")

    @property
    def num_packets(self) -> int:
        """Number of MTU-sized segments the flow occupies."""
        return packets_for(self.size, self.mtu)

    def segment_sizes(self) -> list[int]:
        """Sizes of the individual segments; the last may be short.

        >>> Flow(1, "a", "b", 3200, 0.0).segment_sizes()
        [1500, 1500, 200]
        """
        full, rem = divmod(self.size, self.mtu)
        sizes = [self.mtu] * full
        if rem or not sizes:
            sizes.append(rem if rem else self.size)
        return sizes
