"""The packet data model.

A :class:`Packet` carries both the immutable description of the datagram
(size, endpoints, flow membership) and the *dynamic packet state* the paper
builds on [31]: a ``slack`` field that LSTF routers rewrite hop by hop, a
static ``priority``/``deadline`` for priority/EDF scheduling, and an
optional per-hop timetable for the omniscient replay of Appendix B.

Scratch fields (prefixed ``_``-style by convention but kept public here
because ports and schedulers on the hot path read them constantly) hold the
bookkeeping a store-and-forward traversal needs: current position on the
path, enqueue time at the current port, and accumulated queueing delay.
"""

from __future__ import annotations

from repro.units import INFINITY

__all__ = ["Packet", "packet_id_counter", "set_packet_id_counter"]

_COUNTER = 0


def _next_pid() -> int:
    global _COUNTER
    _COUNTER += 1
    return _COUNTER


class Packet:
    """A single store-and-forward datagram.

    Parameters
    ----------
    flow_id:
        Identifier of the owning flow (``-1`` for standalone packets).
    size:
        Size in bytes (headers included; we do not model header overhead
        separately, matching the paper's ns-2 setup).
    src, dst:
        Names of the source and destination *hosts*.
    created:
        Time the packet entered the network at its ingress, ``i(p)``.
    seq:
        Byte offset of this packet within its flow (used by TCP and SRPT).
    """

    __slots__ = (
        "pid",
        "flow_id",
        "size",
        "src",
        "dst",
        "created",
        "seq",
        "is_ack",
        # --- header: dynamic packet state -------------------------------
        "slack",
        "priority",
        "deadline",
        "hop_times",
        # --- flow metadata used by size-based schedulers ----------------
        "flow_size",
        "remaining_flow",
        # --- per-traversal scratch state ---------------------------------
        "path_pos",
        "enqueue_time",
        "queue_wait",
        "retx",
        "trace",
    )

    def __init__(
        self,
        flow_id: int,
        size: int,
        src: str,
        dst: str,
        created: float,
        seq: int = 0,
        is_ack: bool = False,
        pid: int | None = None,
    ) -> None:
        self.pid = _next_pid() if pid is None else pid
        self.flow_id = flow_id
        self.size = size
        self.src = src
        self.dst = dst
        self.created = created
        self.seq = seq
        self.is_ack = is_ack

        # Header fields.  ``slack`` is rewritten at every hop by LSTF;
        # ``priority`` is static (simple priority scheduling); ``deadline``
        # is the static o(p) carried by network-EDF; ``hop_times`` is the
        # omniscient per-hop timetable of Appendix B.
        self.slack: float = INFINITY
        self.priority: float = 0.0
        self.deadline: float = INFINITY
        self.hop_times: tuple[float, ...] | None = None

        # Flow metadata stamped by the transport layer.
        self.flow_size: int = size
        self.remaining_flow: int = size

        # Scratch.
        self.path_pos: int = 0
        self.enqueue_time: float = 0.0
        self.queue_wait: float = 0.0
        self.retx: int = 0
        # The tracer's PacketRecord, cached here at ingress so per-hop
        # hooks skip the records-dict lookup (see Tracer.on_created).
        self.trace = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ack" if self.is_ack else "data"
        return (
            f"<Packet #{self.pid} {kind} flow={self.flow_id} "
            f"{self.src}->{self.dst} size={self.size} seq={self.seq}>"
        )


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (test isolation helper)."""
    global _COUNTER
    _COUNTER = 0


def packet_id_counter() -> int:
    """Current value of the global packet-id counter.

    Checkpoints capture this alongside the network graph: a restored
    simulation must hand out the same pids a from-scratch run would, and
    pids are drawn from process-global state rather than the network.
    """
    return _COUNTER


def set_packet_id_counter(value: int) -> None:
    """Restore the global packet-id counter (checkpoint restore helper)."""
    global _COUNTER
    _COUNTER = value
