"""Persistence and caching for recorded schedules.

Recording a large original schedule is the expensive half of a replay
experiment (the ``repro_why`` of this reproduction: "large replay traces
slow").  This module makes a recorded schedule a first-class, reusable
artifact:

* :func:`save_schedule` / :func:`load_schedule` — one schedule to/from
  one file.  The document is the versioned JSON of
  :meth:`~repro.core.replay.RecordedSchedule.to_dict` plus a detached
  ``content_hash`` (SHA-256 of the canonical JSON) verified on load, so
  a truncated or hand-edited trace fails loudly instead of replaying
  subtly wrong.  Paths ending ``.gz`` are gzipped transparently.
* :class:`ScheduleStore` — a content-addressed directory of schedule
  files keyed by *recording inputs* (see
  :func:`repro.experiments.replayability.scenario_schedule_key`), the
  record-once/replay-many cache the experiment runner shares across the
  legs of a replay-mode sweep.  Writes are atomic (temp file +
  ``os.replace``), mirroring :meth:`repro.api.results.RunArtifact.save`,
  so concurrent workers on one directory never observe a torn JSON.
* :func:`use_schedule_store` / :func:`active_schedule_store` — the
  process-wide "current store" the runner activates around a driver
  call; :func:`repro.experiments.replayability.get_recorded_schedule`
  answers recordings from it.

Format: JSON keeps traces diffable and language-neutral; gzip brings the
size within ~2x of a binary encoding.  Floats round-trip exactly
(``json`` serialises via ``repr``), which is what makes a replay of a
reloaded schedule byte-identical to a replay of the in-memory original —
the correctness bar the record-once sweep machinery is held to.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import json
import os
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import IO, Callable, Iterable, Iterator

from repro.core.replay import RecordedSchedule
from repro.errors import ReplayError

__all__ = [
    "ScheduleStore",
    "active_schedule_store",
    "load_schedule",
    "save_schedule",
    "use_schedule_store",
]


def _open(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _document_text(schedule: RecordedSchedule) -> str:
    """The schedule-file bytes: canonical JSON with its hash spliced in.

    One ``to_dict`` + one serialisation produce both the content hash
    (SHA-256 over the canonical text, exactly
    :meth:`~repro.core.replay.RecordedSchedule.content_hash`) and the
    file body — serialising a multi-thousand-packet schedule twice per
    save used to cost as much as the recording simulation itself.  The
    hash is prepended as the first key of the same canonical object,
    which keeps the on-disk format identical to the one
    :func:`load_schedule` always read: a flat JSON document whose
    ``content_hash`` key is detached before ``from_dict``.
    """
    canonical = schedule.canonical_json()
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    # to_dict() always carries format/version keys, so the canonical
    # text is a non-empty object we can splice a first key into.
    return f'{{"content_hash":"{digest}",{canonical[1:]}'


def _schedule_from_document(
    document: dict, where: str, verify: bool
) -> RecordedSchedule:
    if not isinstance(document, dict) or "format" not in document:
        raise ReplayError(f"{where} is not a recorded-schedule file")
    expected = document.pop("content_hash", None)
    schedule = RecordedSchedule.from_dict(document)
    if verify and expected is not None and schedule.content_hash() != expected:
        raise ReplayError(
            f"{where} failed its content-hash check — the file was "
            f"corrupted or edited after recording"
        )
    return schedule


def save_schedule(schedule: RecordedSchedule, path: str | Path) -> None:
    """Write a recorded schedule to ``path`` (gzipped iff it ends ``.gz``).

    The document embeds the schedule's content hash;
    :func:`load_schedule` verifies it.
    """
    path = Path(path)
    with _open(path, "w") as fh:
        fh.write(_document_text(schedule))


def load_schedule(path: str | Path, verify: bool = True) -> RecordedSchedule:
    """Read and verify a schedule previously written by :func:`save_schedule`.

    Raises :class:`~repro.errors.ReplayError` for foreign files,
    unsupported format versions, and (with ``verify``, the default)
    content-hash mismatches.  ``verify=False`` skips the hash check —
    it costs a full canonical re-serialisation, which the hot
    :class:`ScheduleStore` read path cannot afford; hand-carried trace
    files should keep the default.
    """
    path = Path(path)
    with _open(path, "r") as fh:
        document = json.load(fh)
    return _schedule_from_document(document, str(path), verify)


#: Process-wide parse memo for store reads: (path, mtime_ns, size) →
#: parsed schedule.  Legs of a serial sweep share one process, so
#: without this every leg would re-parse the same multi-thousand-packet
#: JSON it just helped write; with it, only the first read per process
#: parses.  Keyed on stat identity: an atomic replace changes mtime/size
#: and misses (and recording is deterministic, so even a theoretical
#: stale hit could only return identical content).  Bounded because
#: schedules are large, but sized to hold a full Table 1 sweep (14
#: scenarios) with room to spare — an LRU smaller than the sweep's
#: working set would thrash to zero hits under the legs' cyclic reads.
_PARSE_MEMO: "OrderedDict[tuple, RecordedSchedule]" = OrderedDict()
_PARSE_MEMO_MAX = 32


def _memo_key(path: Path) -> tuple | None:
    try:
        st = path.stat()
    except OSError:
        return None
    return (str(path), st.st_mtime_ns, st.st_size)


def _memo_put(key: tuple, schedule: RecordedSchedule) -> None:
    _PARSE_MEMO[key] = schedule
    _PARSE_MEMO.move_to_end(key)
    while len(_PARSE_MEMO) > _PARSE_MEMO_MAX:
        _PARSE_MEMO.popitem(last=False)


class ScheduleStore:
    """A content-addressed, on-disk cache of recorded schedules.

    One directory, one file per schedule, named ``<key>.json`` where the
    key is derived from the *recording inputs* (topology, original
    scheduler, load, seed, …) so any leg of any sweep that needs the same
    original run addresses the same file.  The store also keeps an
    append-only ``recordings.log`` — one line per *actual* recording —
    which is how the test suite (and the ``sweep-replay`` bench) assert
    the record-once guarantee: a sweep over M replay modes must grow the
    log by exactly the number of unique schedules, not M times that.
    """

    #: File name of the append-only record of actual recordings.
    LOG_NAME = "recordings.log"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        """The file a schedule with ``key`` lives at (may not exist yet)."""
        return self.root / f"{key}.json"

    def has(self, key: str) -> bool:
        """True when a schedule file for ``key`` exists (content untested)."""
        return self.path(key).is_file()

    def get(self, key: str) -> RecordedSchedule | None:
        """The cached schedule for ``key``, or None.

        Unreadable or corrupt entries (truncated writes by a killed
        process) are treated as misses, not errors — the caller records
        afresh and the atomic :meth:`put` heals the entry.  Store reads
        skip the content-hash check (entries are written atomically by
        this same store, and re-hashing on the sweep hot path would cost
        more than the simulation it saves at small scales) and are
        memoised per process on the file's stat identity, so the legs of
        a serial sweep parse each schedule once, not once per leg.
        """
        path = self.path(key)
        memo_key = _memo_key(path)
        if memo_key is not None and memo_key in _PARSE_MEMO:
            _PARSE_MEMO.move_to_end(memo_key)
            return _PARSE_MEMO[memo_key]
        try:
            schedule = load_schedule(path, verify=False)
        except (OSError, ValueError, TypeError, KeyError, ReplayError):
            return None
        if memo_key is not None:
            _memo_put(memo_key, schedule)
        return schedule

    def put(self, key: str, schedule: RecordedSchedule) -> Path:
        """Persist ``schedule`` under ``key`` atomically; returns the path.

        Temp file + ``os.replace`` in the store directory: concurrent
        readers see either no file or a complete, hash-verified one.
        Racing writers of the same key both succeed (last replace wins;
        recording is deterministic, so the contents agree anyway).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp_name = str(
            self.root / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        )
        fd = os.open(tmp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(_document_text(schedule))
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path

    def get_or_record(
        self, key: str, recorder: Callable[[], RecordedSchedule]
    ) -> RecordedSchedule:
        """The schedule for ``key`` — from cache, or by running ``recorder``.

        A cache miss records, persists, logs the recording, and returns
        the schedule *reloaded from disk*, so every consumer — the leg
        that paid for the recording and every later one — replays the
        identical post-round-trip object (round-trips are lossless, but
        structural identity makes the byte-identity argument airtight).
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        # Recorders run their own simulation, but only on a miss; were a
        # resume session (repro.sim.resume) left active, the extra phases
        # would shift later phase ordinals and orphan their snapshots.
        from repro.sim.resume import suspended_resume  # local: avoids cycle

        with suspended_resume():
            schedule = recorder()
        self.put(key, schedule)
        self._log_recording(key)
        reloaded = self.get(key)
        return schedule if reloaded is None else reloaded

    def keys(self) -> list[str]:
        """The keys currently present in the store, sorted.

        Scans the store directory for ``<key>.json`` entries; in-flight
        temp files (dot-prefixed) are not entries and are skipped.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            path.stem
            for path in self.root.glob("*.json")
            if not path.name.startswith(".")
        )

    def prune(self, in_use: Iterable[str]) -> list[str]:
        """Remove every entry whose key is not in ``in_use``; GC for
        long-lived stores.

        Returns the removed keys, sorted.  Each removal is a single
        ``unlink`` — atomic, so a concurrent reader sees either the
        complete file or a miss it can re-record — and an entry someone
        else already removed is skipped silently.  The
        ``recordings.log`` audit trail is deliberately left intact: it
        records history (how many simulations were ever paid for), not
        current contents.
        """
        keep = set(in_use)
        removed = []
        for key in self.keys():
            if key in keep:
                continue
            with contextlib.suppress(FileNotFoundError):
                self.path(key).unlink()
                removed.append(key)
        return sorted(removed)

    # -- the record-once audit trail --------------------------------------

    def _log_recording(self, key: str) -> None:
        """Append one line for an actual recording (O_APPEND: atomic for
        short lines, so concurrent workers interleave but never tear)."""
        line = f"{key} pid={os.getpid()}\n"
        fd = os.open(
            str(self.root / self.LOG_NAME),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o666,
        )
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def recorded_keys(self) -> list[str]:
        """Keys actually recorded into this store, in recording order.

        Reads ``recordings.log``; a key appears once per recording, so
        ``len(store.recorded_keys())`` is the number of simulations the
        store paid for — the quantity the record-once tests assert on.
        """
        try:
            text = (self.root / self.LOG_NAME).read_text()
        except OSError:
            return []
        return [line.split()[0] for line in text.splitlines() if line.strip()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScheduleStore {self.root}>"


#: The store :func:`active_schedule_store` answers with (None = no cache).
_ACTIVE_STORE: ScheduleStore | None = None


def active_schedule_store() -> ScheduleStore | None:
    """The schedule store the current run records into / reads from.

    Set by :func:`use_schedule_store`; ``None`` means "no cache — record
    in memory every time", the behaviour of a bare driver call outside
    the runner.
    """
    return _ACTIVE_STORE


@contextlib.contextmanager
def use_schedule_store(store: ScheduleStore | None) -> Iterator[ScheduleStore | None]:
    """Make ``store`` the active schedule store for the enclosed block.

    The experiment runner wraps each driver call in this so
    :func:`repro.experiments.replayability.get_recorded_schedule` can
    answer recordings from the sweep's shared cache.  Nests and restores
    the previous store on exit; passing ``None`` disables caching inside
    the block.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    try:
        yield store
    finally:
        _ACTIVE_STORE = previous
