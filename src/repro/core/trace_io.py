"""Persistence for recorded schedules.

Recording a large original schedule is the expensive half of a replay
experiment (the ``repro_why`` of this reproduction: "large replay traces
slow").  These helpers serialise a
:class:`~repro.core.replay.RecordedSchedule` to a compact JSON document so
a trace can be recorded once and replayed under many candidate UPSes,
parameter sweeps, or future scheduler implementations.

Format: a versioned JSON object with schedule metadata and one row per
packet.  JSON keeps traces diffable and language-neutral; gzip (used
automatically for ``.gz`` paths) brings the size within ~2x of a binary
encoding.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO

from repro.core.replay import RecordedPacket, RecordedSchedule
from repro.errors import ReplayError

__all__ = ["load_schedule", "save_schedule"]

FORMAT_VERSION = 1


def _open(path: Path, mode: str) -> IO:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_schedule(schedule: RecordedSchedule, path: str | Path) -> None:
    """Write a recorded schedule to ``path`` (gzipped iff it ends ``.gz``)."""
    path = Path(path)
    document = {
        "format": "repro.recorded_schedule",
        "version": FORMAT_VERSION,
        "description": schedule.description,
        "threshold": schedule.threshold,
        "packets": [
            {
                "pid": p.pid,
                "flow_id": p.flow_id,
                "flow_size": p.flow_size,
                "size": p.size,
                "src": p.src,
                "dst": p.dst,
                "i": p.ingress_time,
                "o": p.output_time,
                "path": list(p.path),
                "hop_tx": list(p.hop_tx),
                "hop_waits": list(p.hop_waits),
            }
            for p in schedule.packets
        ],
    }
    with _open(path, "w") as fh:
        json.dump(document, fh)


def load_schedule(path: str | Path) -> RecordedSchedule:
    """Read a schedule previously written by :func:`save_schedule`."""
    path = Path(path)
    with _open(path, "r") as fh:
        document = json.load(fh)
    if document.get("format") != "repro.recorded_schedule":
        raise ReplayError(f"{path} is not a recorded-schedule file")
    if document.get("version") != FORMAT_VERSION:
        raise ReplayError(
            f"{path} uses format version {document.get('version')!r}; this "
            f"library reads version {FORMAT_VERSION}"
        )
    packets = [
        RecordedPacket(
            pid=row["pid"],
            flow_id=row["flow_id"],
            flow_size=row["flow_size"],
            size=row["size"],
            src=row["src"],
            dst=row["dst"],
            ingress_time=row["i"],
            output_time=row["o"],
            path=tuple(row["path"]),
            hop_tx=tuple(row["hop_tx"]),
            hop_waits=tuple(row["hop_waits"]),
        )
        for row in document["packets"]
    ]
    return RecordedSchedule(
        packets,
        threshold=document["threshold"],
        description=document.get("description", ""),
    )
