"""Slack algebra (§2.1 and Appendix A/D).

The central quantity of the paper: a packet's **slack** is the total
queueing time it can still absorb without missing its target output time,

    slack(p) = o(p) − i(p) − tmin(p, src(p), dest(p))

initialised at the ingress from black-box information only (the desired
output time and the path).  ``tmin`` is the uncongested last-bit traversal
time: per-link serialisation plus propagation, summed along the path
(store-and-forward).

Routers then maintain the invariant of Appendix D,

    slack(p, α, t) = o(p) − t − tmin(p, α, dest(p)) + T(p, α)

by rewriting the header on every dequeue (see
:class:`repro.schedulers.lstf.LstfScheduler`).  The functions here cover
the ingress side and the bookkeeping the replay engine needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import ReplayError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.packet import Packet
    from repro.sim.network import Network

__all__ = ["initialize_replay_slack", "path_tmin", "remaining_tmin", "replay_slack"]


def path_tmin(network: "Network", size: int, path: Iterable[str]) -> float:
    """Uncongested last-bit traversal time of a ``size``-byte packet along
    ``path`` (a sequence of node names)."""
    return network.path_tmin(size, path)


def remaining_tmin(network: "Network", node: str, dst: str, size: int) -> float:
    """``tmin(p, α, dest)``: uncongested time from node ``α`` to delivery."""
    return network.remaining_tmin(node, dst, size)


def replay_slack(network: "Network", size: int, src: str, dst: str,
                 ingress_time: float, output_time: float) -> float:
    """The ingress slack assignment for replay: ``o(p) − i(p) − tmin``.

    A negative result means the requested output time is faster than the
    uncongested traversal — no scheduler can achieve it, so the recorded
    schedule and the replay topology disagree.
    """
    slack = output_time - ingress_time - network.tmin(src, dst, size)
    if slack < -1e-9:
        raise ReplayError(
            f"target output time {output_time!r} for a {size}B packet "
            f"{src!r}->{dst!r} entering at {ingress_time!r} is below the "
            f"uncongested traversal time; the schedule is not viable on "
            "this topology"
        )
    return max(slack, 0.0)


def initialize_replay_slack(packet: "Packet", network: "Network", output_time: float) -> None:
    """Stamp a packet's header for LSTF replay of a recorded schedule."""
    packet.slack = replay_slack(
        network, packet.size, packet.src, packet.dst, packet.created, output_time
    )
    packet.deadline = output_time
