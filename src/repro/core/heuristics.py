"""Slack-initialisation heuristics (§3).

The practical side of universality: instead of replaying a known schedule,
the ingress assigns slacks from a heuristic chosen for a network-wide
objective, and every router simply runs LSTF.

* :class:`FlowSizeSlack` — §3.1, mean flow completion time.
  ``slack(p) = fs(p) · D`` with ``fs`` the flow's size and ``D`` much
  larger than any network delay, which makes LSTF shadow SJF while
  retaining slack dynamics as a tie-breaker.
* :class:`ConstantSlack` — §3.2, tail packet delays.  Every packet starts
  with the same budget, making LSTF identical to FIFO+ [11].
* :class:`VirtualClockSlack` — §3.3, fairness.  Virtual-clock [32] style
  spacing: the first packet of a flow gets zero slack and packet *i* gets

      slack(p_i) = max(0, slack(p_{i−1}) + bits(p_{i−1})/r_est − (i(p_i) − i(p_{i−1})))

  which converges to the fair share asymptotically for any estimate
  ``r_est ≤ r*`` (evaluated in Figure 4).  Weighted fairness falls out of
  scaling ``r_est`` per flow (``weight`` multiplier).

All policies are deliberately *stateful only at the ingress*, per the
paper's model (constraint 3 of §2.1: header initialisation sees only the
packet's own flow).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.flow import Flow
    from repro.core.packet import Packet

__all__ = [
    "ConstantSlack",
    "FlowSizeSlack",
    "SlackPolicy",
    "VirtualClockSlack",
    "parse_slack_policy",
]


def parse_slack_policy(name: str) -> "SlackPolicy":
    """Parse a textual policy spec into a :class:`SlackPolicy`.

    The grammar is ``kind`` or ``kind:value``: ``"constant"`` /
    ``"constant:0.5"`` (slack seconds), ``"flow-size"`` /
    ``"flow-size:2.0"`` (D, seconds/byte), ``"virtual-clock:1e6"``
    (rate estimate, bits/second — the value is required).  This is how
    declarative specs (:class:`repro.api.spec.ExperimentSpec`'s
    ``slack_policy`` field) and the CLI ``--slack`` flag name policies.
    """
    kind, sep, arg = name.partition(":")
    value: float | None = None
    if sep:
        try:
            value = float(arg)
        except ValueError:
            raise WorkloadError(
                f"slack policy value {arg!r} in {name!r} is not a number"
            ) from None
    if kind == "constant":
        return ConstantSlack(1.0 if value is None else value)
    if kind == "flow-size":
        return FlowSizeSlack(1.0 if value is None else value)
    if kind == "virtual-clock":
        if value is None:
            raise WorkloadError(
                "virtual-clock needs a rate estimate in bits/s, "
                "e.g. 'virtual-clock:1e6'"
            )
        return VirtualClockSlack(value)
    raise WorkloadError(
        f"unknown slack policy {name!r}; choose from "
        "'constant[:seconds]', 'flow-size[:D]', 'virtual-clock:rate'"
    )


class SlackPolicy:
    """Assigns the initial slack header when a packet enters the network."""

    def assign(self, packet: "Packet", flow: "Flow", now: float) -> None:
        raise NotImplementedError


class ConstantSlack(SlackPolicy):
    """Uniform slack for every packet — LSTF becomes FIFO+ (§3.2).

    The paper uses 1 second, "much larger than the delay seen by any
    packet", so slack never runs out and only the *relative* drain from
    upstream waits matters.
    """

    def __init__(self, slack: float = 1.0) -> None:
        if slack < 0:
            raise WorkloadError(f"constant slack must be >= 0, got {slack!r}")
        self.slack = slack

    def assign(self, packet: "Packet", flow: "Flow", now: float) -> None:
        packet.slack = self.slack


class FlowSizeSlack(SlackPolicy):
    """Slack proportional to flow size — LSTF tracks SJF (§3.1).

    ``slack(p) = fs(p) · D`` with ``fs(p)`` in bytes and ``D`` in
    seconds/byte.  The paper's D = 1 s (with fs measured in packets of an
    MSS) dwarfs any queueing delay; the default here scales equivalently.
    """

    def __init__(self, d: float = 1.0) -> None:
        if d <= 0:
            raise WorkloadError(f"D must be positive, got {d!r}")
        self.d = d

    def assign(self, packet: "Packet", flow: "Flow", now: float) -> None:
        packet.slack = packet.flow_size * self.d


class VirtualClockSlack(SlackPolicy):
    """Virtual-clock pacing slack for asymptotic fairness (§3.3).

    Parameters
    ----------
    rate_estimate:
        ``r_est`` in bits/second — an estimate of (or lower bound on) the
        fair share rate ``r*``.  Convergence holds for any value ``≤ r*``
        as long as all flows use the same one.
    """

    def __init__(self, rate_estimate: float) -> None:
        if rate_estimate <= 0:
            raise WorkloadError(f"rate estimate must be positive, got {rate_estimate!r}")
        self.rate_estimate = rate_estimate
        self._last_slack: dict[int, float] = {}
        self._last_arrival: dict[int, float] = {}
        self._last_size: dict[int, int] = {}

    def assign(self, packet: "Packet", flow: "Flow", now: float) -> None:
        fid = flow.fid
        rate = self.rate_estimate * flow.weight
        previous_arrival = self._last_arrival.get(fid)
        if previous_arrival is None:
            slack = 0.0
        else:
            spacing = 8.0 * self._last_size[fid] / rate
            slack = max(
                0.0,
                self._last_slack[fid] + spacing - (now - previous_arrival),
            )
        packet.slack = slack
        self._last_slack[fid] = slack
        self._last_arrival[fid] = now
        self._last_size[fid] = packet.size
