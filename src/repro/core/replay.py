"""Recording and replaying schedules (§2).

The workflow the theory section defines, made executable:

1. **Record.**  Run any workload under any collection of per-router
   scheduling algorithms.  :func:`record_schedule` turns the tracer output
   into a :class:`RecordedSchedule` — the set
   ``{(path(p), i(p), o(p))}`` plus, for the omniscient mode, the per-hop
   output times ``o(p, α)``.
2. **Replay.**  :func:`replay_schedule` rebuilds a *fresh* network of the
   same topology, installs a candidate UPS on every port, stamps each
   packet's header from the recorded black-box information (or the per-hop
   timetable in omniscient mode), re-injects every packet at its original
   ingress time, and runs.
3. **Judge.**  The :class:`ReplayResult` compares ``o'(p)`` against
   ``o(p)``: the replay succeeds for a packet iff ``o'(p) ≤ o(p)``
   (footnote 2 of the paper: early is fine — the egress can always delay).
   Following §2.3 we report both the raw overdue fraction and the fraction
   overdue by more than ``T``, one bottleneck transmission time.

Replay modes
------------
``"lstf"``        non-preemptive LSTF, the paper's default (§2.3)
``"lstf-preemptive"`` preemptive LSTF, the theoretical variant (§2.1)
``"edf"``         network-wide EDF (Appendix E; equivalent to LSTF)
``"priority"``    simple priorities with ``priority(p) = o(p)`` (§2.3(7))
``"omniscient"``  per-hop timetable priorities (Appendix B; always perfect)
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.packet import Packet
from repro.core.slack import initialize_replay_slack
from repro.errors import ReplayError, RoutingError
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.lstf import LstfScheduler
from repro.schedulers.omniscient import OmniscientScheduler
from repro.schedulers.priority import PriorityScheduler
from repro.units import MTU, TIME_EPSILON

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network

__all__ = [
    "REPLAY_MODES",
    "SCHEDULE_FORMAT",
    "SCHEDULE_FORMAT_VERSION",
    "RecordedPacket",
    "RecordedSchedule",
    "ReplayResult",
    "record_schedule",
    "replay_schedule",
]

#: The replay modes :func:`replay_schedule` understands.
REPLAY_MODES = (
    "lstf",
    "lstf-preemptive",
    "edf",
    "edf-preemptive",
    "priority",
    "omniscient",
)

#: Magic string identifying a serialised :class:`RecordedSchedule` document.
SCHEDULE_FORMAT = "repro.recorded_schedule"

#: Version of the serialised document layout (see
#: :meth:`RecordedSchedule.to_dict`).  v2 added the detached
#: ``content_hash`` written by :func:`repro.core.trace_io.save_schedule`;
#: the packet rows are unchanged from v1, so both versions load.
SCHEDULE_FORMAT_VERSION = 2

#: Document versions :meth:`RecordedSchedule.from_dict` accepts.
_READABLE_VERSIONS = (1, SCHEDULE_FORMAT_VERSION)


class RecordedPacket:
    """One packet of a recorded schedule (Appendix A notation)."""

    __slots__ = (
        "pid",
        "flow_id",
        "flow_size",
        "size",
        "src",
        "dst",
        "ingress_time",
        "output_time",
        "path",
        "hop_tx",
        "hop_waits",
    )

    def __init__(
        self,
        pid: int,
        flow_id: int,
        flow_size: int,
        size: int,
        src: str,
        dst: str,
        ingress_time: float,
        output_time: float,
        path: tuple[str, ...],
        hop_tx: tuple[float, ...],
        hop_waits: tuple[float, ...],
    ) -> None:
        self.pid = pid
        self.flow_id = flow_id
        self.flow_size = flow_size
        self.size = size
        self.src = src
        self.dst = dst
        self.ingress_time = ingress_time
        self.output_time = output_time
        self.path = path
        self.hop_tx = hop_tx
        self.hop_waits = hop_waits

    @property
    def total_wait(self) -> float:
        """Total queueing delay the packet accumulated, summed over hops."""
        return sum(self.hop_waits)

    def congestion_points(self, epsilon: float = 1e-12) -> int:
        """Hops at which the packet was forced to wait (§2.2)."""
        return sum(1 for w in self.hop_waits if w > epsilon)

    def to_dict(self) -> dict[str, Any]:
        """One JSON-scalar row of the serialised schedule document.

        Uses the paper's short names for the two schedule-defining times:
        ``"i"`` is the ingress time ``i(p)``, ``"o"`` the output time
        ``o(p)``.  Lossless under :meth:`from_dict` (floats survive JSON
        round-trips exactly).
        """
        return {
            "pid": self.pid,
            "flow_id": self.flow_id,
            "flow_size": self.flow_size,
            "size": self.size,
            "src": self.src,
            "dst": self.dst,
            "i": self.ingress_time,
            "o": self.output_time,
            "path": list(self.path),
            "hop_tx": list(self.hop_tx),
            "hop_waits": list(self.hop_waits),
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "RecordedPacket":
        """Rebuild one packet from a :meth:`to_dict` row."""
        return cls(
            pid=row["pid"],
            flow_id=row["flow_id"],
            flow_size=row["flow_size"],
            size=row["size"],
            src=row["src"],
            dst=row["dst"],
            ingress_time=row["i"],
            output_time=row["o"],
            path=tuple(row["path"]),
            hop_tx=tuple(row["hop_tx"]),
            hop_waits=tuple(row["hop_waits"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecordedPacket #{self.pid} {self.src}->{self.dst} "
            f"i={self.ingress_time:.6f} o={self.output_time:.6f}>"
        )


class RecordedSchedule:
    """The set ``{(path(p), i(p), o(p))}`` produced by an original run."""

    def __init__(
        self,
        packets: list[RecordedPacket],
        threshold: float,
        description: str = "",
    ) -> None:
        if not packets:
            raise ReplayError("recorded schedule contains no delivered packets")
        self.packets = packets
        #: Overdue threshold ``T`` — one bottleneck transmission time (§2.3).
        self.threshold = threshold
        self.description = description

    def __len__(self) -> int:
        """Number of recorded (delivered) packets."""
        return len(self.packets)

    def max_congestion_points(self) -> int:
        """Largest per-packet congestion point count (drives replayability)."""
        return max(p.congestion_points() for p in self.packets)

    def congestion_point_histogram(self) -> dict[int, int]:
        """Map congestion-point count → number of packets with that count."""
        hist: dict[int, int] = {}
        for p in self.packets:
            c = p.congestion_points()
            hist[c] = hist.get(c, 0) + 1
        return dict(sorted(hist.items()))

    # -- the stable serialised format -------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The schedule as a versioned, JSON-serialisable document.

        Lossless under :meth:`from_dict` — every field (including float
        times, which JSON round-trips exactly via ``repr``) survives a
        serialise → deserialise cycle bit-for-bit, so a replay of the
        reloaded schedule is byte-identical to a replay of this object.
        """
        return {
            "format": SCHEDULE_FORMAT,
            "version": SCHEDULE_FORMAT_VERSION,
            "description": self.description,
            "threshold": self.threshold,
            "packets": [p.to_dict() for p in self.packets],
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "RecordedSchedule":
        """Rebuild a schedule from :meth:`to_dict` output.

        Raises :class:`~repro.errors.ReplayError` on a foreign document
        or an unsupported format version.
        """
        if document.get("format") != SCHEDULE_FORMAT:
            raise ReplayError(
                f"not a recorded-schedule document (format="
                f"{document.get('format')!r})"
            )
        if document.get("version") not in _READABLE_VERSIONS:
            raise ReplayError(
                f"recorded-schedule version {document.get('version')!r} is "
                f"not supported; this library reads versions "
                f"{_READABLE_VERSIONS}"
            )
        return cls(
            [RecordedPacket.from_dict(row) for row in document["packets"]],
            threshold=document["threshold"],
            description=document.get("description", ""),
        )

    def canonical_json(self) -> str:
        """Key-sorted, separator-free JSON — the content-hash preimage."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def content_hash(self) -> str:
        """SHA-256 over :meth:`canonical_json` — a stable schedule identity.

        Two recordings hash equal iff they describe the same schedule
        (same packets, times, paths, threshold, description); the hash is
        what :func:`repro.core.trace_io.save_schedule` embeds for
        integrity checking and what cache tooling can key on.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecordedSchedule {len(self.packets)} packets "
            f"T={self.threshold:.3g}s {self.description!r}>"
        )


def record_schedule(
    network: "Network",
    until: float | None = None,
    description: str = "",
    require_all_delivered: bool = True,
) -> RecordedSchedule:
    """Run ``network`` to completion and capture the schedule it produced.

    Traffic must already be installed (e.g. via
    :func:`repro.transport.udp.install_udp_flows`).  Replay semantics
    require a dropless original (§2.1 assumes no losses), so by default any
    drop or undelivered packet is an error.
    """
    network.run(until=until)
    tracer = network.tracer
    if require_all_delivered:
        if tracer.drops:
            raise ReplayError(
                f"original run dropped {tracer.drops} packets; replay is only "
                "defined for dropless schedules (use larger buffers)"
            )
        undelivered = len(tracer.records) - tracer.delivered_count()
        if undelivered:
            raise ReplayError(
                f"{undelivered} packets still in flight; run the original "
                "schedule to completion (until=None) before recording"
            )
    packets = [
        RecordedPacket(
            pid=rec.pid,
            flow_id=rec.flow_id,
            flow_size=rec.size,
            size=rec.size,
            src=rec.src,
            dst=rec.dst,
            ingress_time=rec.created,
            output_time=rec.exit,
            path=tuple(rec.path),
            hop_tx=tuple(rec.hop_tx),
            hop_waits=tuple(rec.hop_waits),
        )
        for rec in tracer.delivered_records()
    ]
    packets.sort(key=lambda p: (p.ingress_time, p.pid))
    return RecordedSchedule(
        packets, threshold=network.bottleneck_tx_time(MTU), description=description
    )


class ReplayResult:
    """Per-packet comparison of a replay against its recorded schedule."""

    def __init__(
        self,
        schedule: RecordedSchedule,
        mode: str,
        replay_outputs: dict[int, float],
        replay_waits: dict[int, float],
    ) -> None:
        self.schedule = schedule
        self.mode = mode
        records = schedule.packets
        self.lateness = np.array(
            [replay_outputs[p.pid] - p.output_time for p in records]
        )
        self._original_waits = np.array([p.total_wait for p in records])
        self._replay_waits = np.array([replay_waits[p.pid] for p in records])

    # --- §2.3 metrics -----------------------------------------------------

    @property
    def num_packets(self) -> int:
        """Number of packets judged (== packets in the recorded schedule)."""
        return len(self.lateness)

    @property
    def fraction_overdue(self) -> float:
        """Fraction of packets with ``o'(p) > o(p)`` (Table 1, column 1)."""
        return float(np.mean(self.lateness > TIME_EPSILON))

    @property
    def fraction_overdue_beyond_threshold(self) -> float:
        """Fraction overdue by more than ``T`` (Table 1, column 2)."""
        return float(np.mean(self.lateness > self.schedule.threshold + TIME_EPSILON))

    def fraction_overdue_beyond(self, threshold: float) -> float:
        """Fraction of packets overdue by more than an arbitrary threshold."""
        return float(np.mean(self.lateness > threshold + TIME_EPSILON))

    @property
    def max_lateness(self) -> float:
        """Worst single-packet lateness ``max(o'(p) - o(p))`` in seconds."""
        return float(self.lateness.max())

    @property
    def perfect(self) -> bool:
        """True iff every packet met its target (the formal replay condition)."""
        return bool(np.all(self.lateness <= TIME_EPSILON))

    def queueing_delay_ratios(self) -> np.ndarray:
        """Per-packet replay:original queueing delay ratios (Figure 1).

        Packets that saw zero queueing in the original schedule are
        excluded (the ratio is undefined); this matches the figure, which
        plots the distribution over queued packets.
        """
        mask = self._original_waits > 0
        return self._replay_waits[mask] / self._original_waits[mask]

    def summary(self) -> str:
        """One human-readable line: mode, packet count, both §2.3 fractions."""
        return (
            f"replay[{self.mode}] over {self.num_packets} packets: "
            f"{self.fraction_overdue:.4f} overdue, "
            f"{self.fraction_overdue_beyond_threshold:.4f} overdue > T"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReplayResult {self.summary()}>"


def _install_mode(network: "Network", mode: str) -> None:
    if mode == "lstf":
        network.install_uniform(LstfScheduler)
    elif mode == "lstf-preemptive":
        network.use_preemptive_ports(LstfScheduler)
    elif mode == "edf":
        network.install_uniform(EdfScheduler)
    elif mode == "edf-preemptive":
        # Appendix E at the preemptive port: EDF's static local priority
        # equals LSTF's static heap key, so this mode must match
        # "lstf-preemptive" exactly (property-tested).
        network.use_preemptive_ports(EdfScheduler)
    elif mode == "priority":
        network.install_uniform(PriorityScheduler)
    elif mode == "omniscient":
        network.install_uniform(OmniscientScheduler)
    else:
        raise ReplayError(f"unknown replay mode {mode!r}; choose from {REPLAY_MODES}")


def replay_schedule(
    schedule: RecordedSchedule,
    network_factory: Callable[[], "Network"],
    mode: str = "lstf",
    priority_fn: Callable[[RecordedPacket], float] | None = None,
    verify_routes: bool = True,
    output_time_fn: Callable[[RecordedPacket], float] | None = None,
) -> ReplayResult:
    """Replay a recorded schedule under a candidate UPS.

    Parameters
    ----------
    schedule:
        Output of :func:`record_schedule`.
    network_factory:
        Builds a fresh network with the same topology as the recording
        (the replay starts from empty queues at time zero).
    mode:
        One of :data:`REPLAY_MODES`.
    priority_fn:
        Only for ``mode="priority"``: maps a recorded packet to its static
        priority.  Defaults to ``o(p)``, the paper's "most intuitive"
        assignment (§2.3(7)).
    verify_routes:
        Check (once per src/dst pair) that the fresh network routes
        packets along the recorded paths — a topology mismatch would make
        slack values meaningless.
    output_time_fn:
        Optional degraded view of ``o(p)`` used for *header
        initialisation only* — packets are still judged against the true
        recorded output times.  This powers the §5 "least information"
        study: e.g. quantising ``o(p)`` models an ingress that learns the
        target at reduced precision.  Values below the uncongested
        traversal time are clamped to zero slack.
    """
    network = network_factory()
    _install_mode(network, mode)
    if priority_fn is None:
        priority_fn = lambda rec: rec.output_time  # noqa: E731 - tiny default

    verified_pairs: set[tuple[str, str]] = set()
    for rec in schedule.packets:
        if verify_routes and (rec.src, rec.dst) not in verified_pairs:
            try:
                route = network.route(rec.src, rec.dst)
            except RoutingError as exc:
                raise ReplayError(
                    f"replay network cannot route {rec.src!r}->{rec.dst!r}: {exc}"
                ) from exc
            if route != rec.path:
                raise ReplayError(
                    f"replay network routes {rec.src!r}->{rec.dst!r} via "
                    f"{route}, but the schedule was recorded along {rec.path}"
                )
            verified_pairs.add((rec.src, rec.dst))
        packet = Packet(
            flow_id=rec.flow_id,
            size=rec.size,
            src=rec.src,
            dst=rec.dst,
            created=rec.ingress_time,
            pid=rec.pid,
        )
        packet.flow_size = rec.flow_size
        header_target = (
            rec.output_time if output_time_fn is None else output_time_fn(rec)
        )
        if mode in ("lstf", "lstf-preemptive", "edf", "edf-preemptive"):
            # Clamp degraded targets below the uncongested floor to "zero
            # slack" rather than rejecting the replay.
            floor = rec.ingress_time + network.tmin(rec.src, rec.dst, rec.size)
            initialize_replay_slack(packet, network, max(header_target, floor))
        elif mode == "priority":
            packet.priority = priority_fn(rec)
        elif mode == "omniscient":
            packet.hop_times = rec.hop_tx
        network.inject_at(rec.ingress_time, packet)

    network.run()
    tracer = network.tracer
    outputs: dict[int, float] = {}
    waits: dict[int, float] = {}
    for rec in tracer.delivered_records():
        outputs[rec.pid] = rec.exit
        waits[rec.pid] = rec.total_wait
    missing = len(schedule.packets) - len(outputs)
    if missing:
        raise ReplayError(f"replay lost {missing} packets (drops or deadlock)")
    return ReplayResult(schedule, mode, outputs, waits)
