"""Minimal ASCII table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence

__all__ = ["Table"]


class Table:
    """Accumulate rows, render aligned columns.

    >>> t = Table(["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render())
    name   | value
    -------+------
    alpha  | 1.5
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self._headers = [str(h) for h in headers]
        self._rows: list[list[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        row = [self._format(c) for c in cells]
        if len(row) != len(self._headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append(row)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) < 1e-3 or abs(cell) >= 1e5:
                return f"{cell:.3g}"
            return f"{cell:.4f}".rstrip("0").rstrip(".")
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self._headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self._headers).replace(" | ", "  | "))
        lines.append("-+-".join("-" * (w + 1) for w in widths).rstrip("-") + "-")
        lines.extend(fmt(r) for r in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
