"""Minimal tabular reporting for experiment output.

A :class:`Table` accumulates *raw* cells and renders them on demand:
aligned ASCII for terminals (:meth:`Table.render`), JSON for artifacts
and tooling (:meth:`Table.to_json`), CSV for spreadsheets
(:meth:`Table.to_csv`).  All three share one formatting pipeline, so the
``--json`` CLI path can never drift from what the ASCII table shows.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

__all__ = ["Table"]


def _plain(cell: object) -> object:
    """Coerce a cell to a JSON-serialisable scalar.

    numpy scalars expose ``.item()``; everything non-scalar degrades to
    ``str`` so a table can always serialise.
    """
    if isinstance(cell, (bool, int, float, str)) or cell is None:
        return cell
    item = getattr(cell, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(cell)


class Table:
    """Accumulate rows, render aligned columns.

    >>> t = Table(["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render())
    name  | value
    ------+------
    alpha | 1.5
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self._headers = [str(h) for h in headers]
        self._rows: list[list[object]] = []

    @property
    def headers(self) -> list[str]:
        return list(self._headers)

    @property
    def rows(self) -> list[list[object]]:
        """The raw (unformatted) cells, one list per row."""
        return [list(row) for row in self._rows]

    def add_row(self, cells: Sequence[object]) -> None:
        row = [_plain(c) for c in cells]
        if len(row) != len(self._headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self._headers)} columns"
            )
        self._rows.append(row)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            if abs(cell) < 1e-3 or abs(cell) >= 1e5:
                return f"{cell:.3g}"
            return f"{cell:.4f}".rstrip("0").rstrip(".")
        return str(cell)

    def render(self) -> str:
        formatted = [[self._format(c) for c in row] for row in self._rows]
        widths = [len(h) for h in self._headers]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self._headers))
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(r) for r in formatted)
        return "\n".join(lines)

    def to_json(self, indent: int | None = None) -> str:
        """Serialise title, headers, and *raw* rows as a JSON object.

        >>> t = Table(["name", "value"], title="demo")
        >>> t.add_row(["alpha", 1.5])
        >>> t.to_json()
        '{"title": "demo", "headers": ["name", "value"], "rows": [["alpha", 1.5]]}'
        """
        payload = {"title": self.title, "headers": self.headers, "rows": self.rows}
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        """Serialise as CSV, cells formatted exactly like :meth:`render`.

        >>> t = Table(["name", "value"])
        >>> t.add_row(["alpha", 0.00001234])
        >>> print(t.to_csv(), end="")
        name,value
        alpha,1.23e-05
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self._headers)
        for row in self._rows:
            writer.writerow([self._format(c) for c in row])
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.render()
