"""ASCII reporting: tables and plots in the paper's format."""

from repro.analysis.tables import Table
from repro.analysis.plots import ascii_cdf, ascii_series

__all__ = ["Table", "ascii_cdf", "ascii_series"]
