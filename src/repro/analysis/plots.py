"""ASCII plots: CDFs and time series, for terminal-friendly figures."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["ascii_cdf", "ascii_series"]


def ascii_cdf(
    samples: Iterable[float],
    title: str = "",
    width: int = 50,
    points: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
) -> str:
    """Render an empirical CDF as quantile rows with bars.

    Each row shows ``P(X <= value) = q`` for the requested quantiles.
    """
    data = np.sort(np.asarray(list(samples), dtype=float))
    if data.size == 0:
        raise ValueError("cannot plot an empty CDF")
    lines = [title] if title else []
    for q in points:
        value = float(np.quantile(data, min(q, 1.0)))
        bar = "#" * max(1, int(round(q * width)))
        lines.append(f"  p{int(q * 100):3d}  {value:12.6g}  |{bar}")
    return "\n".join(lines)


def ascii_series(
    x: Sequence[float],
    y: Sequence[float],
    title: str = "",
    width: int = 50,
    max_rows: int = 20,
) -> str:
    """Render a time series as one bar per (down-sampled) x value."""
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.size != ys.size or xs.size == 0:
        raise ValueError("x and y must be equal-length, non-empty")
    if xs.size > max_rows:
        idx = np.linspace(0, xs.size - 1, max_rows).astype(int)
        xs, ys = xs[idx], ys[idx]
    top = float(ys.max()) or 1.0
    lines = [title] if title else []
    for xv, yv in zip(xs, ys):
        bar = "#" * int(round(width * yv / top))
        lines.append(f"  {xv:10.6g}  {yv:10.6g}  |{bar}")
    return "\n".join(lines)
