"""repro — a reproduction of *Universal Packet Scheduling* (NSDI 2016).

Mittal, Agarwal, Ratnasamy, Shenker asked whether one packet scheduling
algorithm can replace all others, answered "almost", and identified Least
Slack Time First (LSTF) as the near-universal candidate.  This package
rebuilds their entire evaluation stack in pure Python:

* a deterministic store-and-forward network simulator (:mod:`repro.sim`),
* the scheduler zoo (:mod:`repro.schedulers`) — FIFO, LIFO, Random, SJF,
  SRPT, FQ, DRR, FIFO+, static priorities, LSTF, network-EDF, omniscient,
* the record/replay machinery of §2 (:mod:`repro.core.replay`),
* the practical slack heuristics of §3 (:mod:`repro.core.heuristics`),
* the paper's topologies, workloads, transports, metrics, the appendix
  counter-example gadgets (:mod:`repro.theory`), and experiment drivers
  for every table and figure (:mod:`repro.experiments`),
* a unified experiment API (:mod:`repro.api`): declarative specs, a
  registry of every paper artefact, a serial/parallel runner, and
  structured JSON artifacts,
* queue-backed distributed execution (:mod:`repro.cluster`): a durable
  SQLite job queue with crash-safe leases, worker daemons
  (``repro worker``), and ``run_many(..., executor="queue")`` /
  ``submit``/``status``/``gather`` for sharding sweeps across local
  processes — byte-identical to serial runs,
* record-once/replay-many (:mod:`repro.core.trace_io`): recorded
  schedules are content-addressed artifacts in a shared
  :class:`ScheduleStore`, ``ExperimentSpec(replay_modes=...)`` sweeps
  candidate UPSes over one recording, and ``run_many`` simulates each
  unique original schedule exactly once under every executor (see
  ``docs/replay.md``),
* simulate-once/branch-many (:mod:`repro.sim.checkpoint`): engine and
  network state checkpoint/restore, warm-up snapshots as hash-verified
  content-addressed artifacts in a shared :class:`CheckpointStore`, and
  a ``run_many`` pre-pass that warms each ``branch`` sweep's shared
  prefix exactly once (see ``docs/checkpointing.md``),
* declarative scenarios (:mod:`repro.scenarios`): registry-enumerable
  (topology × traffic pattern × flow-size distribution × impairments)
  bundles whose flow lists are deterministic functions of the seed, a
  ``scenarios`` sweep axis on :class:`ExperimentSpec`, and the
  ``scenario-matrix`` experiment reporting Jain fairness and link
  utilisation per leg (see ``docs/scenarios.md``).

Quick taste (see ``examples/quickstart.py`` for the narrated version)::

    from repro import ExperimentSpec, run, run_many

    # any registered artefact, one declarative call
    artifact = run(ExperimentSpec("table1", duration=0.1,
                                  options={"rows": (0, 13)}))
    print(artifact.table().render())
    artifact.save("artifacts/")              # JSON RunArtifact on disk

    # a seed sweep, fanned out over worker processes
    sweep = ExperimentSpec("fig3", seeds=(1, 2, 3, 4)).sweep()
    artifacts = run_many(sweep, workers=4)

The lower-level record/replay machinery stays first-class — build a
topology, record the original schedule, replay it under a candidate
universal scheduler::

    from repro import (
        build_dumbbell, poisson_flows, install_udp_flows, record_schedule,
        replay_schedule, PoissonWorkload, BoundedPareto,
    )

    make_net = lambda: build_dumbbell(num_pairs=4)
    net = make_net()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(),
        workload=PoissonWorkload(0.7, 50e6, duration=0.1),
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)          # the original (FIFO) schedule
    result = replay_schedule(schedule, make_net, mode="lstf")
    print(result.summary())
"""

from repro.api import (
    ExperimentSpec,
    RunArtifact,
    load_artifact,
    register_experiment,
    run,
    run_many,
)

from repro.core.flow import Flow
from repro.core.heuristics import (
    ConstantSlack,
    FlowSizeSlack,
    SlackPolicy,
    VirtualClockSlack,
    parse_slack_policy,
)
from repro.core.packet import Packet
from repro.core.replay import (
    REPLAY_MODES,
    RecordedPacket,
    RecordedSchedule,
    ReplayResult,
    record_schedule,
    replay_schedule,
)
from repro.core.slack import initialize_replay_slack, replay_slack
from repro.core.trace_io import (
    ScheduleStore,
    active_schedule_store,
    load_schedule,
    save_schedule,
    use_schedule_store,
)
from repro.errors import (
    CheckpointError,
    ConfigurationError,
    ReplayError,
    ReproError,
    RoutingError,
    SchedulerError,
    SimulationError,
    WorkloadError,
)
from repro.obs import (
    FlightRecorder,
    MetricsHub,
    active_metrics_hub,
    use_metrics_hub,
)
from repro.scenarios import (
    Scenario,
    build_scenario_network,
    get_scenario,
    register_scenario,
    scenario_flows,
    scenario_names,
)
from repro.schedulers import (
    DrrScheduler,
    EdfScheduler,
    FifoPlusScheduler,
    FifoScheduler,
    FqScheduler,
    LifoScheduler,
    LstfScheduler,
    OmniscientScheduler,
    PriorityScheduler,
    RandomScheduler,
    Scheduler,
    SjfScheduler,
    SrptScheduler,
    TimetableScheduler,
    make_scheduler,
    scheduler_names,
)
from repro.schedulers.pheap import PHeap, PHeapLstfScheduler
from repro.sim.aqm import CoDelAqm, RedAqm
from repro.sim.checkpoint import (
    CheckpointStore,
    Snapshot,
    active_checkpoint_store,
    load_checkpoint,
    restore_snapshot,
    save_checkpoint,
    snapshot_network,
    use_checkpoint_store,
)
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.topology import (
    FatTreeConfig,
    Internet2Config,
    RocketFuelConfig,
    build_dumbbell,
    build_fattree,
    build_internet2,
    build_linear,
    build_parking_lot,
    build_rocketfuel,
    build_single_switch,
)
from repro.transport.tcp import TcpStats, install_tcp_flows
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import (
    BoundedPareto,
    EmpiricalCdf,
    ExponentialSize,
    datacenter_distribution,
    distribution_names,
    internet_distribution,
    make_distribution,
    web_search_distribution,
)
from repro.workload.flows import PoissonWorkload, long_lived_flows, poisson_flows

__version__ = "1.0.0"

__all__ = [
    "BoundedPareto",
    "CheckpointError",
    "CheckpointStore",
    "CoDelAqm",
    "ConfigurationError",
    "ConstantSlack",
    "DrrScheduler",
    "EdfScheduler",
    "EmpiricalCdf",
    "Engine",
    "ExperimentSpec",
    "ExponentialSize",
    "FatTreeConfig",
    "FifoPlusScheduler",
    "FifoScheduler",
    "FlightRecorder",
    "Flow",
    "FlowSizeSlack",
    "FqScheduler",
    "Internet2Config",
    "LifoScheduler",
    "LstfScheduler",
    "MetricsHub",
    "Network",
    "OmniscientScheduler",
    "PHeap",
    "PHeapLstfScheduler",
    "Packet",
    "PoissonWorkload",
    "PriorityScheduler",
    "REPLAY_MODES",
    "RandomScheduler",
    "RecordedPacket",
    "RecordedSchedule",
    "RedAqm",
    "ReplayError",
    "ReplayResult",
    "ReproError",
    "RocketFuelConfig",
    "RoutingError",
    "RunArtifact",
    "Scenario",
    "ScheduleStore",
    "Scheduler",
    "SchedulerError",
    "SimulationError",
    "SjfScheduler",
    "SlackPolicy",
    "Snapshot",
    "SrptScheduler",
    "TcpStats",
    "TimetableScheduler",
    "VirtualClockSlack",
    "WorkloadError",
    "active_checkpoint_store",
    "active_metrics_hub",
    "active_schedule_store",
    "build_dumbbell",
    "build_fattree",
    "build_internet2",
    "build_linear",
    "build_parking_lot",
    "build_rocketfuel",
    "build_scenario_network",
    "build_single_switch",
    "datacenter_distribution",
    "distribution_names",
    "get_scenario",
    "initialize_replay_slack",
    "install_tcp_flows",
    "install_udp_flows",
    "internet_distribution",
    "load_artifact",
    "load_checkpoint",
    "load_schedule",
    "long_lived_flows",
    "make_distribution",
    "make_scheduler",
    "parse_slack_policy",
    "poisson_flows",
    "record_schedule",
    "register_experiment",
    "register_scenario",
    "replay_schedule",
    "replay_slack",
    "restore_snapshot",
    "run",
    "run_many",
    "save_checkpoint",
    "save_schedule",
    "scenario_flows",
    "scenario_names",
    "scheduler_names",
    "snapshot_network",
    "use_checkpoint_store",
    "use_metrics_hub",
    "use_schedule_store",
    "web_search_distribution",
]
