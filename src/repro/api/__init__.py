"""The unified experiment API: spec → registry → runner → artifact.

Every paper artefact (and every future scenario) is driven the same way::

    from repro.api import ExperimentSpec, run, run_many

    artifact = run(ExperimentSpec("table1", duration=0.1))
    print(artifact.table().render())          # the ASCII table
    artifact.save("artifacts/")               # a JSON RunArtifact

    # a seed sweep across two worker processes
    sweep = ExperimentSpec("fig3", seeds=(1, 2, 3, 4)).sweep()
    artifacts = run_many(sweep, workers=2)

The pieces:

* :mod:`repro.api.spec` — :class:`ExperimentSpec`, the frozen,
  JSON-round-trippable description of one run or sweep;
* :mod:`repro.api.registry` — ``@register_experiment`` and
  :func:`get`, mapping names like ``"fig2"`` to spec-driven drivers;
* :mod:`repro.api.runner` — :func:`run` / :func:`run_many`, serial or
  ``multiprocessing`` execution with wall-time capture;
* :mod:`repro.api.results` — :class:`RunArtifact`, the structured
  result that serialises to JSON and renders through
  :class:`~repro.analysis.tables.Table`.
"""

from repro.api.registry import (
    REGISTRY,
    ExperimentRegistry,
    RegisteredExperiment,
    experiment_names,
    get,
    register_experiment,
)
from repro.api.results import RunArtifact, load_artifact, spec_run_id
from repro.api.runner import EXECUTORS, cached_artifact, run, run_many
from repro.api.spec import ExperimentSpec

__all__ = [
    "EXECUTORS",
    "ExperimentRegistry",
    "ExperimentSpec",
    "REGISTRY",
    "RegisteredExperiment",
    "RunArtifact",
    "cached_artifact",
    "experiment_names",
    "get",
    "load_artifact",
    "register_experiment",
    "run",
    "run_many",
    "spec_run_id",
]
