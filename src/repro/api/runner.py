"""Execute experiment specs, serially or across worker processes.

:func:`run` resolves a spec against the registry, resets the global
packet-id counter (so every run sees the same id stream no matter what
ran before it in the process — the determinism the artifact contract
depends on), executes the driver under a wall-clock timer, and wraps the
result into a :class:`~repro.api.results.RunArtifact` together with the
engine's event-throughput accounting
(:data:`repro.sim.engine.ENGINE_PERF`).

Content-addressed caching: artifact filenames are derived from the spec
alone (:func:`~repro.api.results.spec_run_id`), so when ``out_dir``
already holds the spec's run-id the saved artifact *is* the answer.
``run(spec, out_dir=...)`` returns it without simulating unless
``force=True``; fresh results are saved back into the cache.

:func:`run_many` maps :func:`run` over a list of specs — a seed or
scheduler sweep built with :meth:`ExperimentSpec.sweep` — in this
process, via a ``multiprocessing`` pool, or through the durable job
queue of :mod:`repro.cluster` (``executor="queue"``).  Worker processes
are safe because the simulator is deterministic and single-threaded per
run and specs/artifacts are plain picklable data; parallel and
distributed results are required to be byte-identical to serial ones
(guarded by the test suite).
"""

from __future__ import annotations

import contextlib
import functools
import multiprocessing
import os
import signal
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.api.registry import REGISTRY, ExperimentRegistry
from repro.api.results import RunArtifact, load_artifact, spec_run_id
from repro.api.spec import ExperimentSpec
from repro.core.packet import reset_packet_ids
from repro.core.trace_io import ScheduleStore, use_schedule_store
from repro.errors import ConfigurationError, require_positive_int
from repro.obs.hub import MetricsHub, use_metrics_hub
from repro.obs.spans import SPANS
from repro.sim.checkpoint import CheckpointStore, use_checkpoint_store
from repro.sim.engine import ENGINE_PERF
from repro.sim.resume import CheckpointPolicy, ResumeSession, use_resume_session

__all__ = ["EXECUTORS", "cached_artifact", "obs_enabled_from_env", "run",
           "run_many"]

#: Environment switch for run telemetry: set to anything but ""/"0" and
#: ``run(obs=None)`` attaches a fresh :class:`~repro.obs.hub.MetricsHub`.
#: An env var (rather than a parameter threaded through ``run_many``)
#: because it must reach forked pool children and queue drain workers
#: without touching their picklable call signatures.
OBS_ENV = "REPRO_OBS"


def obs_enabled_from_env() -> bool:
    """True when :data:`OBS_ENV` asks for telemetry."""
    return os.environ.get(OBS_ENV, "") not in ("", "0")


def _resolve_obs(obs: "bool | MetricsHub | None") -> MetricsHub | None:
    """The hub a run should use: explicit hub > explicit bool > env."""
    if obs is None:
        obs = obs_enabled_from_env()
    if obs is True:
        return MetricsHub()
    if obs is False:
        return None
    return obs

#: Subdirectory (of an ``out_dir`` or a queue's ``artifacts/``) holding
#: the sweep's shared recorded-schedule cache.
SCHEDULE_SUBDIR = "schedules"

#: Subdirectory (of an ``out_dir`` or a queue's ``artifacts/``) holding
#: the sweep's shared warm-up checkpoint cache.
CHECKPOINT_SUBDIR = "checkpoints"


def cached_artifact(spec: ExperimentSpec, out_dir: str | Path) -> RunArtifact | None:
    """The saved artifact for ``spec`` under ``out_dir``, if one exists.

    The artifact's embedded spec must round-trip to the requested one —
    a guard against hand-edited files and hash collisions; mismatches are
    treated as a miss, not an error.
    """
    path = Path(out_dir) / f"{spec_run_id(spec)}.json"
    if not path.is_file():
        return None
    try:
        artifact = load_artifact(path)
    except (OSError, ValueError, TypeError, KeyError, ConfigurationError):
        return None  # unreadable/foreign file: fall through to a fresh run
    if artifact.spec != spec:
        return None
    artifact.from_cache = True
    return artifact


def run(
    spec: ExperimentSpec,
    registry: ExperimentRegistry | None = None,
    out_dir: str | Path | None = None,
    force: bool = False,
    schedule_dir: str | Path | None = None,
    checkpoint_dir: str | Path | None = None,
    obs: "bool | MetricsHub | None" = None,
    checkpoint_policy: "CheckpointPolicy | str | None" = None,
) -> RunArtifact:
    """Execute one spec and return its artifact.

    With ``out_dir`` the directory acts as a content-addressed cache: a
    previously saved artifact for the same spec is returned as-is
    (``artifact.from_cache`` is set), and fresh results are saved there.
    ``force=True`` always re-simulates (and overwrites the cache entry).

    ``schedule_dir`` names the recorded-schedule cache
    (:class:`~repro.core.trace_io.ScheduleStore`) activated around the
    driver call; replay-driven experiments record each original schedule
    into it at most once and answer later requests from disk.  It
    defaults to ``<out_dir>/schedules`` when ``out_dir`` is given, so a
    warm ``--out`` directory caches both halves of a replay experiment.
    ``force`` does not invalidate recorded schedules — recording is
    deterministic, so re-recording could only reproduce the same bytes.

    ``checkpoint_dir`` is the simulate-once analogue: the warm-up
    checkpoint cache (:class:`~repro.sim.checkpoint.CheckpointStore`)
    activated around the driver call, defaulting to
    ``<out_dir>/checkpoints`` when ``out_dir`` is given.  Branch-driven
    experiments simulate each shared warm-up prefix into it at most once
    and restore later legs from disk; artifacts are byte-identical
    either way (same events, same pids — the store credits the restored
    run's accounting), which is what lets the cache be transparent.

    ``obs`` controls run telemetry (:mod:`repro.obs`): pass a
    :class:`~repro.obs.hub.MetricsHub` to collect into it, ``True`` for a
    fresh hub, ``False`` to force it off, or leave the default ``None``
    to consult the :data:`OBS_ENV` environment switch.  When a hub is
    active its deterministic summary lands on ``artifact.obs`` — next to
    the timing section, excluded from the canonical JSON, so artifacts
    stay byte-identical with telemetry on or off.

    ``checkpoint_policy`` (a :class:`~repro.sim.resume.CheckpointPolicy`
    or its ``--checkpoint-every`` string form) arms preemption-safe
    resume: the run writes periodic mid-flight snapshots into the
    checkpoint store and, if an earlier attempt of the same spec was
    killed, fast-forwards through the newest valid snapshot it left
    behind.  Needs a durable store (``out_dir`` or ``checkpoint_dir``).
    The policy never reaches the artifact — resumed and straight runs
    are byte-identical (the fault-injection suite proves it).
    """
    entry = (registry or REGISTRY).get(spec.experiment)
    unknown = [key for key, _ in spec.options if key not in entry.options]
    if unknown:
        accepted = ", ".join(entry.options) or "none"
        raise ConfigurationError(
            f"experiment {entry.name!r} does not read option(s) "
            f"{', '.join(map(repr, unknown))} (accepted: {accepted})"
        )
    if out_dir is not None and not force:
        cached = cached_artifact(spec, out_dir)
        if cached is not None:
            return cached
    if schedule_dir is None and out_dir is not None:
        schedule_dir = Path(out_dir) / SCHEDULE_SUBDIR
    if checkpoint_dir is None and out_dir is not None:
        checkpoint_dir = Path(out_dir) / CHECKPOINT_SUBDIR
    store = ScheduleStore(schedule_dir) if schedule_dir is not None else None
    ckpt_store = (
        CheckpointStore(checkpoint_dir) if checkpoint_dir is not None else None
    )
    if isinstance(checkpoint_policy, str):
        checkpoint_policy = CheckpointPolicy.parse(checkpoint_policy)
    session = None
    if checkpoint_policy is not None:
        if ckpt_store is None:
            raise ConfigurationError(
                "checkpoint_policy needs a durable checkpoint store to "
                "write snapshots into — pass out_dir= or checkpoint_dir="
            )
        session = ResumeSession(spec_run_id(spec), checkpoint_policy, ckpt_store)
    hub = _resolve_obs(obs)
    reset_packet_ids()
    ENGINE_PERF.reset()
    start = time.perf_counter()
    try:
        with use_schedule_store(store), use_checkpoint_store(ckpt_store), \
                use_metrics_hub(hub), use_resume_session(session), \
                SPANS.span("simulate", experiment=spec.experiment,
                           run_id=spec_run_id(spec)):
            output = entry.fn(spec)
    finally:
        reset_packet_ids()
    wall = time.perf_counter() - start
    if isinstance(output, tuple):
        table, metadata = output
    else:
        table, metadata = output, {}
    metadata = dict(metadata)
    # Deterministic event count -> metadata (part of the canonical JSON);
    # wall-clock throughput -> the timing section (excluded from it).
    metadata.setdefault("engine_events", ENGINE_PERF.events)
    artifact = RunArtifact.from_table(
        spec,
        table,
        metadata=metadata,
        wall_time_s=wall,
        events_per_sec=ENGINE_PERF.events_per_sec,
    )
    if hub is not None:
        artifact.obs = hub.summary()
    if out_dir is not None:
        artifact.save(out_dir)
    if session is not None:
        # Success: the snapshot trail has served its purpose.  (A killed
        # run never gets here — its snapshots survive for the retry.)
        session.finish()
    return artifact


#: The execution modes :func:`run_many` understands.
EXECUTORS = ("serial", "process", "queue")


def _pool_worker_init() -> None:
    """Restore default signal dispositions in a fresh pool worker.

    ``fork`` children inherit the parent's signal handlers, and a host
    process may carry a custom graceful-drain SIGTERM handler (the CLI
    ``worker`` verb installs one in-process).  ``Pool.terminate()``
    relies on SIGTERM actually killing idle workers; an inherited
    handler that merely sets a flag would leave a worker blocked on the
    task-queue semaphore forever and turn pool teardown into a deadlock.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)


def _pool(processes: int) -> multiprocessing.pool.Pool:
    """A worker pool whose children always die on terminate (see above)."""
    return multiprocessing.get_context().Pool(
        processes=processes, initializer=_pool_worker_init
    )


def _sweep_recordings(
    spec_list: Sequence[ExperimentSpec],
    out_dir: str | Path | None,
    force: bool,
) -> dict[str, Callable]:
    """The recordings a sweep needs, deduplicated across its specs.

    Specs already answered by the ``out_dir`` artifact cache are skipped
    — they will never touch the schedule store — and specs whose
    experiment registers no ``recordings`` hook contribute nothing.
    """
    needed: dict[str, Callable] = {}
    for spec in spec_list:
        entry = REGISTRY.get(spec.experiment)
        if entry.recordings is None:
            continue
        if out_dir is not None and not force \
                and cached_artifact(spec, out_dir) is not None:
            continue
        needed.update(entry.recordings(spec))
    return needed


def _record_one(schedule_dir: str, key: str, recorder: Callable) -> str:
    """Record one schedule into a store (module-level: picklable for pools)."""
    ScheduleStore(schedule_dir).get_or_record(key, recorder)
    return key


def _record_sweep_schedules(
    spec_list: Sequence[ExperimentSpec],
    schedule_dir: str | Path,
    workers: int,
    out_dir: str | Path | None,
    force: bool,
) -> list[str]:
    """The record-once pre-pass: simulate each missing schedule exactly once.

    Runs before any leg of the sweep, so concurrently executing legs
    (process pool, queue workers) only ever *read* the store and the
    "recorded exactly once" guarantee holds under every executor.
    Recording is itself embarrassingly parallel, so with ``workers > 1``
    and several missing schedules the pre-pass fans out over a process
    pool; returns the keys it recorded.
    """
    store = ScheduleStore(schedule_dir)
    needed = _sweep_recordings(spec_list, out_dir, force)
    missing = [(k, rec) for k, rec in needed.items() if not store.has(k)]
    if not missing:
        return []
    if len(missing) > 1 and workers > 1:
        with _pool(min(workers, len(missing))) as pool:
            return pool.starmap(
                _record_one,
                [(str(schedule_dir), k, rec) for k, rec in missing],
            )
    return [_record_one(str(schedule_dir), k, rec) for k, rec in missing]


def _sweep_shares_recordings(spec_list: Sequence[ExperimentSpec]) -> bool:
    """True when some recorded schedule is needed by more than one leg.

    This is the only case an *ephemeral* store earns its keep: with no
    key shared, every schedule is recorded exactly once by its own leg
    anyway, and the store's serialise/reload round trips would be pure
    overhead (measurable at bench scales).
    """
    seen: set[str] = set()
    for spec in spec_list:
        entry = REGISTRY.get(spec.experiment)
        if entry.recordings is None:
            continue
        for key in entry.recordings(spec):
            if key in seen:
                return True
            seen.add(key)
    return False


@contextlib.contextmanager
def _sweep_schedule_dir(
    spec_list: Sequence[ExperimentSpec],
    out_dir: str | Path | None,
) -> Iterator[Path | None]:
    """Where this sweep's shared schedule store lives.

    ``out_dir`` given → its ``schedules/`` subdirectory (durable: later
    sweeps reuse the recordings, so the store pays off even without
    sharing inside this sweep).  Otherwise, a temporary directory scoped
    to the sweep — but only when the sweep actually shares a recording
    between legs; ``None`` (no store, legs record in-memory) when
    nothing would be reused.
    """
    if out_dir is not None:
        yield Path(out_dir) / SCHEDULE_SUBDIR
        return
    if not _sweep_shares_recordings(spec_list):
        yield None
        return
    with tempfile.TemporaryDirectory(prefix="repro-schedules-") as tmp:
        yield Path(tmp)


def _sweep_checkpoints(
    spec_list: Sequence[ExperimentSpec],
    out_dir: str | Path | None,
    force: bool,
) -> dict[str, Callable]:
    """The warm-up checkpoints a sweep needs, deduplicated across specs.

    The checkpoint mirror of :func:`_sweep_recordings`: specs already
    answered by the ``out_dir`` artifact cache are skipped, and specs
    whose experiment registers no ``checkpoints`` hook contribute
    nothing.
    """
    needed: dict[str, Callable] = {}
    for spec in spec_list:
        entry = REGISTRY.get(spec.experiment)
        if entry.checkpoints is None:
            continue
        if out_dir is not None and not force \
                and cached_artifact(spec, out_dir) is not None:
            continue
        needed.update(entry.checkpoints(spec))
    return needed


def _build_one(checkpoint_dir: str, key: str, builder: Callable) -> str:
    """Build one checkpoint into a store (module-level: picklable for pools)."""
    CheckpointStore(checkpoint_dir).get_or_build(key, builder)
    return key


def _build_sweep_checkpoints(
    spec_list: Sequence[ExperimentSpec],
    checkpoint_dir: str | Path,
    workers: int,
    out_dir: str | Path | None,
    force: bool,
) -> list[str]:
    """The simulate-once pre-pass: warm each missing prefix exactly once.

    Runs before any leg of the sweep, so concurrently executing legs
    (process pool, queue workers) only ever *read* the store and the
    "simulated exactly once" guarantee holds under every executor.
    Distinct prefixes are independent, so with ``workers > 1`` and
    several missing checkpoints the pre-pass fans out over a process
    pool; returns the keys it built.
    """
    store = CheckpointStore(checkpoint_dir)
    needed = _sweep_checkpoints(spec_list, out_dir, force)
    missing = [(k, b) for k, b in needed.items() if not store.has(k)]
    if not missing:
        return []
    if len(missing) > 1 and workers > 1:
        with _pool(min(workers, len(missing))) as pool:
            return pool.starmap(
                _build_one,
                [(str(checkpoint_dir), k, b) for k, b in missing],
            )
    return [_build_one(str(checkpoint_dir), k, b) for k, b in missing]


def _sweep_shares_checkpoints(spec_list: Sequence[ExperimentSpec]) -> bool:
    """True when some warm-up checkpoint is needed by more than one leg.

    Same economics as :func:`_sweep_shares_recordings`: an ephemeral
    store only earns its serialise/reload round trips when at least two
    legs branch from one prefix.
    """
    seen: set[str] = set()
    for spec in spec_list:
        entry = REGISTRY.get(spec.experiment)
        if entry.checkpoints is None:
            continue
        for key in entry.checkpoints(spec):
            if key in seen:
                return True
            seen.add(key)
    return False


@contextlib.contextmanager
def _sweep_checkpoint_dir(
    spec_list: Sequence[ExperimentSpec],
    out_dir: str | Path | None,
    override: str | Path | None,
) -> Iterator[Path | None]:
    """Where this sweep's shared checkpoint store lives.

    An explicit ``override`` (``run_many(checkpoint_dir=...)``, the CLI's
    ``--branch-from``) wins and is durable.  Otherwise the policy of
    :func:`_sweep_schedule_dir`, applied to checkpoints: ``out_dir``'s
    ``checkpoints/`` subdirectory when given, a sweep-scoped temporary
    directory when legs share a prefix, ``None`` when nothing would be
    reused (legs warm up in memory — no round-trip overhead).
    """
    if override is not None:
        yield Path(override)
        return
    if out_dir is not None:
        yield Path(out_dir) / CHECKPOINT_SUBDIR
        return
    if not _sweep_shares_checkpoints(spec_list):
        yield None
        return
    with tempfile.TemporaryDirectory(prefix="repro-checkpoints-") as tmp:
        yield Path(tmp)


def run_many(
    specs: Iterable[ExperimentSpec],
    workers: int = 1,
    out_dir: str | Path | None = None,
    force: bool = False,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
    batch_size: int | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_policy: "CheckpointPolicy | str | None" = None,
) -> list[RunArtifact]:
    """Execute several specs under one of three executors.

    * ``"serial"`` — this process, one spec at a time;
    * ``"process"`` — a local ``multiprocessing`` pool of ``workers``;
    * ``"queue"`` — the durable job queue at ``queue_dir``
      (:mod:`repro.cluster`): specs are enqueued, ``workers`` local
      drain-worker processes are spawned, and the call blocks until the
      sweep's artifacts can be gathered.  External ``repro worker``
      daemons already pointed at the same queue pitch in too.
      ``batch_size`` caps how many jobs each drain worker leases per
      broker round trip (``1`` recovers the per-job protocol) —
      batching amortises the queue's claim/heartbeat/report cost across
      jobs without changing results.  When not given, the default
      (:data:`repro.cluster.worker.DEFAULT_BATCH_SIZE`) is clamped to
      ``ceil(jobs / workers)`` so batching never serialises a sweep
      onto fewer workers than requested.

    ``executor=None`` infers the mode: ``"queue"`` when ``queue_dir`` is
    given, else ``"serial"``/``"process"`` from ``workers`` (the
    pre-cluster behaviour, unchanged).

    Whatever the executor, results come back in input order and are
    byte-identical (``canonical_json``) across modes — the determinism
    contract the test suite guards.  ``out_dir``/``force`` behave as in
    :func:`run`; with a warm cache a sweep only simulates the specs it
    has never seen.

    Record once, replay many: before fanning out, the sweep is
    partitioned by the recorded schedules its specs need (each
    experiment's registered ``recordings`` hook) and every unique
    original schedule is simulated exactly once into the sweep's shared
    :class:`~repro.core.trace_io.ScheduleStore` — rooted at
    ``<out_dir>/schedules``, the queue's ``artifacts/schedules``, or a
    temporary directory scoped to this call.  The legs then replay from
    the store, so a ``replay_modes`` sweep over M modes pays the
    recording cost once, not M times, under all three executors.

    Simulate once, branch many: the same pre-pass runs for warm-up
    checkpoints (each experiment's registered ``checkpoints`` hook) —
    the sweep is partitioned by shared warm-up prefix and every unique
    prefix is simulated exactly once into the sweep's shared
    :class:`~repro.sim.checkpoint.CheckpointStore`; the legs then branch
    from the snapshot, turning an N-leg sweep from O(N × horizon) into
    O(horizon + N × delta).  ``checkpoint_dir`` overrides where that
    store lives (the CLI's ``--branch-from``), e.g. to reuse warm-ups
    across sweeps without adopting a full ``out_dir`` cache; with the
    queue executor the store always lives in the queue's shared
    ``artifacts/checkpoints`` — where the workers look — so an override
    is rejected there.

    ``checkpoint_policy`` arms preemption-safe resume for every leg (see
    :func:`run`): each leg writes periodic mid-flight snapshots and a
    retried leg resumes from the newest valid one instead of t=0.  With
    the queue executor the policy is handed to the spawned drain
    workers; otherwise it needs a durable store (``out_dir`` or
    ``checkpoint_dir``).
    """
    spec_list: Sequence[ExperimentSpec] = list(specs)
    require_positive_int(workers, "workers")
    if isinstance(checkpoint_policy, str):
        checkpoint_policy = CheckpointPolicy.parse(checkpoint_policy)
    if executor is None:
        executor = (
            "queue" if queue_dir is not None
            else ("serial" if workers == 1 else "process")
        )
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; one of {EXECUTORS}"
        )
    if batch_size is not None:
        require_positive_int(batch_size, "batch_size")
    if executor == "queue":
        if queue_dir is None:
            raise ConfigurationError(
                "executor='queue' needs queue_dir= (the queue directory "
                "workers share)"
            )
        if checkpoint_dir is not None:
            raise ConfigurationError(
                "checkpoint_dir= does not apply to executor='queue': queue "
                "workers fetch checkpoints from the queue's own "
                "artifacts/checkpoints store"
            )
        return _run_many_queue(
            spec_list, workers, queue_dir, out_dir, force, batch_size,
            checkpoint_policy,
        )
    if checkpoint_policy is not None and out_dir is None \
            and checkpoint_dir is None:
        raise ConfigurationError(
            "checkpoint_policy needs a durable checkpoint store to write "
            "snapshots into — pass out_dir= or checkpoint_dir= (a "
            "sweep-scoped temporary store would die with the process the "
            "policy is guarding against)"
        )
    if queue_dir is not None:
        raise ConfigurationError(
            f"queue_dir= only applies to executor='queue', not {executor!r}"
        )
    if batch_size is not None:
        raise ConfigurationError(
            f"batch_size= only applies to executor='queue', not {executor!r}"
        )
    with _sweep_schedule_dir(spec_list, out_dir) as schedule_dir, \
            _sweep_checkpoint_dir(spec_list, out_dir, checkpoint_dir) as ckpt_dir:
        if schedule_dir is not None:
            with SPANS.span("record-schedules", legs=len(spec_list)):
                _record_sweep_schedules(
                    spec_list, schedule_dir, workers, out_dir, force
                )
        if ckpt_dir is not None:
            with SPANS.span("build-checkpoints", legs=len(spec_list)):
                _build_sweep_checkpoints(
                    spec_list, ckpt_dir, workers, out_dir, force
                )
        if executor == "serial" or workers == 1 or len(spec_list) <= 1:
            return [
                run(spec, out_dir=out_dir, force=force,
                    schedule_dir=schedule_dir, checkpoint_dir=ckpt_dir,
                    checkpoint_policy=checkpoint_policy)
                for spec in spec_list
            ]
        worker = functools.partial(
            run, out_dir=out_dir, force=force, schedule_dir=schedule_dir,
            checkpoint_dir=ckpt_dir, checkpoint_policy=checkpoint_policy,
        )
        with _pool(min(workers, len(spec_list))) as pool:
            return pool.map(worker, spec_list)


def _run_many_queue(
    spec_list: Sequence[ExperimentSpec],
    workers: int,
    queue_dir: str | Path,
    out_dir: str | Path | None,
    force: bool,
    batch_size: int | None,
    checkpoint_policy: "CheckpointPolicy | None" = None,
) -> list[RunArtifact]:
    """Queue-executor backend: submit, spawn drain workers, gather.

    Imports :mod:`repro.cluster` lazily — the cluster package is built on
    top of this module, so a top-level import would be circular.
    """
    from repro.cluster.client import gather, submit
    from repro.cluster.worker import DEFAULT_BATCH_SIZE, drain_queue

    # out_dir keeps its run()/run_many() cache contract: specs already
    # answered there never reach the queue at all.
    results: dict[int, RunArtifact] = {}
    if out_dir is not None and not force:
        for index, spec in enumerate(spec_list):
            cached = cached_artifact(spec, out_dir)
            if cached is not None:
                results[index] = cached
    misses = [i for i in range(len(spec_list)) if i not in results]
    if misses:
        missed_specs = [spec_list[i] for i in misses]
        if batch_size is None:
            # The default trades broker round trips against work-sharing
            # granularity — but it must never cost parallelism the caller
            # asked for.  Clamp so all `workers` drain workers can claim
            # a batch (an explicit batch_size= is honored as given).
            per_worker = -(-len(misses) // workers)  # ceil division
            batch_size = max(1, min(DEFAULT_BATCH_SIZE, per_worker))
        # Record-once pre-pass into the queue's shared artifact store:
        # workers run jobs with out_dir=<queue>/artifacts, so they fetch
        # recorded schedules from <queue>/artifacts/schedules instead of
        # re-simulating the originals once per replay-mode leg.  Only
        # worth the parent's time when some key IS shared between legs —
        # otherwise each key belongs to exactly one leg, that leg
        # records it into the store itself, and the exactly-once
        # guarantee holds with no pre-pass (and no pre-pass pool).
        if _sweep_shares_recordings(missed_specs):
            queue_schedule_dir = Path(queue_dir) / "artifacts" / SCHEDULE_SUBDIR
            with SPANS.span("record-schedules", legs=len(missed_specs)):
                _record_sweep_schedules(
                    missed_specs, queue_schedule_dir, workers, out_dir, force,
                )
        # Simulate-once pre-pass, same placement logic: workers run jobs
        # with out_dir=<queue>/artifacts, so they restore shared warm-up
        # checkpoints from <queue>/artifacts/checkpoints instead of
        # re-simulating the prefix once per leg.
        if _sweep_shares_checkpoints(missed_specs):
            queue_checkpoint_dir = (
                Path(queue_dir) / "artifacts" / CHECKPOINT_SUBDIR
            )
            with SPANS.span("build-checkpoints", legs=len(missed_specs)):
                _build_sweep_checkpoints(
                    missed_specs, queue_checkpoint_dir, workers, out_dir, force,
                )
        with SPANS.span("queue-submit", jobs=len(misses)):
            job_ids = submit(missed_specs, queue_dir, force=force)
        context = multiprocessing.get_context()
        # Workers beyond one per claimable batch can never claim on the
        # happy path (the first ceil(jobs/batch) claims empty the
        # queue), so don't pay their fork/poll/join.  poll_s well under
        # the drain default: these workers exist only for this call, and
        # every poll interval they sleep after the last job lands is
        # latency the gathering caller eats.
        batches = -(-len(misses) // batch_size)  # ceil division
        procs = [
            context.Process(
                target=drain_queue,
                args=(str(queue_dir),),
                kwargs={"batch_size": batch_size, "poll_s": 0.05,
                        "checkpoint_policy": checkpoint_policy},
            )
            for _ in range(min(workers, batches))
        ]
        for proc in procs:
            proc.start()
        try:
            # A tight poll ceiling: the workers are local children, the
            # state read is two indexed columns, and every interval past
            # the last report is pure caller latency.
            with SPANS.span("queue-gather", jobs=len(misses)):
                gathered = gather(queue_dir, job_ids, poll_s=0.02)
        finally:
            for proc in procs:
                proc.join(timeout=60.0)
            for proc in procs:
                if proc.is_alive():  # a wedged drain; don't hang the caller
                    proc.terminate()
                    proc.join(timeout=5.0)
        results.update(zip(misses, gathered))
        if out_dir is not None:
            queue_store = (Path(queue_dir) / "artifacts").resolve()
            if Path(out_dir).resolve() != queue_store:
                for index in misses:
                    results[index].save(out_dir)
    return [results[i] for i in range(len(spec_list))]
