"""Execute experiment specs, serially or across worker processes.

:func:`run` resolves a spec against the registry, resets the global
packet-id counter (so every run sees the same id stream no matter what
ran before it in the process — the determinism the artifact contract
depends on), executes the driver under a wall-clock timer, and wraps the
result into a :class:`~repro.api.results.RunArtifact`.

:func:`run_many` maps :func:`run` over a list of specs — a seed or
scheduler sweep built with :meth:`ExperimentSpec.sweep` — either in this
process or via a ``multiprocessing`` pool.  Worker processes are safe
because the simulator is deterministic and single-threaded per run and
specs/artifacts are plain picklable data; parallel results are required
to be byte-identical to serial ones (guarded by the test suite).
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Iterable, Sequence

from repro.api.registry import REGISTRY, ExperimentRegistry
from repro.api.results import RunArtifact
from repro.api.spec import ExperimentSpec
from repro.core.packet import reset_packet_ids
from repro.errors import ConfigurationError

__all__ = ["run", "run_many"]


def run(spec: ExperimentSpec, registry: ExperimentRegistry | None = None) -> RunArtifact:
    """Execute one spec and return its artifact."""
    entry = (registry or REGISTRY).get(spec.experiment)
    unknown = [key for key, _ in spec.options if key not in entry.options]
    if unknown:
        accepted = ", ".join(entry.options) or "none"
        raise ConfigurationError(
            f"experiment {entry.name!r} does not read option(s) "
            f"{', '.join(map(repr, unknown))} (accepted: {accepted})"
        )
    reset_packet_ids()
    start = time.perf_counter()
    try:
        output = entry.fn(spec)
    finally:
        reset_packet_ids()
    wall = time.perf_counter() - start
    if isinstance(output, tuple):
        table, metadata = output
    else:
        table, metadata = output, {}
    return RunArtifact.from_table(spec, table, metadata=metadata, wall_time_s=wall)


def run_many(
    specs: Iterable[ExperimentSpec], workers: int = 1
) -> list[RunArtifact]:
    """Execute several specs; ``workers > 1`` fans out across processes.

    Results come back in input order regardless of worker scheduling.
    """
    spec_list: Sequence[ExperimentSpec] = list(specs)
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
    if workers == 1 or len(spec_list) <= 1:
        return [run(spec) for spec in spec_list]
    with multiprocessing.get_context().Pool(
        processes=min(workers, len(spec_list))
    ) as pool:
        return pool.map(run, spec_list)
