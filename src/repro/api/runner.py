"""Execute experiment specs, serially or across worker processes.

:func:`run` resolves a spec against the registry, resets the global
packet-id counter (so every run sees the same id stream no matter what
ran before it in the process — the determinism the artifact contract
depends on), executes the driver under a wall-clock timer, and wraps the
result into a :class:`~repro.api.results.RunArtifact` together with the
engine's event-throughput accounting
(:data:`repro.sim.engine.ENGINE_PERF`).

Content-addressed caching: artifact filenames are derived from the spec
alone (:func:`~repro.api.results.spec_run_id`), so when ``out_dir``
already holds the spec's run-id the saved artifact *is* the answer.
``run(spec, out_dir=...)`` returns it without simulating unless
``force=True``; fresh results are saved back into the cache.

:func:`run_many` maps :func:`run` over a list of specs — a seed or
scheduler sweep built with :meth:`ExperimentSpec.sweep` — in this
process, via a ``multiprocessing`` pool, or through the durable job
queue of :mod:`repro.cluster` (``executor="queue"``).  Worker processes
are safe because the simulator is deterministic and single-threaded per
run and specs/artifacts are plain picklable data; parallel and
distributed results are required to be byte-identical to serial ones
(guarded by the test suite).
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.registry import REGISTRY, ExperimentRegistry
from repro.api.results import RunArtifact, load_artifact, spec_run_id
from repro.api.spec import ExperimentSpec
from repro.core.packet import reset_packet_ids
from repro.errors import ConfigurationError
from repro.sim.engine import ENGINE_PERF

__all__ = ["EXECUTORS", "cached_artifact", "run", "run_many"]


def cached_artifact(spec: ExperimentSpec, out_dir: str | Path) -> RunArtifact | None:
    """The saved artifact for ``spec`` under ``out_dir``, if one exists.

    The artifact's embedded spec must round-trip to the requested one —
    a guard against hand-edited files and hash collisions; mismatches are
    treated as a miss, not an error.
    """
    path = Path(out_dir) / f"{spec_run_id(spec)}.json"
    if not path.is_file():
        return None
    try:
        artifact = load_artifact(path)
    except (OSError, ValueError, TypeError, KeyError, ConfigurationError):
        return None  # unreadable/foreign file: fall through to a fresh run
    if artifact.spec != spec:
        return None
    artifact.from_cache = True
    return artifact


def run(
    spec: ExperimentSpec,
    registry: ExperimentRegistry | None = None,
    out_dir: str | Path | None = None,
    force: bool = False,
) -> RunArtifact:
    """Execute one spec and return its artifact.

    With ``out_dir`` the directory acts as a content-addressed cache: a
    previously saved artifact for the same spec is returned as-is
    (``artifact.from_cache`` is set), and fresh results are saved there.
    ``force=True`` always re-simulates (and overwrites the cache entry).
    """
    entry = (registry or REGISTRY).get(spec.experiment)
    unknown = [key for key, _ in spec.options if key not in entry.options]
    if unknown:
        accepted = ", ".join(entry.options) or "none"
        raise ConfigurationError(
            f"experiment {entry.name!r} does not read option(s) "
            f"{', '.join(map(repr, unknown))} (accepted: {accepted})"
        )
    if out_dir is not None and not force:
        cached = cached_artifact(spec, out_dir)
        if cached is not None:
            return cached
    reset_packet_ids()
    ENGINE_PERF.reset()
    start = time.perf_counter()
    try:
        output = entry.fn(spec)
    finally:
        reset_packet_ids()
    wall = time.perf_counter() - start
    if isinstance(output, tuple):
        table, metadata = output
    else:
        table, metadata = output, {}
    metadata = dict(metadata)
    # Deterministic event count -> metadata (part of the canonical JSON);
    # wall-clock throughput -> the timing section (excluded from it).
    metadata.setdefault("engine_events", ENGINE_PERF.events)
    artifact = RunArtifact.from_table(
        spec,
        table,
        metadata=metadata,
        wall_time_s=wall,
        events_per_sec=ENGINE_PERF.events_per_sec,
    )
    if out_dir is not None:
        artifact.save(out_dir)
    return artifact


#: The execution modes :func:`run_many` understands.
EXECUTORS = ("serial", "process", "queue")


def run_many(
    specs: Iterable[ExperimentSpec],
    workers: int = 1,
    out_dir: str | Path | None = None,
    force: bool = False,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
) -> list[RunArtifact]:
    """Execute several specs under one of three executors.

    * ``"serial"`` — this process, one spec at a time;
    * ``"process"`` — a local ``multiprocessing`` pool of ``workers``;
    * ``"queue"`` — the durable job queue at ``queue_dir``
      (:mod:`repro.cluster`): specs are enqueued, ``workers`` local
      drain-worker processes are spawned, and the call blocks until the
      sweep's artifacts can be gathered.  External ``repro worker``
      daemons already pointed at the same queue pitch in too.

    ``executor=None`` infers the mode: ``"queue"`` when ``queue_dir`` is
    given, else ``"serial"``/``"process"`` from ``workers`` (the
    pre-cluster behaviour, unchanged).

    Whatever the executor, results come back in input order and are
    byte-identical (``canonical_json``) across modes — the determinism
    contract the test suite guards.  ``out_dir``/``force`` behave as in
    :func:`run`; with a warm cache a sweep only simulates the specs it
    has never seen.
    """
    spec_list: Sequence[ExperimentSpec] = list(specs)
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise ConfigurationError(
            f"workers must be an integer >= 1, got {workers!r}"
        )
    if executor is None:
        executor = (
            "queue" if queue_dir is not None
            else ("serial" if workers == 1 else "process")
        )
    if executor not in EXECUTORS:
        raise ConfigurationError(
            f"unknown executor {executor!r}; one of {EXECUTORS}"
        )
    if executor == "queue":
        if queue_dir is None:
            raise ConfigurationError(
                "executor='queue' needs queue_dir= (the queue directory "
                "workers share)"
            )
        return _run_many_queue(spec_list, workers, queue_dir, out_dir, force)
    if queue_dir is not None:
        raise ConfigurationError(
            f"queue_dir= only applies to executor='queue', not {executor!r}"
        )
    if executor == "serial" or workers == 1 or len(spec_list) <= 1:
        return [run(spec, out_dir=out_dir, force=force) for spec in spec_list]
    worker = functools.partial(run, out_dir=out_dir, force=force)
    with multiprocessing.get_context().Pool(
        processes=min(workers, len(spec_list))
    ) as pool:
        return pool.map(worker, spec_list)


def _run_many_queue(
    spec_list: Sequence[ExperimentSpec],
    workers: int,
    queue_dir: str | Path,
    out_dir: str | Path | None,
    force: bool,
) -> list[RunArtifact]:
    """Queue-executor backend: submit, spawn drain workers, gather.

    Imports :mod:`repro.cluster` lazily — the cluster package is built on
    top of this module, so a top-level import would be circular.
    """
    from repro.cluster.client import gather, submit
    from repro.cluster.worker import drain_queue

    # out_dir keeps its run()/run_many() cache contract: specs already
    # answered there never reach the queue at all.
    results: dict[int, RunArtifact] = {}
    if out_dir is not None and not force:
        for index, spec in enumerate(spec_list):
            cached = cached_artifact(spec, out_dir)
            if cached is not None:
                results[index] = cached
    misses = [i for i in range(len(spec_list)) if i not in results]
    if misses:
        job_ids = submit([spec_list[i] for i in misses], queue_dir, force=force)
        context = multiprocessing.get_context()
        procs = [
            context.Process(target=drain_queue, args=(str(queue_dir),))
            for _ in range(min(workers, len(misses)))
        ]
        for proc in procs:
            proc.start()
        try:
            gathered = gather(queue_dir, job_ids)
        finally:
            for proc in procs:
                proc.join(timeout=60.0)
            for proc in procs:
                if proc.is_alive():  # a wedged drain; don't hang the caller
                    proc.terminate()
                    proc.join(timeout=5.0)
        results.update(zip(misses, gathered))
        if out_dir is not None:
            queue_store = (Path(queue_dir) / "artifacts").resolve()
            if Path(out_dir).resolve() != queue_store:
                for index in misses:
                    results[index].save(out_dir)
    return [results[i] for i in range(len(spec_list))]
