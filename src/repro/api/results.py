"""Structured run artifacts.

A :class:`RunArtifact` is what an experiment run *produces*: the spec
that configured it, the result rows (raw, JSON-scalar cells), free-form
metadata from the driver, and wall-time accounting.  Artifacts serialise
to JSON, persist under an ``--out`` directory with deterministic
filenames, and render through the existing ASCII
:class:`~repro.analysis.tables.Table` — one pipeline from simulation to
terminal, file, or downstream tooling.

Determinism contract: :meth:`RunArtifact.canonical_json` excludes the
timing section, so two runs of the same spec — serial or in parallel
worker processes — must produce byte-identical canonical JSON.  The test
suite guards this.  Engine accounting splits accordingly: the *event
count* is deterministic and lives in ``metadata["engine_events"]``; the
*events/sec* rate is wall-clock derived and lives next to ``wall_time_s``
in the (canonically excluded) timing section.

Because :func:`spec_run_id` derives the artifact filename from the spec
alone, an ``--out`` directory doubles as a content-addressed cache: the
runner can answer a spec from a previously saved artifact without
simulating (see :func:`repro.api.runner.run`).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.analysis.tables import Table
from repro.api.spec import ExperimentSpec
from repro.errors import ConfigurationError

__all__ = ["RunArtifact", "load_artifact", "spec_run_id"]

_ARTIFACT_VERSION = 1


def spec_run_id(spec: ExperimentSpec) -> str:
    """A short deterministic id derived from the canonical spec."""
    digest = hashlib.sha256(
        json.dumps(spec.to_dict(), sort_keys=True).encode()
    ).hexdigest()
    return f"{spec.experiment}-{digest[:10]}"


@dataclass(slots=True)
class RunArtifact:
    """The structured result of one experiment run."""

    spec: ExperimentSpec
    title: str
    headers: list[str]
    rows: list[list[Any]]
    metadata: dict[str, Any] = field(default_factory=dict)
    wall_time_s: float = 0.0
    events_per_sec: float = 0.0
    #: Telemetry summary from the run's :class:`~repro.obs.hub.MetricsHub`,
    #: or None when observability was off.  Serialised next to the timing
    #: section and excluded from the canonical JSON for the same reason:
    #: sampled series must never be able to change what a run *means*.
    obs: dict[str, Any] | None = field(default=None, compare=False)
    #: True when this artifact was answered from an ``--out`` cache rather
    #: than simulated; never serialised, never part of equality.
    from_cache: bool = field(default=False, compare=False)

    @classmethod
    def from_table(
        cls,
        spec: ExperimentSpec,
        table: Table,
        metadata: Mapping[str, Any] | None = None,
        wall_time_s: float = 0.0,
        events_per_sec: float = 0.0,
    ) -> "RunArtifact":
        """Wrap a driver's rendered ``table`` (plus accounting) as an artifact."""
        return cls(
            spec=spec,
            title=table.title,
            headers=table.headers,
            rows=table.rows,
            metadata=dict(metadata or {}),
            wall_time_s=wall_time_s,
            events_per_sec=events_per_sec,
        )

    def table(self) -> Table:
        """Rebuild the renderable table (ASCII / CSV views)."""
        table = Table(self.headers, title=self.title)
        for row in self.rows:
            table.add_row(row)
        return table

    # -- serialisation ----------------------------------------------------

    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        """The artifact as JSON-serialisable data (see :meth:`from_dict`).

        ``include_timings=False`` drops the wall-clock section — the
        canonical, determinism-checked view.
        """
        payload: dict[str, Any] = {
            "version": _ARTIFACT_VERSION,
            "spec": self.spec.to_dict(),
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "metadata": dict(self.metadata),
        }
        if include_timings:
            payload["timings"] = {
                "wall_time_s": self.wall_time_s,
                "events_per_sec": self.events_per_sec,
            }
            if self.obs is not None:
                payload["obs"] = self.obs
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunArtifact":
        """Rebuild an artifact from :meth:`to_dict` output (or a saved file)."""
        version = data.get("version", _ARTIFACT_VERSION)
        if version != _ARTIFACT_VERSION:
            raise ConfigurationError(
                f"artifact version {version!r} not supported "
                f"(expected {_ARTIFACT_VERSION})"
            )
        timings = data.get("timings", {})
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            title=data.get("title", ""),
            headers=list(data["headers"]),
            rows=[list(r) for r in data["rows"]],
            metadata=dict(data.get("metadata", {})),
            wall_time_s=float(timings.get("wall_time_s", 0.0)),
            events_per_sec=float(timings.get("events_per_sec", 0.0)),
            obs=data.get("obs"),
        )

    def to_json(self, indent: int | None = 2, include_timings: bool = True) -> str:
        """The artifact as a JSON string (pretty by default; see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(include_timings=include_timings), indent=indent)

    def canonical_json(self) -> str:
        """Timing-free, key-sorted JSON — byte-identical across reruns."""
        return json.dumps(
            self.to_dict(include_timings=False), sort_keys=True, separators=(",", ":")
        )

    # -- persistence ------------------------------------------------------

    def run_id(self) -> str:
        """A short deterministic id derived from the canonical spec."""
        return spec_run_id(self.spec)

    def save(self, out_dir: str | Path) -> Path:
        """Persist as ``<out_dir>/<run_id>.json``; returns the path.

        The write is atomic (temp file in ``out_dir`` + ``os.replace``),
        so concurrent workers sharing one cache directory always see
        either no file or a complete one — never a torn JSON.  Racing
        savers of the same run-id both succeed; last replace wins, and
        determinism makes the contents identical anyway.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{self.run_id()}.json"
        # O_EXCL + an owner-unique name prevents temp collisions; mode
        # 0o666 (kernel-masked by umask, no global state touched) keeps a
        # shared artifact store readable by other workers' users.
        tmp_name = str(out / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
        fd = os.open(tmp_name, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(self.to_json(indent=2) + "\n")
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return path


def load_artifact(path: str | Path) -> RunArtifact:
    """Read an artifact previously written by :meth:`RunArtifact.save`."""
    return RunArtifact.from_dict(json.loads(Path(path).read_text()))
