"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single front door to the evaluation
stack: it names a registered experiment (``"table1"``, ``"fig2"``, …)
and carries the knobs every driver understands — scheduler sweep,
topology, utilisation, duration, seeds, bandwidth scale, slack policy —
plus an open-ended ``options`` bag for experiment-specific parameters
(e.g. ``rows`` for Table 1 subsets).

Specs are frozen, hashable, and JSON-round-trippable::

    spec = ExperimentSpec("table1", duration=0.1, options={"rows": (0, 13)})
    assert ExperimentSpec.from_dict(spec.to_dict()) == spec

which makes them safe to ship across process boundaries (the parallel
runner), persist inside :class:`~repro.api.results.RunArtifact` files,
and diff between runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Mapping

from repro.errors import ConfigurationError

__all__ = ["ExperimentSpec"]

_SCALARS = (bool, int, float, str, type(None))


def _freeze_option(key: str, value: object) -> object:
    """Coerce one option value to a hashable, JSON-round-trippable form."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (tuple, list)):
        items = tuple(value)
        for item in items:
            if not isinstance(item, _SCALARS):
                raise ConfigurationError(
                    f"option {key!r} contains non-scalar element {item!r}"
                )
        return items
    raise ConfigurationError(
        f"option {key!r} must be a scalar or a flat sequence, got {value!r}"
    )


@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One declarative experiment run (or sweep).

    ``schedulers`` and ``seeds`` may hold several values; drivers treat
    an empty ``schedulers`` tuple as "this experiment's default sweep"
    and use :attr:`seed` (the first entry) for their RNGs.  Use
    :meth:`sweep` to expand a multi-seed spec into single-seed specs for
    :func:`repro.api.runner.run_many`.

    ``slack_policy`` uses the grammar of
    :func:`repro.core.heuristics.parse_slack_policy`
    (``"constant[:seconds]"``, ``"flow-size[:D]"``,
    ``"virtual-clock:rate"``) and overrides the LSTF slack heuristic in
    the drivers that take one (``fig2``, ``fig3``); it is validated at
    construction.

    ``replay_modes`` is the record-once/replay-many sweep axis: each
    entry is one of :data:`repro.core.replay.REPLAY_MODES` and
    :meth:`sweep` expands the tuple into one single-mode spec per entry,
    exactly like ``seeds``.  Replay-driven drivers read
    :attr:`replay_mode` (the first entry; ``"lstf"`` — the paper's
    default — when the tuple is empty), and every leg of the expanded
    sweep reuses the same recorded original schedule through the shared
    schedule store (see :mod:`repro.core.trace_io`), so an M-mode sweep
    pays for each unique recording once, not M times.

    ``scenarios`` is the declarative-workload sweep axis: each entry
    names a registered :class:`repro.scenarios.Scenario` and
    :meth:`sweep` expands the tuple outermost, so an N-scenario ×
    M-seed spec fans into N × M legs.  Scenario-driven drivers read
    :attr:`scenario` (the first entry; ``"websearch-incast"`` when the
    tuple is empty).
    """

    experiment: str
    name: str = ""
    schedulers: tuple[str, ...] = ()
    topology: str = "i2-1g-10g"
    utilization: float = 0.7
    duration: float = 0.2
    seeds: tuple[int, ...] = (1,)
    bandwidth_scale: float = 0.01
    slack_policy: str | None = None
    replay_modes: tuple[str, ...] = ()
    scenarios: tuple[str, ...] = ()
    options: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.experiment:
            raise ConfigurationError("spec needs a non-empty experiment name")
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ConfigurationError("spec needs at least one seed")
        object.__setattr__(self, "seeds", seeds)
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration!r}")
        if self.bandwidth_scale <= 0:
            raise ConfigurationError(
                f"bandwidth_scale must be > 0, got {self.bandwidth_scale!r}"
            )
        if self.slack_policy is not None:
            from repro.core.heuristics import parse_slack_policy

            parse_slack_policy(self.slack_policy)  # fail fast on bad grammar
        modes = tuple(str(m) for m in self.replay_modes)
        if modes:
            from repro.core.replay import REPLAY_MODES

            unknown_modes = [m for m in modes if m not in REPLAY_MODES]
            if unknown_modes:
                raise ConfigurationError(
                    f"unknown replay mode(s) {unknown_modes}; "
                    f"choose from {REPLAY_MODES}"
                )
        object.__setattr__(self, "replay_modes", modes)
        scens = tuple(str(s) for s in self.scenarios)
        if scens:
            from repro.scenarios import SCENARIOS

            unknown_scens = [s for s in scens if s not in SCENARIOS]
            if unknown_scens:
                raise ConfigurationError(
                    f"unknown scenario(s) {unknown_scens}; "
                    f"choose from {list(SCENARIOS.names())}"
                )
        object.__setattr__(self, "scenarios", scens)
        raw = self.options
        if isinstance(raw, Mapping):
            pairs: Iterable[tuple[str, object]] = raw.items()
        else:
            pairs = tuple(raw)
        frozen = tuple(
            sorted(
                ((str(k), _freeze_option(str(k), v)) for k, v in pairs),
                key=lambda kv: kv[0],
            )
        )
        keys = [k for k, _ in frozen]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(f"duplicate option keys in {keys}")
        object.__setattr__(self, "options", frozen)

    # -- convenience accessors -------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable name: explicit ``name`` or the experiment id."""
        return self.name or self.experiment

    @property
    def seed(self) -> int:
        """The first (often only) seed — what single-run drivers use."""
        return self.seeds[0]

    @property
    def replay_mode(self) -> str:
        """The first (often only) replay mode; ``"lstf"`` when unset.

        Mirrors :attr:`seed`: replay-driven drivers run this mode, and a
        multi-mode spec is expanded into single-mode specs by
        :meth:`sweep` before it reaches a driver.
        """
        return self.replay_modes[0] if self.replay_modes else "lstf"

    @property
    def scenario(self) -> str:
        """The first (often only) scenario name; the default when unset.

        Mirrors :attr:`seed`: scenario-driven drivers run this scenario,
        and a multi-scenario spec is expanded into single-scenario specs
        by :meth:`sweep` before it reaches a driver.
        """
        return self.scenarios[0] if self.scenarios else "websearch-incast"

    def option(self, key: str, default: object = None) -> object:
        """The value of experiment-specific option ``key`` (or ``default``)."""
        for k, v in self.options:
            if k == key:
                return v
        return default

    def with_(self, **changes: object) -> "ExperimentSpec":
        """A copy with fields replaced (``options`` may be a mapping)."""
        return replace(self, **changes)

    # -- sweeps -----------------------------------------------------------

    def sweep(
        self,
        seeds: Iterable[int] | None = None,
        schedulers: Iterable[str] | None = None,
        replay_modes: Iterable[str] | None = None,
        scenarios: Iterable[str] | None = None,
    ) -> list["ExperimentSpec"]:
        """Expand into one spec per (scenario, seed, scheduler, mode) leg.

        With no arguments this expands :attr:`scenarios`, :attr:`seeds`
        and :attr:`replay_modes` (each multi-valued axis becomes one spec
        per value); pass ``schedulers`` to also split the scheduler sweep
        into per-scheduler specs (for experiments whose drivers loop over
        schemes, splitting lets :func:`~repro.api.runner.run_many`
        parallelise across them).

        Scenario legs are emitted outermost — each scenario's whole
        seed × scheduler × mode block is contiguous — and replay-mode
        legs innermost, so the legs sharing one recorded schedule sit
        next to each other and the runner's record-once pre-pass (see
        :func:`~repro.api.runner.run_many`) simulates each unique
        original schedule exactly once for all of them.
        """
        seed_axis = tuple(seeds) if seeds is not None else self.seeds
        if schedulers is not None:
            sched_axis: tuple[tuple[str, ...], ...] = tuple(
                (s,) for s in schedulers
            )
        else:
            sched_axis = (self.schedulers,)
        mode_source = (
            tuple(replay_modes) if replay_modes is not None else self.replay_modes
        )
        mode_axis: tuple[tuple[str, ...], ...] = (
            tuple((m,) for m in mode_source) if mode_source else (self.replay_modes,)
        )
        scen_source = (
            tuple(scenarios) if scenarios is not None else self.scenarios
        )
        scen_axis: tuple[tuple[str, ...], ...] = (
            tuple((s,) for s in scen_source) if scen_source else (self.scenarios,)
        )
        out = []
        for scens in scen_axis:
            for seed in seed_axis:
                for scheds in sched_axis:
                    for modes in mode_axis:
                        out.append(
                            replace(
                                self,
                                seeds=(seed,),
                                schedulers=scheds,
                                replay_modes=modes,
                                scenarios=scens,
                            )
                        )
        return out

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dict; lossless under :meth:`from_dict`."""
        return {
            "experiment": self.experiment,
            "name": self.name,
            "schedulers": list(self.schedulers),
            "topology": self.topology,
            "utilization": self.utilization,
            "duration": self.duration,
            "seeds": list(self.seeds),
            "bandwidth_scale": self.bandwidth_scale,
            "slack_policy": self.slack_policy,
            "replay_modes": list(self.replay_modes),
            "scenarios": list(self.scenarios),
            "options": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.options
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown spec fields {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs = dict(data)
        for key in ("schedulers", "seeds", "replay_modes", "scenarios"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        options = kwargs.get("options")
        if isinstance(options, Mapping):
            kwargs["options"] = {
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in options.items()
            }
        return cls(**kwargs)
