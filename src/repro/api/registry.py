"""The experiment registry: names → spec-driven drivers.

Every paper artefact registers itself with::

    @register_experiment("table1", help="Table 1: LSTF replayability rows")
    def run_table1(spec: ExperimentSpec) -> Table: ...

A driver takes an :class:`~repro.api.spec.ExperimentSpec` and returns a
:class:`~repro.analysis.tables.Table` (optionally ``(table, metadata)``);
the runner wraps that into a :class:`~repro.api.results.RunArtifact`.

``repro.api.get("fig2")`` replaces scattered ``from repro.experiments.fct
import …`` imports, and the CLI auto-generates one subcommand per
registered name.  Built-in experiments load lazily on first lookup, so
importing :mod:`repro.api` stays cheap and forked/spawned worker
processes self-populate.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "ExperimentRegistry",
    "RegisteredExperiment",
    "REGISTRY",
    "register_experiment",
    "get",
    "experiment_names",
]

# Importing these modules runs their @register_experiment decorators.
_BUILTIN_MODULES = ("repro.experiments",)


@dataclass(frozen=True, slots=True)
class RegisteredExperiment:
    """One registry entry: the driver plus its CLI-facing description.

    ``options`` declares the ``ExperimentSpec.options`` keys the driver
    reads; the runner rejects specs carrying any other key, so a knob
    can never be silently ignored.  ``params`` declares which spec
    *fields* the driver reads (``"duration"``, ``"seeds"``, …); the CLI
    uses it to reject flags an experiment would ignore.
    """

    name: str
    fn: Callable
    help: str = ""
    aliases: tuple[str, ...] = ()
    options: tuple[str, ...] = ()
    params: tuple[str, ...] = ()

    def __call__(self, spec):
        return self.fn(spec)


@dataclass
class ExperimentRegistry:
    """A name → driver mapping with decorator-based registration."""

    _entries: dict[str, RegisteredExperiment] = field(default_factory=dict)
    _aliases: dict[str, str] = field(default_factory=dict)
    _loaded: bool = False

    def register(
        self,
        name: str,
        *,
        help: str = "",
        aliases: tuple[str, ...] = (),
        options: tuple[str, ...] = (),
        params: tuple[str, ...] = (),
    ) -> Callable[[Callable], Callable]:
        """Decorator: register ``fn`` as the driver for ``name``."""

        def decorator(fn: Callable) -> Callable:
            for key in (name, *aliases):
                if key in self._entries or key in self._aliases:
                    raise ConfigurationError(
                        f"experiment {key!r} is already registered"
                    )
            entry = RegisteredExperiment(
                name=name, fn=fn, help=help, aliases=tuple(aliases),
                options=tuple(options), params=tuple(params),
            )
            self._entries[name] = entry
            for alias in aliases:
                self._aliases[alias] = name
            return fn

        return decorator

    def _load_builtins(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)

    def get(self, name: str) -> RegisteredExperiment:
        """Resolve a name or alias to its entry (loading built-ins)."""
        self._load_builtins()
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise ConfigurationError(
                f"unknown experiment {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered canonical names, sorted."""
        self._load_builtins()
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegisteredExperiment, ...]:
        self._load_builtins()
        return tuple(self._entries[n] for n in self.names())

    def __contains__(self, name: str) -> bool:
        self._load_builtins()
        return name in self._entries or name in self._aliases


#: The process-wide registry the decorators below write into.
REGISTRY = ExperimentRegistry()


def register_experiment(
    name: str,
    *,
    help: str = "",
    aliases: tuple[str, ...] = (),
    options: tuple[str, ...] = (),
    params: tuple[str, ...] = (),
) -> Callable[[Callable], Callable]:
    """Register a driver on the global :data:`REGISTRY` (decorator)."""
    return REGISTRY.register(
        name, help=help, aliases=aliases, options=options, params=params
    )


def get(name: str) -> RegisteredExperiment:
    """Look up a registered experiment by name or alias."""
    return REGISTRY.get(name)


def experiment_names() -> tuple[str, ...]:
    """All registered experiment names."""
    return REGISTRY.names()
