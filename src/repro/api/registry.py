"""The experiment registry: names → spec-driven drivers.

Every paper artefact registers itself with::

    @register_experiment("table1", help="Table 1: LSTF replayability rows")
    def run_table1(spec: ExperimentSpec) -> Table: ...

A driver takes an :class:`~repro.api.spec.ExperimentSpec` and returns a
:class:`~repro.analysis.tables.Table` (optionally ``(table, metadata)``);
the runner wraps that into a :class:`~repro.api.results.RunArtifact`.

``repro.api.get("fig2")`` replaces scattered ``from repro.experiments.fct
import …`` imports, and the CLI auto-generates one subcommand per
registered name.  Built-in experiments load lazily on first lookup, so
importing :mod:`repro.api` stays cheap and forked/spawned worker
processes self-populate.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError

__all__ = [
    "ExperimentRegistry",
    "RegisteredExperiment",
    "REGISTRY",
    "register_experiment",
    "get",
    "experiment_names",
]

# Importing these modules runs their @register_experiment decorators.
_BUILTIN_MODULES = ("repro.experiments",)


@dataclass(frozen=True, slots=True)
class RegisteredExperiment:
    """One registry entry: the driver plus its CLI-facing description.

    ``options`` declares the ``ExperimentSpec.options`` keys the driver
    reads; the runner rejects specs carrying any other key, so a knob
    can never be silently ignored.  ``params`` declares which spec
    *fields* the driver reads (``"duration"``, ``"seeds"``, …); the CLI
    uses it to reject flags an experiment would ignore.

    ``recordings`` is the record-once/replay-many hook: for drivers
    built on recorded schedules it maps a spec to the recordings the
    driver will need, as ``{schedule-store key: zero-arg recorder}``.
    Recorders must be picklable (``functools.partial`` over a
    module-level function), because the runner's pre-pass may execute
    them in worker processes; each returns a
    :class:`~repro.core.replay.RecordedSchedule`.  ``None`` (the
    default) means the experiment records nothing reusable.

    ``checkpoints`` is the simulate-once/branch-many analogue: it maps a
    spec to the warm-up checkpoints the driver will branch from, as
    ``{checkpoint-store key: zero-arg builder}``.  Builders follow the
    same contract as recorders (picklable, may run in worker processes)
    and each returns a :class:`~repro.sim.checkpoint.Snapshot`.  ``None``
    (the default) means the experiment has no shareable warm-up prefix.
    """

    name: str
    fn: Callable
    help: str = ""
    aliases: tuple[str, ...] = ()
    options: tuple[str, ...] = ()
    params: tuple[str, ...] = ()
    recordings: Callable | None = None
    checkpoints: Callable | None = None

    def __call__(self, spec):
        """Run the driver on ``spec`` (sugar for ``entry.fn(spec)``)."""
        return self.fn(spec)


@dataclass
class ExperimentRegistry:
    """A name → driver mapping with decorator-based registration."""

    _entries: dict[str, RegisteredExperiment] = field(default_factory=dict)
    _aliases: dict[str, str] = field(default_factory=dict)
    _loaded: bool = False

    def register(
        self,
        name: str,
        *,
        help: str = "",
        aliases: tuple[str, ...] = (),
        options: tuple[str, ...] = (),
        params: tuple[str, ...] = (),
        recordings: Callable | None = None,
        checkpoints: Callable | None = None,
    ) -> Callable[[Callable], Callable]:
        """Decorator: register ``fn`` as the driver for ``name``."""

        def decorator(fn: Callable) -> Callable:
            for key in (name, *aliases):
                if key in self._entries or key in self._aliases:
                    raise ConfigurationError(
                        f"experiment {key!r} is already registered"
                    )
            entry = RegisteredExperiment(
                name=name, fn=fn, help=help, aliases=tuple(aliases),
                options=tuple(options), params=tuple(params),
                recordings=recordings, checkpoints=checkpoints,
            )
            self._entries[name] = entry
            for alias in aliases:
                self._aliases[alias] = name
            return fn

        return decorator

    def _load_builtins(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)

    def get(self, name: str) -> RegisteredExperiment:
        """Resolve a name or alias to its entry (loading built-ins)."""
        self._load_builtins()
        canonical = self._aliases.get(name, name)
        try:
            return self._entries[canonical]
        except KeyError:
            raise ConfigurationError(
                f"unknown experiment {name!r}; registered: {self.names()}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """Registered canonical names, sorted."""
        self._load_builtins()
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegisteredExperiment, ...]:
        """Every registry entry, in canonical-name order."""
        self._load_builtins()
        return tuple(self._entries[n] for n in self.names())

    def __contains__(self, name: str) -> bool:
        """True when ``name`` is a registered name or alias."""
        self._load_builtins()
        return name in self._entries or name in self._aliases


#: The process-wide registry the decorators below write into.
REGISTRY = ExperimentRegistry()


def register_experiment(
    name: str,
    *,
    help: str = "",
    aliases: tuple[str, ...] = (),
    options: tuple[str, ...] = (),
    params: tuple[str, ...] = (),
    recordings: Callable | None = None,
    checkpoints: Callable | None = None,
) -> Callable[[Callable], Callable]:
    """Register a driver on the global :data:`REGISTRY` (decorator).

    ``name`` is the canonical experiment id (plus optional ``aliases``);
    ``help`` is the one-liner ``repro list`` shows; ``options`` and
    ``params`` declare the spec options/fields the driver reads (anything
    else is rejected loudly); ``recordings`` is the record-once hook and
    ``checkpoints`` the simulate-once/branch-many hook — see
    :class:`RegisteredExperiment`.
    """
    return REGISTRY.register(
        name, help=help, aliases=aliases, options=options, params=params,
        recordings=recordings, checkpoints=checkpoints,
    )


def get(name: str) -> RegisteredExperiment:
    """Look up a registered experiment by name or alias."""
    return REGISTRY.get(name)


def experiment_names() -> tuple[str, ...]:
    """All registered experiment names."""
    return REGISTRY.names()
