"""Job records: what travels through the queue.

A :class:`Job` is one :class:`~repro.api.spec.ExperimentSpec` plus the
queue's bookkeeping around it — state, attempt budget, lease, worker
identity, timestamps, and (terminally) an error record.  Jobs are plain
data: the queue persists them as rows in SQLite (spec as canonical JSON)
and rebuilds them with :func:`job_from_row`; nothing here touches the
database.

State machine::

    PENDING ──claim──▶ RUNNING ──ack──▶ DONE
       ▲                  │
       └── retry ─────────┤ (worker reported failure, or lease expired,
                          │  while attempts remain)
                          └──────────▶ FAILED  (attempt budget exhausted,
                                               or a fatal config error)

``attempts`` counts claims, so a job that keeps losing its lease is
charged for every crashed worker and cannot loop forever.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.spec import ExperimentSpec

__all__ = [
    "DONE",
    "FAILED",
    "Job",
    "PENDING",
    "RUNNING",
    "STATES",
    "job_from_row",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Every state a job row can be in, in lifecycle order.
STATES = (PENDING, RUNNING, DONE, FAILED)

#: Column order shared by :data:`JOB_COLUMNS` selects and
#: :func:`job_from_row`; keep the two in sync.
JOB_COLUMNS = (
    "id",
    "run_id",
    "spec_json",
    "state",
    "attempts",
    "max_attempts",
    "force",
    "worker",
    "lease_expires_at",
    "submitted_at",
    "started_at",
    "finished_at",
    "error",
)


@dataclass(slots=True)
class Job:
    """One queued experiment run (see the module docstring for states)."""

    id: int
    spec: ExperimentSpec
    run_id: str
    state: str = PENDING
    attempts: int = 0
    max_attempts: int = 3
    force: bool = False
    worker: str | None = None
    lease_expires_at: float | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None

    @property
    def terminal(self) -> bool:
        """True once the job can never run again (done or failed)."""
        return self.state in (DONE, FAILED)

    def summary(self) -> str:
        """One line for logs and the CLI status table."""
        who = f" by {self.worker}" if self.worker else ""
        tail = f" [{self.error}]" if self.error else ""
        return (
            f"job {self.id} {self.spec.experiment}/{self.run_id}: "
            f"{self.state}{who} (attempt {self.attempts}/{self.max_attempts})"
            f"{tail}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view (``repro status --json``)."""
        return {
            "id": self.id,
            "experiment": self.spec.experiment,
            "run_id": self.run_id,
            "state": self.state,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "force": self.force,
            "worker": self.worker,
            "lease_expires_at": self.lease_expires_at,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }


def job_from_row(row: Sequence[Any]) -> Job:
    """Rebuild a :class:`Job` from a ``JOB_COLUMNS``-ordered SQLite row."""
    (
        job_id,
        run_id,
        spec_json,
        state,
        attempts,
        max_attempts,
        force,
        worker,
        lease_expires_at,
        submitted_at,
        started_at,
        finished_at,
        error,
    ) = row
    return Job(
        id=job_id,
        spec=ExperimentSpec.from_dict(json.loads(spec_json)),
        run_id=run_id,
        state=state,
        attempts=attempts,
        max_attempts=max_attempts,
        force=bool(force),
        worker=worker,
        lease_expires_at=lease_expires_at,
        submitted_at=submitted_at,
        started_at=started_at,
        finished_at=finished_at,
        error=error,
    )
