"""Queue-backed distributed execution: broker, workers, sweep sharding.

The spec/artifact JSON contract of :mod:`repro.api` is wire-friendly by
construction, and this package is the wire: a durable SQLite-backed job
queue (:mod:`repro.cluster.queue`), worker daemons that claim → run →
ack with crash-safe leases (:mod:`repro.cluster.worker`), and a client
API (:mod:`repro.cluster.client`) whose :func:`gather` returns sweep
artifacts byte-identical to a serial ``run_many``.

Three ways in:

* **Library** — ``run_many(specs, executor="queue", queue_dir=...)``
  submits, spawns local drain workers, and gathers: the third execution
  mode next to serial and multiprocessing.
* **CLI** — ``repro submit`` / ``repro worker`` / ``repro status`` shard
  a sweep across any processes on the host that share the queue
  directory (single-host scope: the SQLite/WAL broker cannot span
  machines — see :mod:`repro.cluster.queue`).
* **Direct** — :func:`submit` / :func:`status` / :func:`gather` plus
  :class:`JobQueue` and :class:`Worker` for custom topologies.

Workers share the queue's ``artifacts/`` directory as a
content-addressed cache, so duplicate specs across concurrent sweeps
simulate exactly once; determinism makes that sharing sound.
"""

from repro.cluster.client import (
    QueueStatus,
    gather,
    prune_schedules,
    schedule_keys_in_use,
    status,
    submit,
)
from repro.cluster.jobs import DONE, FAILED, PENDING, RUNNING, STATES, Job
from repro.cluster.queue import JobQueue
from repro.cluster.worker import DEFAULT_BATCH_SIZE, Worker, drain_queue

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DONE",
    "FAILED",
    "Job",
    "JobQueue",
    "PENDING",
    "QueueStatus",
    "RUNNING",
    "STATES",
    "Worker",
    "drain_queue",
    "gather",
    "prune_schedules",
    "schedule_keys_in_use",
    "status",
    "submit",
]
