"""The submit/status/gather client: sweeps in, artifacts out.

This is the producer's half of the cluster contract::

    job_ids = submit(spec.sweep(), "runs/queue")   # enqueue
    ... N x `repro worker --queue runs/queue` ...  # anywhere, anytime
    print(status("runs/queue").render())           # watch
    artifacts = gather("runs/queue", job_ids)      # block, collect

:func:`gather` returns artifacts **in submission (spec) order**, loaded
from the queue's shared content-addressed artifact store — and because
runs are deterministic and the canonical JSON excludes timings, the
result is byte-identical (``RunArtifact.canonical_json``) to a serial
:func:`repro.api.runner.run_many` over the same specs.  A job that
failed terminally raises :class:`~repro.errors.JobFailedError` carrying
the queue's recorded error for every failed job; nothing is silently
dropped.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.analysis.tables import Table
from repro.api.results import RunArtifact, load_artifact
from repro.api.spec import ExperimentSpec
from repro.cluster.jobs import DONE, FAILED, STATES, Job
from repro.cluster.queue import JobQueue
from repro.errors import ClusterError, ConfigurationError, JobFailedError

__all__ = [
    "QueueStatus",
    "checkpoint_keys_in_use",
    "gather",
    "prune_checkpoints",
    "prune_schedules",
    "schedule_keys_in_use",
    "status",
    "submit",
]


def submit(
    specs: Iterable[ExperimentSpec],
    queue_dir: str | Path,
    force: bool = False,
    max_attempts: int | None = None,
) -> list[int]:
    """Enqueue one job per spec; returns job ids in spec order.

    ``queue_dir`` is the directory the workers share; ``force=True``
    makes workers re-simulate even on an artifact-cache hit;
    ``max_attempts`` overrides the per-job retry budget (default 3).
    """
    return JobQueue(queue_dir).submit(
        specs, force=force, max_attempts=max_attempts
    )


@dataclass(slots=True)
class QueueStatus:
    """A point-in-time snapshot of one queue."""

    queue_dir: Path
    counts: dict[str, int]
    jobs: list[Job]
    #: Live worker registrations (the batch-claim lease records): one
    #: dict per worker with ``worker`` / ``registered_at`` /
    #: ``lease_expires_at`` / ``running`` (jobs currently held).
    workers: list[dict] = field(default_factory=list)
    #: Checkpoints in the queue's store: one dict per entry with ``key``,
    #: ``kind`` (``warmup`` — a branchable warm-up prefix — or ``resume``
    #: — a mid-run snapshot a preempted job's retry would fast-forward
    #: from), and ``in_use`` (a pending/running job still needs it — the
    #: ``repro gc`` keep criterion).
    checkpoints: list[dict] = field(default_factory=list)
    #: Tail of the queue's structured event log (``repro status
    #: --events N``); empty unless ``status(..., events=N)`` asked.
    events: list[dict] = field(default_factory=list)

    @property
    def done(self) -> bool:
        """True when nothing is pending or running."""
        return all(job.terminal for job in self.jobs)

    def to_dict(self) -> dict[str, Any]:
        """The snapshot as JSON-serialisable data (``repro status --json``)."""
        payload = {
            "queue_dir": str(self.queue_dir),
            "counts": dict(self.counts),
            "jobs": [job.to_dict() for job in self.jobs],
            "workers": [dict(worker) for worker in self.workers],
            "checkpoints": [dict(ckpt) for ckpt in self.checkpoints],
        }
        if self.events:
            payload["events"] = [dict(event) for event in self.events]
        return payload

    def table(self) -> Table:
        """The ``repro status`` view: one row per job."""
        head = ", ".join(f"{self.counts[s]} {s}" for s in STATES)
        if self.workers:
            head += f"; {len(self.workers)} worker(s) registered"
        table = Table(
            ["job", "experiment", "run_id", "state", "attempts", "worker",
             "error"],
            title=f"Queue {self.queue_dir} — {head}",
        )
        for job in self.jobs:
            table.add_row([
                job.id,
                job.spec.experiment,
                job.run_id,
                job.state,
                f"{job.attempts}/{job.max_attempts}",
                job.worker or "-",
                job.error or "-",
            ])
        return table

    def render(self) -> str:
        """The snapshot as an ASCII table (``repro status``), plus one
        line per warm-up checkpoint in the queue's store."""
        text = self.table().render()
        if self.checkpoints:
            lines = [
                f"  {ckpt['key']}  [{ckpt.get('kind', 'warmup')}]  "
                f"{'in use' if ckpt['in_use'] else 'unreferenced'}"
                for ckpt in self.checkpoints
            ]
            text += "\ncheckpoints:\n" + "\n".join(lines)
        if self.events:
            from repro.obs.events import format_event

            text += "\nrecent events:\n" + "\n".join(
                f"  {format_event(event)}" for event in self.events
            )
        return text


def status(
    queue_dir: str | Path,
    job_ids: Sequence[int] | None = None,
    events: int = 0,
) -> QueueStatus:
    """Snapshot a queue (optionally only the given jobs).

    ``events=N`` also loads the last N records of the queue's structured
    event log (:mod:`repro.obs.events`) into ``QueueStatus.events``.
    Raises :class:`~repro.errors.ClusterError` when ``queue_dir`` holds
    no queue — a typo'd path must not masquerade as an empty one.
    """
    from repro.obs.events import read_events

    queue = JobQueue(queue_dir, create=False)
    return QueueStatus(
        queue_dir=queue.queue_dir,
        counts=queue.counts(),
        jobs=queue.jobs(ids=job_ids),
        workers=queue.workers(),
        checkpoints=_checkpoint_rows(queue),
        events=read_events(queue.queue_dir, limit=events) if events else [],
    )


def _load_done_artifact(queue: JobQueue, job: Job) -> RunArtifact:
    path = queue.artifact_dir / f"{job.run_id}.json"
    try:
        return load_artifact(path)
    except (OSError, ValueError, TypeError, KeyError,
            ConfigurationError) as exc:
        raise ClusterError(
            f"job {job.id} is done but its artifact {path} is "
            f"unreadable/corrupt: {exc}"
        ) from exc


def gather(
    queue_dir: str | Path,
    job_ids: Sequence[int],
    timeout: float | None = None,
    poll_s: float = 0.1,
) -> list[RunArtifact]:
    """Block until every job is terminal; artifacts in job-id argument order.

    Raises :class:`JobFailedError` as soon as any of the jobs fails
    terminally (listing every failure), and :class:`ClusterError` if
    ``timeout`` seconds pass first.  The poll reads only ``(id, state)``
    pairs — full job records and artifacts load once, at the end — and
    it reaps expired leases, so a sweep whose every worker crashed
    converges to a :class:`JobFailedError` instead of hanging.
    ``poll_s`` is the *ceiling* of an adaptive interval: polling starts
    an order of magnitude tighter and backs off exponentially, so a
    batch of tiny jobs is noticed within milliseconds of its report
    while a long sweep still costs only ``1/poll_s`` reads a second.
    """
    queue = JobQueue(queue_dir, create=False)
    ids = list(job_ids)
    deadline = None if timeout is None else time.monotonic() + float(timeout)
    sleep_s = min(float(poll_s), 0.005)
    # Reaping is a write transaction and leases move on the lease
    # timescale, so reap far less often than the read-only state poll —
    # no point contending with workers' claims every poll_s.  The first
    # reap runs immediately, though: a non-submitter gathering an old
    # queue may be looking at jobs whose workers died long ago, and the
    # promised fast convergence to JobFailedError depends on driving
    # those leases to pending/failed before the first timeout check.
    reap_every = max(poll_s, queue.default_lease_s / 4.0)
    next_reap = time.monotonic()
    while True:
        if time.monotonic() >= next_reap:
            queue.reap()  # crashed workers' leases -> pending/failed
            next_reap = time.monotonic() + reap_every
        states = queue.states(ids=ids)
        if any(state == FAILED for state in states.values()):
            failed = [job for job in queue.jobs(ids=ids)
                      if job.state == FAILED]
            lines = "; ".join(job.summary() for job in failed)
            raise JobFailedError(
                f"{len(failed)} job(s) failed terminally: {lines}"
            )
        if all(states[i] == DONE for i in ids):
            jobs = {job.id: job for job in queue.jobs(ids=ids)}
            return [_load_done_artifact(queue, jobs[i]) for i in ids]
        if deadline is not None and time.monotonic() >= deadline:
            unfinished = {i: states[i] for i in ids if states[i] != DONE}
            raise ClusterError(
                f"gather timed out after {timeout}s with unfinished jobs "
                f"{unfinished} — are any workers running against "
                f"{queue.queue_dir}?"
            )
        time.sleep(sleep_s)
        sleep_s = min(sleep_s * 2.0, float(poll_s))


# -- schedule-store garbage collection ------------------------------------


def _keys_in_use(queue: JobQueue) -> set[str]:
    """The in-use key set of :func:`schedule_keys_in_use`, given a queue."""
    from repro.api.registry import REGISTRY
    from repro.cluster.jobs import PENDING, RUNNING

    keys: set[str] = set()
    # query the live states only: a long-lived queue dir holds thousands
    # of terminal rows, and rebuilding their specs just to skip them
    # would make every gc run O(history)
    for state in (PENDING, RUNNING):
        for job in queue.jobs(state=state):
            entry = REGISTRY.get(job.spec.experiment)
            if entry.recordings is None:
                continue
            keys.update(entry.recordings(job.spec))
    return keys


def schedule_keys_in_use(queue_dir: str | Path) -> set[str]:
    """The recorded-schedule keys the queue's *live* jobs still need.

    A key is in use while any pending or running job's experiment
    declares it through the registry's ``recordings`` hook — those jobs
    will fetch the schedule from the store when a worker picks them up.
    Terminal jobs contribute nothing: their artifacts are already in the
    cache, so they never touch the schedule store again (a ``--force``
    resubmission re-records from scratch).  ``queue_dir`` must be an
    existing queue; a typo'd path raises
    :class:`~repro.errors.ClusterError` rather than reporting an empty
    working set and licensing a full wipe.
    """
    return _keys_in_use(JobQueue(queue_dir, create=False))


def prune_schedules(
    queue_dir: str | Path, dry_run: bool = False
) -> tuple[list[str], list[str]]:
    """Garbage-collect a queue's recorded-schedule store (``repro gc``).

    Long-lived queue directories accumulate schedules for sweeps that
    finished long ago; this removes every store entry whose key is not
    in :func:`schedule_keys_in_use` and returns ``(removed, kept)`` key
    lists.  Removal is atomic per entry (one ``unlink`` each), so a
    worker racing the GC sees either a complete schedule file or a
    clean miss it re-records — never a torn one.  ``dry_run=True`` only
    reports what would go.
    """
    from repro.api.runner import SCHEDULE_SUBDIR
    from repro.core.trace_io import ScheduleStore

    queue = JobQueue(queue_dir, create=False)
    in_use = _keys_in_use(queue)
    store = ScheduleStore(queue.artifact_dir / SCHEDULE_SUBDIR)
    if dry_run:
        present = store.keys()
        removed = sorted(k for k in present if k not in in_use)
        kept = sorted(k for k in present if k in in_use)
        return removed, kept
    removed = store.prune(in_use)
    return removed, sorted(set(store.keys()) & in_use)


# -- checkpoint-store garbage collection -----------------------------------


def _checkpoint_store(queue: JobQueue):
    from repro.api.runner import CHECKPOINT_SUBDIR
    from repro.sim.checkpoint import CheckpointStore

    return CheckpointStore(queue.artifact_dir / CHECKPOINT_SUBDIR)


def _checkpoint_keys_in_use(queue: JobQueue) -> set[str]:
    """The in-use key set of :func:`checkpoint_keys_in_use`, given a queue."""
    from repro.api.registry import REGISTRY
    from repro.cluster.jobs import PENDING, RUNNING

    keys: set[str] = set()
    for state in (PENDING, RUNNING):
        for job in queue.jobs(state=state):
            entry = REGISTRY.get(job.spec.experiment)
            if entry.checkpoints is None:
                continue
            keys.update(entry.checkpoints(job.spec))
    return keys


def _resume_prefixes_in_use(queue: JobQueue) -> set[str]:
    """Key prefixes of mid-run resume snapshots live jobs may still need.

    Resume snapshots (:mod:`repro.sim.resume`) are keyed
    ``resume-<run_id>-p<phase>-<fingerprint>-n<index>``; a pending or
    running job's retry fast-forwards from any snapshot under its run
    id's prefix, so GC must keep them all.  Terminal jobs contribute
    nothing: a done job never retries, a permanently failed one restarts
    its attempt counter from scratch anyway.
    """
    from repro.cluster.jobs import PENDING, RUNNING

    prefixes: set[str] = set()
    for state in (PENDING, RUNNING):
        for job in queue.jobs(state=state):
            prefixes.add(f"resume-{job.run_id}-")
    return prefixes


def _checkpoint_keep_set(queue: JobQueue, present: list[str]) -> set[str]:
    """Of ``present`` store keys, the ones a live job still needs."""
    declared = _checkpoint_keys_in_use(queue)
    prefixes = _resume_prefixes_in_use(queue)
    keep = set()
    for key in present:
        if key in declared or any(key.startswith(p) for p in prefixes):
            keep.add(key)
    return keep


def _checkpoint_rows(queue: JobQueue) -> list[dict]:
    """The ``repro status`` checkpoint rows: every stored key with its
    kind (warm-up prefix vs mid-run resume snapshot), flagged in-use
    when a live job still needs it."""
    store = _checkpoint_store(queue)
    present = store.keys()
    if not present:
        return []
    keep = _checkpoint_keep_set(queue, present)
    return [
        {
            "key": key,
            "kind": "resume" if key.startswith("resume-") else "warmup",
            "in_use": key in keep,
        }
        for key in present
    ]


def checkpoint_keys_in_use(queue_dir: str | Path) -> set[str]:
    """The warm-up checkpoint keys the queue's *live* jobs still need.

    The simulate-once/branch-many analogue of
    :func:`schedule_keys_in_use`: a key is in use while any pending or
    running job's experiment declares it through the registry's
    ``checkpoints`` hook.  Terminal jobs contribute nothing — their
    artifacts are cached, so they never branch again.
    """
    return _checkpoint_keys_in_use(JobQueue(queue_dir, create=False))


def prune_checkpoints(
    queue_dir: str | Path, dry_run: bool = False
) -> tuple[list[str], list[str]]:
    """Garbage-collect a queue's checkpoint store (``repro gc``).

    Removes every store entry no live job needs — neither declared via
    :func:`checkpoint_keys_in_use` (warm-up prefixes) nor covered by a
    pending/running job's resume-snapshot prefix (mid-run snapshots a
    preempted retry would fast-forward from) — and returns ``(removed,
    kept)`` key lists.  Removal is atomic per entry (one ``unlink``), so
    a worker racing the GC sees either a complete checkpoint or a clean
    miss it rebuilds from scratch — never a torn file.  ``dry_run=True``
    only reports what would go.
    """
    queue = JobQueue(queue_dir, create=False)
    store = _checkpoint_store(queue)
    present = store.keys()
    keep = _checkpoint_keep_set(queue, present)
    if dry_run:
        removed = sorted(k for k in present if k not in keep)
        kept = sorted(k for k in present if k in keep)
        return removed, kept
    removed = store.prune(keep)
    return removed, sorted(set(store.keys()) & keep)
