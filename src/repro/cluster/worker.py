"""Worker daemons: claim a batch → run → report, crash-safe and drainable.

A :class:`Worker` owns one claim-execute loop over a
:class:`~repro.cluster.queue.JobQueue`.  Each claimed job runs through
the ordinary :func:`repro.api.runner.run` with the queue's shared
``artifacts/`` directory as the content-addressed cache — so a duplicate
spec (same run-id) submitted by any sweep, concurrent or not, simulates
exactly once and every later worker answers it from disk.

The broker is amortised across jobs (the batch-claim protocol of
:mod:`repro.cluster.queue`): each loop iteration leases up to
``batch_size`` jobs in one transaction, executes them in claim order,
and writes the whole batch of outcomes back with one
:meth:`~repro.cluster.queue.JobQueue.report_batch` commit.  Liveness is
a *persistent worker lease*: one registration row, renewed by a single
heartbeat thread calling
:meth:`~repro.cluster.queue.JobQueue.heartbeat_worker` every
``lease_s / 4`` seconds, which pushes every held job's deadline forward
together.  A worker that dies without reporting (even ``kill -9``)
simply stops heartbeating and its whole batch is reclaimed, each job
charged exactly the one attempt its claim burned.

Failure policy: a :class:`~repro.errors.ConfigurationError` is
deterministic — re-running cannot help — so it fails the job terminally
at once; any other exception charges one attempt and requeues until the
job's budget runs out.

Two loops:

* :meth:`Worker.drain` — run until the queue has nothing pending *and*
  nothing running (it waits out other workers' running jobs, because a
  failure would requeue them), then return.  This is what
  ``run_many(executor="queue")`` spawns and what ``repro worker
  --drain`` runs.
* :meth:`Worker.serve` — poll forever (a daemon).  ``repro worker``
  runs this; SIGTERM/SIGINT request a *graceful drain*: the current
  batch finishes and reports (claimed jobs are ours to finish — a
  requeue would charge them an attempt for our impatience), then the
  loop exits cleanly and the lease record is unregistered.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path

from repro.api.registry import ExperimentRegistry
from repro.api.runner import obs_enabled_from_env, run
from repro.cluster.jobs import Job
from repro.cluster.queue import JobQueue
from repro.errors import ConfigurationError, require_positive_int
from repro.obs.flight import FlightRecorder
from repro.obs.hub import MetricsHub
from repro.obs.spans import append_span_record, span_record
from repro.sim.resume import CheckpointPolicy

__all__ = ["DEFAULT_BATCH_SIZE", "Worker", "drain_queue"]

#: How many jobs one loop iteration claims (and one report commits) by
#: default.  Chosen from BENCH_pr5 data: on the tiny-job ``sweep-queue``
#: bench, batches of 4+ put the queue executor within ~1x of the local
#: process pool, and larger batches stop helping while costing work-
#: sharing granularity (jobs held in a batch cannot be stolen by idle
#: workers).  ``--batch-size 1`` recovers the per-job protocol exactly.
DEFAULT_BATCH_SIZE = 4


class Worker:
    """One batched claim-execute loop bound to a queue (see module docs)."""

    def __init__(
        self,
        queue: JobQueue | str | Path,
        worker_id: str | None = None,
        lease_s: float | None = None,
        poll_s: float = 0.2,
        registry: ExperimentRegistry | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        checkpoint_policy: "CheckpointPolicy | str | None" = None,
    ) -> None:
        """Bind a worker to ``queue``; ``batch_size`` caps jobs per claim.

        ``checkpoint_policy`` (a
        :class:`~repro.sim.resume.CheckpointPolicy` or its
        ``--checkpoint-every`` string form) makes every executed job
        write periodic mid-run snapshots into the queue's shared
        ``artifacts/checkpoints`` store — and *resume* from the newest
        valid one when re-running a job a preempted worker left behind,
        instead of starting over at t=0.
        """
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.lease_s = (
            self.queue.default_lease_s if lease_s is None else float(lease_s)
        )
        if self.lease_s <= 0:
            raise ConfigurationError(f"lease_s must be > 0, got {lease_s!r}")
        self.batch_size = require_positive_int(batch_size, "batch_size")
        self.poll_s = float(poll_s)
        self.registry = registry
        if isinstance(checkpoint_policy, str):
            checkpoint_policy = CheckpointPolicy.parse(checkpoint_policy)
        self.checkpoint_policy = checkpoint_policy
        self.jobs_run = 0
        self._stop = threading.Event()
        self._renew_at = float("-inf")  # idle-loop lease renewal deadline
        #: Bounded ring of the current job's recent engine events — the
        #: crash flight recorder (:mod:`repro.obs.flight`).  Armed by the
        #: REPRO_OBS environment switch; its dump rides along on failure
        #: reports and answers SIGUSR1 while a job is running.
        self.flight = FlightRecorder() if obs_enabled_from_env() else None

    # -- lifecycle ---------------------------------------------------------

    @property
    def stopping(self) -> bool:
        """True once a graceful stop was requested (loops exit soon)."""
        return self._stop.is_set()

    def request_stop(self) -> None:
        """Ask the loop to exit after the current batch (graceful drain)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → :meth:`request_stop` (daemon entry points only:
        signal handlers are process-global and main-thread-only).

        Also binds SIGUSR1 to dump the flight recorder to stderr — "what
        is this wedged worker doing right now?" without killing it."""

        def handler(signum, frame):  # noqa: ARG001 - signal API
            self.request_stop()

        def dump(signum, frame):  # noqa: ARG001 - signal API
            if self.flight is not None:
                print(self.flight.dump(), file=sys.stderr, flush=True)
            else:
                print(
                    f"[{self.worker_id}] flight recorder off "
                    "(start the worker with REPRO_OBS=1 to arm it)",
                    file=sys.stderr, flush=True,
                )

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
        if hasattr(signal, "SIGUSR1"):  # not on every platform
            signal.signal(signal.SIGUSR1, dump)

    # -- the claim-execute step -------------------------------------------

    def _heartbeat_loop(
        self, done: threading.Event, lease_lost: threading.Event
    ) -> None:
        interval = max(self.lease_s / 4.0, 0.05)
        while not done.wait(interval):
            if not self.queue.heartbeat_worker(self.worker_id, self.lease_s):
                # lease reaped: our jobs are someone else's now — tell
                # the executing loop so it stops burning CPU on a batch
                # another worker is already re-running
                lease_lost.set()
                return

    def _failure(self, exc: BaseException) -> str:
        """The error string a failed attempt reports — plus, with the
        flight recorder armed, the tail of engine events that led here."""
        error = f"{type(exc).__name__}: {exc}"
        if self.flight is not None and self.flight.total:
            error += "\n" + self.flight.dump()
        return error

    def _execute(self, job: Job) -> tuple[int, str | None, bool]:
        """Run one claimed job; returns its ``report_batch`` triple.

        Every execution — success or failure — appends one wall-clock
        span record to the queue's ``spans.jsonl``, which is what lets
        ``repro trace QUEUE_DIR`` render a sweep as per-worker timelines
        after the fact.  With REPRO_OBS set, the run collects into a
        fresh :class:`~repro.obs.hub.MetricsHub` wired to this worker's
        flight recorder (cleared per job, so a dump always describes the
        job that was running).
        """
        obs: MetricsHub | bool = False
        if self.flight is not None:
            self.flight.clear()
            obs = MetricsHub(flight=self.flight)
        wall_start = time.time()
        start = time.perf_counter()
        result: tuple[int, str | None, bool]
        try:
            run(
                job.spec,
                registry=self.registry,
                out_dir=self.queue.artifact_dir,
                force=job.force,
                obs=obs,
                checkpoint_policy=self.checkpoint_policy,
            )
        except ConfigurationError as exc:
            result = (job.id, self._failure(exc), False)
        except Exception as exc:  # noqa: BLE001 - the queue is the error record
            result = (job.id, self._failure(exc), True)
        else:
            result = (job.id, None, True)
        record = span_record(
            f"{job.spec.experiment}/{job.run_id}",
            wall_start,
            time.perf_counter() - start,
            cat="job",
            tid=self.worker_id,
            args={"job": job.id, "attempt": job.attempts,
                  "ok": result[1] is None},
        )
        try:
            append_span_record(self.queue.queue_dir, record)
        except OSError:  # pragma: no cover - e.g. read-only queue dir
            pass
        return result

    def _run_claimed(self, jobs: list[Job]) -> dict[int, bool]:
        """Execute claimed jobs under one heartbeat; report them in one commit.

        The single worker-lease heartbeat covers the whole batch (the
        claim already registered our lease row), and the batched report
        happens even if an execution raises something unexpected — the
        jobs finished by then must not wait for lease expiry.  If the
        heartbeat discovers our lease was reaped (we stalled long enough
        to be presumed dead), the rest of the batch is abandoned: those
        jobs already belong to another worker, so executing them here
        would only duplicate work whose report would be rejected anyway.
        """
        done = threading.Event()
        lease_lost = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(done, lease_lost), daemon=True
        )
        beat.start()
        results: list[tuple[int, str | None, bool]] = []
        try:
            for job in jobs:
                if lease_lost.is_set():
                    break
                results.append(self._execute(job))
        finally:
            done.set()
            beat.join(timeout=self.lease_s)
            accepted = self.queue.report_batch(self.worker_id, results)
            self.jobs_run += len(results)
        # acked = ran clean AND the queue took our done report; a failure
        # report being accepted is not an ack
        return {
            job_id: error is None and accepted.get(job_id, False)
            for job_id, error, _retry in results
        }

    def process(self, job: Job) -> bool:
        """Execute one already-claimed job; returns True if we acked it."""
        return self._run_claimed([job]).get(job.id, False)

    def run_one(self) -> bool:
        """Claim and execute one job; ``False`` when nothing was claimable."""
        return self.run_batch(limit=1) > 0

    def run_batch(self, limit: int | None = None) -> int:
        """Claim up to ``batch_size`` jobs (capped at ``limit``) and run them.

        One claim transaction, one report transaction, one heartbeat
        timer for the lot; returns the number of jobs executed (0 when
        nothing was claimable).
        """
        n = self.batch_size if limit is None else min(self.batch_size, limit)
        jobs = self.queue.claim_batch(self.worker_id, n, self.lease_s)
        if not jobs:
            return 0
        self._run_claimed(jobs)
        return len(jobs)

    # -- loops -------------------------------------------------------------

    def _budget(self, max_jobs: int | None) -> int | None:
        """Jobs this loop may still run (``None`` = unlimited)."""
        return None if max_jobs is None else max_jobs - self.jobs_run

    def _keep_registered(self) -> None:
        """Keep the lease record alive while the loop idles.

        Claims and in-batch heartbeats renew the row as a side effect;
        this covers the gaps between them, on the lease timescale (one
        write per ``lease_s / 4``, not per poll), so an idle daemon
        stays visible in ``repro status`` instead of being reaped as
        presumed dead.
        """
        now = time.monotonic()
        if now >= self._renew_at:
            self.queue.register_worker(self.worker_id, self.lease_s)
            self._renew_at = now + self.lease_s / 4.0

    def drain(self, max_jobs: int | None = None) -> int:
        """Work until the queue is quiescent; returns jobs executed.

        Keeps polling while *other* workers still have running jobs —
        one of them failing or dying would requeue work this drain is
        responsible for finishing.  ``max_jobs`` bounds how many jobs
        this worker executes before returning early.  Registers the
        worker's lease record on entry and unregisters it on the way
        out.
        """
        try:
            while not self.stopping:
                self._keep_registered()
                budget = self._budget(max_jobs)
                if budget is not None and budget <= 0:
                    break
                if self.run_batch(limit=budget):
                    continue
                if not self.queue.active():
                    break
                self._stop.wait(self.poll_s)
        finally:
            self.queue.unregister_worker(self.worker_id)
        return self.jobs_run

    def serve(self, max_jobs: int | None = None) -> int:
        """Poll until :meth:`request_stop` (or ``max_jobs``); daemon mode.

        Registers the worker's lease record on entry (renewed while
        idle) and unregisters it on the way out.
        """
        try:
            while not self.stopping:
                self._keep_registered()
                budget = self._budget(max_jobs)
                if budget is not None and budget <= 0:
                    break
                if not self.run_batch(limit=budget):
                    self._stop.wait(self.poll_s)
        finally:
            self.queue.unregister_worker(self.worker_id)
        return self.jobs_run


def drain_queue(
    queue_dir: str | Path,
    lease_s: float | None = None,
    poll_s: float = 0.2,
    batch_size: int = DEFAULT_BATCH_SIZE,
    checkpoint_policy: "CheckpointPolicy | str | None" = None,
) -> int:
    """Module-level drain entry point (picklable for ``multiprocessing``).

    ``lease_s`` / ``poll_s`` / ``batch_size`` / ``checkpoint_policy``
    configure the :class:`Worker` exactly as its constructor does.
    Installs the
    graceful-drain signal handlers: a parent that ``terminate()``\\ s
    this process (SIGTERM) lets the current batch finish and report
    instead of aborting it mid-run — which matters on a shared queue,
    where the aborted jobs could belong to someone else's sweep and
    would be charged a retry attempt for our impatience.
    """
    worker = Worker(
        JobQueue(queue_dir), lease_s=lease_s, poll_s=poll_s,
        batch_size=batch_size, checkpoint_policy=checkpoint_policy,
    )
    worker.install_signal_handlers()
    return worker.drain()
