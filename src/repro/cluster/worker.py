"""Worker daemons: claim → run → ack, crash-safe and drainable.

A :class:`Worker` owns one claim-execute loop over a
:class:`~repro.cluster.queue.JobQueue`.  Each claimed job runs through
the ordinary :func:`repro.api.runner.run` with the queue's shared
``artifacts/`` directory as the content-addressed cache — so a duplicate
spec (same run-id) submitted by any sweep, concurrent or not, simulates
exactly once and every later worker answers it from disk.

Liveness is the queue's lease protocol: while a job simulates, a
heartbeat thread extends the lease every ``lease_s / 4`` seconds; a
worker that dies without acking (even ``kill -9``) simply stops
heartbeating and the job is reclaimed by whoever claims next.

Failure policy: a :class:`~repro.errors.ConfigurationError` is
deterministic — re-running cannot help — so it fails the job terminally
at once; any other exception charges one attempt and requeues until the
job's budget runs out.

Two loops:

* :meth:`Worker.drain` — run until the queue has nothing pending *and*
  nothing running (it waits out other workers' running jobs, because a
  failure would requeue them), then return.  This is what
  ``run_many(executor="queue")`` spawns and what ``repro worker
  --drain`` runs.
* :meth:`Worker.serve` — poll forever (a daemon).  ``repro worker``
  runs this; SIGTERM/SIGINT request a *graceful drain*: the current job
  finishes and acks, then the loop exits cleanly.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
from pathlib import Path

from repro.api.registry import ExperimentRegistry
from repro.api.runner import run
from repro.cluster.jobs import Job
from repro.cluster.queue import JobQueue
from repro.errors import ConfigurationError

__all__ = ["Worker", "drain_queue"]


class Worker:
    """One claim-execute loop bound to a queue (see module docstring)."""

    def __init__(
        self,
        queue: JobQueue | str | Path,
        worker_id: str | None = None,
        lease_s: float | None = None,
        poll_s: float = 0.2,
        registry: ExperimentRegistry | None = None,
    ) -> None:
        self.queue = queue if isinstance(queue, JobQueue) else JobQueue(queue)
        self.worker_id = worker_id or f"{socket.gethostname()}:{os.getpid()}"
        self.lease_s = (
            self.queue.default_lease_s if lease_s is None else float(lease_s)
        )
        if self.lease_s <= 0:
            raise ConfigurationError(f"lease_s must be > 0, got {lease_s!r}")
        self.poll_s = float(poll_s)
        self.registry = registry
        self.jobs_run = 0
        self._stop = threading.Event()

    # -- lifecycle ---------------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def request_stop(self) -> None:
        """Ask the loop to exit after the current job (graceful drain)."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → :meth:`request_stop` (daemon entry points only:
        signal handlers are process-global and main-thread-only)."""

        def handler(signum, frame):  # noqa: ARG001 - signal API
            self.request_stop()

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)

    # -- the claim-execute step -------------------------------------------

    def _heartbeat_loop(self, job_id: int, done: threading.Event) -> None:
        interval = max(self.lease_s / 4.0, 0.05)
        while not done.wait(interval):
            if not self.queue.heartbeat(job_id, self.worker_id, self.lease_s):
                return  # lease lost: the job is someone else's now

    def process(self, job: Job) -> bool:
        """Execute one claimed job; returns True if we acked it."""
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(job.id, done), daemon=True
        )
        beat.start()
        try:
            run(
                job.spec,
                registry=self.registry,
                out_dir=self.queue.artifact_dir,
                force=job.force,
            )
        except ConfigurationError as exc:
            self.queue.fail(
                job.id,
                self.worker_id,
                f"{type(exc).__name__}: {exc}",
                retry=False,
            )
            return False
        except Exception as exc:  # noqa: BLE001 - the queue is the error record
            self.queue.fail(job.id, self.worker_id, f"{type(exc).__name__}: {exc}")
            return False
        else:
            return self.queue.ack(job.id, self.worker_id)
        finally:
            done.set()
            beat.join(timeout=self.lease_s)
            self.jobs_run += 1

    def run_one(self) -> bool:
        """Claim and execute one job; ``False`` when nothing was claimable."""
        job = self.queue.claim(self.worker_id, self.lease_s)
        if job is None:
            return False
        self.process(job)
        return True

    # -- loops -------------------------------------------------------------

    def drain(self, max_jobs: int | None = None) -> int:
        """Work until the queue is quiescent; returns jobs executed.

        Keeps polling while *other* workers still have running jobs —
        one of them failing or dying would requeue work this drain is
        responsible for finishing.
        """
        while not self.stopping:
            if max_jobs is not None and self.jobs_run >= max_jobs:
                break
            if self.run_one():
                continue
            if not self.queue.active():
                break
            self._stop.wait(self.poll_s)
        return self.jobs_run

    def serve(self, max_jobs: int | None = None) -> int:
        """Poll until :meth:`request_stop` (or ``max_jobs``); daemon mode."""
        while not self.stopping:
            if max_jobs is not None and self.jobs_run >= max_jobs:
                break
            if not self.run_one():
                self._stop.wait(self.poll_s)
        return self.jobs_run


def drain_queue(
    queue_dir: str | Path,
    lease_s: float | None = None,
    poll_s: float = 0.2,
) -> int:
    """Module-level drain entry point (picklable for ``multiprocessing``).

    Installs the graceful-drain signal handlers: a parent that
    ``terminate()``\\ s this process (SIGTERM) lets the current job
    finish and ack instead of aborting it mid-run — which matters on a
    shared queue, where the aborted job could belong to someone else's
    sweep and would be charged a retry attempt for our impatience.
    """
    worker = Worker(JobQueue(queue_dir), lease_s=lease_s, poll_s=poll_s)
    worker.install_signal_handlers()
    return worker.drain()
