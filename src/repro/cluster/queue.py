"""The durable job queue: SQLite under a queue directory.

A :class:`JobQueue` lives entirely inside one directory::

    <queue_dir>/queue.db     -- the job table (SQLite, WAL mode)
    <queue_dir>/artifacts/   -- the shared content-addressed artifact cache

Any number of submitting clients and worker processes open the same
queue concurrently; SQLite's locking makes each operation atomic, and
every mutation happens inside a single ``BEGIN IMMEDIATE`` transaction
so two workers can never claim the same job.  Scope: all participants
must run on **one host** — WAL mode coordinates writers through a
shared-memory ``-shm`` file, which does not work across machines, and
network filesystems routinely break SQLite locking outright.
Cross-machine federation is a roadmap item and will need a different
broker, not a shared ``queue.db``.

Crash safety is lease-based: :meth:`claim` hands a job out with a lease
deadline, the worker's heartbeat thread keeps pushing the deadline
forward, and a worker that dies (including SIGKILL) simply stops
heartbeating — the next :meth:`claim` by anyone reclaims the expired
job.  ``attempts`` counts claims, so a job that keeps killing its
workers exhausts ``max_attempts`` and lands in a terminal ``failed``
record instead of looping forever.

Connections are opened per operation and never cached: cheap for a
coarse-grained work queue (jobs are whole simulations), and it means the
queue object itself is picklable state-free glue that can cross a
``fork``/``spawn`` boundary.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import closing
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.results import spec_run_id
from repro.api.spec import ExperimentSpec
from repro.cluster.jobs import (
    DONE,
    FAILED,
    JOB_COLUMNS,
    PENDING,
    RUNNING,
    STATES,
    Job,
    job_from_row,
)
from repro.errors import ClusterError, ConfigurationError

__all__ = ["JobQueue"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id           TEXT    NOT NULL,
    spec_json        TEXT    NOT NULL,
    state            TEXT    NOT NULL DEFAULT 'pending',
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    force            INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    lease_expires_at REAL,
    submitted_at     REAL    NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    error            TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, id);
"""

_COLS = ", ".join(JOB_COLUMNS)


class JobQueue:
    """A durable, multi-process job queue rooted at ``queue_dir``."""

    def __init__(
        self,
        queue_dir: str | Path,
        default_lease_s: float = 30.0,
        max_attempts: int = 3,
        create: bool = True,
    ) -> None:
        """Open (or with ``create=True``, initialise) the queue.

        Read-only consumers — ``status``, ``gather`` — pass
        ``create=False`` so a typo'd directory raises
        :class:`~repro.errors.ClusterError` instead of silently
        reporting a healthy empty queue.
        """
        if default_lease_s <= 0:
            raise ConfigurationError(
                f"default_lease_s must be > 0, got {default_lease_s!r}"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts!r}"
            )
        self.queue_dir = Path(queue_dir)
        self.default_lease_s = float(default_lease_s)
        self.max_attempts = int(max_attempts)
        if not create and not self.db_path.is_file():
            raise ClusterError(
                f"{self.queue_dir} is not a job queue (no queue.db) — "
                f"wrong --queue path, or nothing submitted yet?"
            )
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        with closing(self._connect()) as conn:
            conn.executescript(_SCHEMA)

    @property
    def db_path(self) -> Path:
        return self.queue_dir / "queue.db"

    @property
    def artifact_dir(self) -> Path:
        """The content-addressed artifact cache all workers share."""
        return self.queue_dir / "artifacts"

    def _connect(self) -> sqlite3.Connection:
        # autocommit mode + explicit BEGIN IMMEDIATE where atomicity
        # spans a read-modify-write; WAL lets readers coexist with the
        # single writer.
        conn = sqlite3.connect(self.db_path, timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- producing ---------------------------------------------------------

    def submit(
        self,
        specs: Iterable[ExperimentSpec],
        force: bool = False,
        max_attempts: int | None = None,
    ) -> list[int]:
        """Enqueue one job per spec; returns job ids in spec order."""
        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, ExperimentSpec):
                raise ConfigurationError(
                    f"submit() takes ExperimentSpec items, got {spec!r}"
                )
        budget = self.max_attempts if max_attempts is None else int(max_attempts)
        if budget < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {budget!r}")
        now = time.time()
        rows = [
            (
                spec_run_id(spec),
                json.dumps(spec.to_dict(), sort_keys=True),
                budget,
                int(bool(force)),
                now,
            )
            for spec in spec_list
        ]
        if not rows:
            return []
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            first = None
            for row in rows:
                cursor = conn.execute(
                    "INSERT INTO jobs (run_id, spec_json, max_attempts, force,"
                    " submitted_at) VALUES (?, ?, ?, ?, ?)",
                    row,
                )
                if first is None:
                    first = cursor.lastrowid
            conn.execute("COMMIT")
        assert first is not None
        return list(range(first, first + len(rows)))

    # -- consuming ---------------------------------------------------------

    def _reclaim_expired(self, conn: sqlite3.Connection, now: float) -> None:
        """Expired leases → back to pending, or terminal once out of budget.

        Caller holds an open ``BEGIN IMMEDIATE`` transaction.
        """
        conn.execute(
            "UPDATE jobs SET state = ?, error ="
            " 'lease expired after ' || attempts || ' attempt(s); worker '"
            " || COALESCE(worker, '?') || ' presumed dead',"
            " worker = NULL, lease_expires_at = NULL, finished_at = ?"
            " WHERE state = ? AND lease_expires_at < ? AND attempts >= max_attempts",
            (FAILED, now, RUNNING, now),
        )
        conn.execute(
            "UPDATE jobs SET state = ?, worker = NULL, lease_expires_at = NULL"
            " WHERE state = ? AND lease_expires_at < ?",
            (PENDING, RUNNING, now),
        )

    def claim(self, worker_id: str, lease_s: float | None = None) -> Job | None:
        """Atomically claim the oldest pending job (or ``None``).

        Reclaims expired leases first, so a crashed worker's job comes
        back into rotation on the very next claim by anyone.
        """
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            self._reclaim_expired(conn, now)
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ? ORDER BY id LIMIT 1",
                (PENDING,),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            job = job_from_row(row)
            conn.execute(
                "UPDATE jobs SET state = ?, worker = ?, attempts = attempts + 1,"
                " lease_expires_at = ?, started_at = ?, error = NULL"
                " WHERE id = ?",
                (RUNNING, worker_id, now + lease, now, job.id),
            )
            conn.execute("COMMIT")
        job.state = RUNNING
        job.worker = worker_id
        job.attempts += 1
        job.lease_expires_at = now + lease
        job.started_at = now
        job.error = None
        return job

    def heartbeat(
        self, job_id: int, worker_id: str, lease_s: float | None = None
    ) -> bool:
        """Extend the lease; ``False`` means the job is no longer ours."""
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires_at = ?"
                " WHERE id = ? AND worker = ? AND state = ?",
                (time.time() + lease, job_id, worker_id, RUNNING),
            )
        return cursor.rowcount == 1

    def ack(self, job_id: int, worker_id: str) -> bool:
        """Mark a claimed job done; ``False`` if the lease was lost.

        A lost ack is harmless: it means the lease expired and someone
        else (re)ran the job — and runs are deterministic, so the shared
        artifact cache holds the same bytes either way.
        """
        with closing(self._connect()) as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = NULL,"
                " lease_expires_at = NULL WHERE id = ? AND worker = ? AND state = ?",
                (DONE, time.time(), job_id, worker_id, RUNNING),
            )
        return cursor.rowcount == 1

    def fail(
        self, job_id: int, worker_id: str, error: str, retry: bool = True
    ) -> bool:
        """Record a failed attempt; retries until the budget runs out.

        ``retry=False`` fails the job terminally regardless of budget —
        for deterministic errors (bad spec) that re-running cannot fix.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT attempts, max_attempts FROM jobs"
                " WHERE id = ? AND worker = ? AND state = ?",
                (job_id, worker_id, RUNNING),
            ).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return False
            attempts, max_attempts = row
            if retry and attempts < max_attempts:
                conn.execute(
                    "UPDATE jobs SET state = ?, worker = NULL,"
                    " lease_expires_at = NULL, error = ? WHERE id = ?",
                    (PENDING, error, job_id),
                )
            else:
                conn.execute(
                    "UPDATE jobs SET state = ?, lease_expires_at = NULL,"
                    " finished_at = ?, error = ? WHERE id = ?",
                    (FAILED, now, error, job_id),
                )
            conn.execute("COMMIT")
        return True

    # -- observing ---------------------------------------------------------

    def job(self, job_id: int) -> Job:
        with closing(self._connect()) as conn:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise ClusterError(f"no job {job_id!r} in queue {self.queue_dir}")
        return job_from_row(row)

    def jobs(
        self,
        ids: Sequence[int] | None = None,
        state: str | None = None,
    ) -> list[Job]:
        """Jobs in id order — all of them, a subset, or one state."""
        if state is not None and state not in STATES:
            raise ClusterError(f"unknown job state {state!r}; one of {STATES}")
        query = f"SELECT {_COLS} FROM jobs"
        params: tuple = ()
        clauses = []
        if ids is not None:
            ids = list(ids)
            if not ids:
                return []
            clauses.append(f"id IN ({', '.join('?' * len(ids))})")
            params += tuple(ids)
        if state is not None:
            clauses.append("state = ?")
            params += (state,)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        found = [job_from_row(row) for row in rows]
        if ids is not None and len(found) != len(set(ids)):
            missing = sorted(set(ids) - {job.id for job in found})
            raise ClusterError(
                f"no such job(s) {missing} in queue {self.queue_dir}"
            )
        return found

    def states(self, ids: Sequence[int] | None = None) -> dict[int, str]:
        """``{job id: state}`` — the cheap poll for gather loops.

        Unlike :meth:`jobs` this reads two columns and never rebuilds
        specs, so waiting on a thousand-job sweep stays O(ids) per poll.
        """
        query = "SELECT id, state FROM jobs"
        params: tuple = ()
        if ids is not None:
            ids = list(ids)
            if not ids:
                return {}
            query += f" WHERE id IN ({', '.join('?' * len(ids))})"
            params = tuple(ids)
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        found = dict(rows)
        if ids is not None and len(found) != len(set(ids)):
            missing = sorted(set(ids) - set(found))
            raise ClusterError(
                f"no such job(s) {missing} in queue {self.queue_dir}"
            )
        return found

    def reap(self) -> None:
        """Reclaim expired leases now (normally claim/active do this).

        Lets a pure observer — e.g. a gather loop with every worker dead
        — still drive crashed jobs to pending/failed instead of watching
        them stay 'running' forever.
        """
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            self._reclaim_expired(conn, time.time())
            conn.execute("COMMIT")

    def counts(self) -> dict[str, int]:
        """``{state: number of jobs}`` with every state present."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in STATES}
        out.update(dict(rows))
        return out

    def active(self) -> bool:
        """True while any job is pending or could still come back.

        Reclaims expired leases first so a drain loop polling this sees
        a crashed worker's job as pending, not as forever-running.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            self._reclaim_expired(conn, now)
            row = conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?)",
                (PENDING, RUNNING),
            ).fetchone()
            conn.execute("COMMIT")
        return row[0] > 0
