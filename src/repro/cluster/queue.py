"""The durable job queue: SQLite under a queue directory.

A :class:`JobQueue` lives entirely inside one directory::

    <queue_dir>/queue.db     -- the job table (SQLite, WAL mode)
    <queue_dir>/artifacts/   -- the shared content-addressed artifact cache
    <queue_dir>/events.jsonl -- append-only structured event log

Every state transition the broker commits also appends a JSON line to
``events.jsonl`` (:mod:`repro.obs.events`): submit, claim, ack, fail,
requeue, heartbeat, register/unregister, lease-expiry and reclaim.  The
log is telemetry, not state — the database never reads it back — but it
turns "what did the cluster do last night?" into ``repro tail`` /
``repro status --events`` instead of SQL archaeology.  Lines are written
inside the mutating transaction (single ``O_APPEND`` writes, atomic at
line granularity), so the log can at worst over-report a transaction
that failed to commit, never misorder within one writer.

Any number of submitting clients and worker processes open the same
queue concurrently; SQLite's locking makes each operation atomic, and
every mutation happens inside a single ``BEGIN IMMEDIATE`` transaction
so two workers can never claim the same job.  Scope: all participants
must run on **one host** — WAL mode coordinates writers through a
shared-memory ``-shm`` file, which does not work across machines, and
network filesystems routinely break SQLite locking outright.
Cross-machine federation is a roadmap item and will need a different
broker, not a shared ``queue.db``.

Crash safety is lease-based: :meth:`claim_batch` hands jobs out with a
lease deadline, the worker's heartbeat keeps pushing the deadline
forward, and a worker that dies (including SIGKILL) simply stops
heartbeating — the next :meth:`claim_batch` by anyone reclaims every
expired job.  ``attempts`` counts claims, so a job that keeps killing
its workers exhausts ``max_attempts`` and lands in a terminal ``failed``
record instead of looping forever.

The broker cost is amortised across jobs, not paid per job:

* :meth:`claim_batch` leases up to *n* runnable jobs in **one**
  ``BEGIN IMMEDIATE`` transaction (claiming four tiny jobs costs one
  SQLite write round trip, not four);
* workers hold a **persistent lease record** — one row in the
  ``leases`` table, registered once per worker — and renew it with
  :meth:`heartbeat_worker`, a single timer-driven transaction that
  pushes the worker row *and every job the worker holds* forward
  together, instead of one heartbeat per held job;
* :meth:`report_batch` writes a whole batch of outcomes (acks and
  failures alike) back in one transaction.

Crash semantics are unchanged by batching: all jobs in a SIGKILLed
worker's batch share the worker's deadline, so the whole batch expires
and is reclaimed together, each job charged exactly the one attempt its
claim burned.  The ``leases`` table is created on first open, so a
queue directory from before batch claims upgrades in place.

Connections are opened per operation and never cached: cheap for a
coarse-grained work queue (jobs are whole simulations), and it means the
queue object itself is picklable state-free glue that can cross a
``fork``/``spawn`` boundary.
"""

from __future__ import annotations

import json
import sqlite3
import time
from contextlib import closing
from pathlib import Path
from typing import Iterable, Sequence

from repro.api.results import spec_run_id
from repro.api.spec import ExperimentSpec
from repro.cluster.jobs import (
    DONE,
    FAILED,
    JOB_COLUMNS,
    PENDING,
    RUNNING,
    STATES,
    Job,
    job_from_row,
)
from repro.errors import ClusterError, ConfigurationError, require_positive_int
from repro.obs.events import append_events

__all__ = ["JobQueue"]

#: Longest error text repeated into an event-log line; the full string
#: stays on the job row, the log only needs enough to be greppable.
_EVENT_ERROR_CHARS = 200

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id           TEXT    NOT NULL,
    spec_json        TEXT    NOT NULL,
    state            TEXT    NOT NULL DEFAULT 'pending',
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    force            INTEGER NOT NULL DEFAULT 0,
    worker           TEXT,
    lease_expires_at REAL,
    submitted_at     REAL    NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    error            TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, id);
CREATE TABLE IF NOT EXISTS leases (
    worker           TEXT PRIMARY KEY,
    registered_at    REAL NOT NULL,
    lease_expires_at REAL NOT NULL
);
"""

_COLS = ", ".join(JOB_COLUMNS)


class JobQueue:
    """A durable, multi-process job queue rooted at ``queue_dir``."""

    def __init__(
        self,
        queue_dir: str | Path,
        default_lease_s: float = 30.0,
        max_attempts: int = 3,
        create: bool = True,
    ) -> None:
        """Open (or with ``create=True``, initialise) the queue.

        Read-only consumers — ``status``, ``gather`` — pass
        ``create=False`` so a typo'd directory raises
        :class:`~repro.errors.ClusterError` instead of silently
        reporting a healthy empty queue.
        """
        if default_lease_s <= 0:
            raise ConfigurationError(
                f"default_lease_s must be > 0, got {default_lease_s!r}"
            )
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {max_attempts!r}"
            )
        self.queue_dir = Path(queue_dir)
        self.default_lease_s = float(default_lease_s)
        self.max_attempts = int(max_attempts)
        if not create and not self.db_path.is_file():
            raise ClusterError(
                f"{self.queue_dir} is not a job queue (no queue.db) — "
                f"wrong --queue path, or nothing submitted yet?"
            )
        self.queue_dir.mkdir(parents=True, exist_ok=True)
        self.artifact_dir.mkdir(parents=True, exist_ok=True)
        with closing(self._connect()) as conn:
            # WAL is a persistent database property: set it once here
            # rather than per connection, so the per-operation connects
            # stay pure open/query/close.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)

    @property
    def db_path(self) -> Path:
        return self.queue_dir / "queue.db"

    @property
    def artifact_dir(self) -> Path:
        """The content-addressed artifact cache all workers share."""
        return self.queue_dir / "artifacts"

    def _log_events(self, events: Iterable[dict]) -> None:
        """Append records to ``events.jsonl`` (see the module docstring).

        Called from inside mutating transactions; a failing log write
        must not poison the transaction, so file errors are swallowed —
        the event log is telemetry, the database is the state.
        """
        records = list(events)
        if not records:
            return
        try:
            append_events(self.queue_dir, records)
        except OSError:  # pragma: no cover - e.g. read-only queue dir
            pass

    def _connect(self) -> sqlite3.Connection:
        # autocommit mode + explicit BEGIN IMMEDIATE where atomicity
        # spans a read-modify-write; WAL (set at queue init — it is a
        # persistent database property) lets readers coexist with the
        # single writer.
        conn = sqlite3.connect(self.db_path, timeout=30.0, isolation_level=None)
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    # -- producing ---------------------------------------------------------

    def submit(
        self,
        specs: Iterable[ExperimentSpec],
        force: bool = False,
        max_attempts: int | None = None,
    ) -> list[int]:
        """Enqueue one job per spec; returns job ids in spec order."""
        spec_list = list(specs)
        for spec in spec_list:
            if not isinstance(spec, ExperimentSpec):
                raise ConfigurationError(
                    f"submit() takes ExperimentSpec items, got {spec!r}"
                )
        budget = self.max_attempts if max_attempts is None else int(max_attempts)
        if budget < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {budget!r}")
        now = time.time()
        rows = [
            (
                spec_run_id(spec),
                json.dumps(spec.to_dict(), sort_keys=True),
                budget,
                int(bool(force)),
                now,
            )
            for spec in spec_list
        ]
        if not rows:
            return []
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            first = None
            for row in rows:
                cursor = conn.execute(
                    "INSERT INTO jobs (run_id, spec_json, max_attempts, force,"
                    " submitted_at) VALUES (?, ?, ?, ?, ?)",
                    row,
                )
                if first is None:
                    first = cursor.lastrowid
            assert first is not None
            self._log_events(
                {"ts": now, "kind": "submit", "job": first + i,
                 "run_id": spec_run_id(spec)}
                for i, spec in enumerate(spec_list)
            )
            conn.execute("COMMIT")
        return list(range(first, first + len(rows)))

    # -- consuming ---------------------------------------------------------

    def _reclaim_expired(self, conn: sqlite3.Connection, now: float) -> list[dict]:
        """Expired leases → back to pending, or terminal once out of budget.

        Also drops expired worker-lease rows: a registration whose
        deadline passed belongs to a presumed-dead worker.  Caller holds
        an open ``BEGIN IMMEDIATE`` transaction.  Returns the event
        records describing what was reclaimed, for the caller to log
        before its COMMIT (an empty list in the common nothing-expired
        case — the identifying SELECTs only scan ``running`` rows).
        """
        expired = conn.execute(
            "SELECT id, worker, attempts, max_attempts FROM jobs"
            " WHERE state = ? AND lease_expires_at < ?",
            (RUNNING, now),
        ).fetchall()
        events: list[dict] = []
        for job_id, worker, attempts, max_attempts in expired:
            events.append({"ts": now, "kind": "lease-expiry", "job": job_id,
                           "worker": worker, "attempts": attempts})
            terminal = attempts >= max_attempts
            events.append({
                "ts": now, "kind": "fail" if terminal else "reclaim",
                "job": job_id, "worker": worker,
                "error": "lease expired" if terminal else None,
            })
        conn.execute(  # repro: allow(SQL-TXN) caller holds BEGIN IMMEDIATE, per contract above
            "UPDATE jobs SET state = ?, error ="
            " 'lease expired after ' || attempts || ' attempt(s); worker '"
            " || COALESCE(worker, '?') || ' presumed dead',"
            " worker = NULL, lease_expires_at = NULL, finished_at = ?"
            " WHERE state = ? AND lease_expires_at < ? AND attempts >= max_attempts",
            (FAILED, now, RUNNING, now),
        )
        conn.execute(  # repro: allow(SQL-TXN) caller holds BEGIN IMMEDIATE, per contract above
            "UPDATE jobs SET state = ?, worker = NULL, lease_expires_at = NULL"
            " WHERE state = ? AND lease_expires_at < ?",
            (PENDING, RUNNING, now),
        )
        dead = conn.execute(
            "SELECT worker FROM leases WHERE lease_expires_at < ?", (now,)
        ).fetchall()
        events.extend(
            {"ts": now, "kind": "worker-expired", "worker": worker}
            for (worker,) in dead
        )
        conn.execute(  # repro: allow(SQL-TXN) caller holds BEGIN IMMEDIATE, per contract above
            "DELETE FROM leases WHERE lease_expires_at < ?", (now,)
        )
        return events

    def _upsert_lease(
        self, conn: sqlite3.Connection, worker_id: str, now: float,
        deadline: float,
    ) -> None:
        """Create or renew ``worker_id``'s registration row (open txn)."""
        conn.execute(  # repro: allow(SQL-TXN) caller holds BEGIN IMMEDIATE, per contract above
            "INSERT INTO leases (worker, registered_at, lease_expires_at)"
            " VALUES (?, ?, ?) ON CONFLICT (worker)"
            " DO UPDATE SET lease_expires_at = excluded.lease_expires_at",
            (worker_id, now, deadline),
        )

    def claim(self, worker_id: str, lease_s: float | None = None) -> Job | None:
        """Atomically claim the oldest pending job (or ``None``).

        The single-job special case of :meth:`claim_batch`; ``lease_s``
        overrides the queue's default lease.
        """
        jobs = self.claim_batch(worker_id, 1, lease_s=lease_s)
        return jobs[0] if jobs else None

    def claim_batch(
        self, worker_id: str, n: int, lease_s: float | None = None
    ) -> list[Job]:
        """Atomically lease up to ``n`` runnable jobs, oldest first.

        One ``BEGIN IMMEDIATE`` transaction covers the whole batch:
        expired leases are reclaimed (so a crashed worker's jobs come
        back into rotation on the very next claim by anyone), up to
        ``n`` pending jobs flip to running under ``worker_id``, each
        charged one attempt, and the worker's persistent lease record is
        registered or renewed to the same deadline (``lease_s`` seconds
        out, default the queue's).  Every claimed job shares that
        deadline, which is what makes a killed worker's *whole batch*
        expire — and get reclaimed — together.  Returns the claimed jobs
        in id order; an empty list means nothing was claimable.
        """
        require_positive_int(n, "claim_batch n")
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            events = self._reclaim_expired(conn, now)
            rows = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE state = ? ORDER BY id LIMIT ?",
                (PENDING, n),
            ).fetchall()
            if not rows:
                self._log_events(events)
                conn.execute("COMMIT")
                return []
            jobs = [job_from_row(row) for row in rows]
            placeholders = ", ".join("?" * len(jobs))
            conn.execute(
                "UPDATE jobs SET state = ?, worker = ?, attempts = attempts + 1,"
                " lease_expires_at = ?, started_at = ?, error = NULL"
                f" WHERE id IN ({placeholders})",
                (RUNNING, worker_id, now + lease, now, *[j.id for j in jobs]),
            )
            self._upsert_lease(conn, worker_id, now, now + lease)
            events.extend(
                {"ts": now, "kind": "claim", "job": j.id, "worker": worker_id,
                 "attempts": j.attempts + 1}
                for j in jobs
            )
            self._log_events(events)
            conn.execute("COMMIT")
        for job in jobs:
            job.state = RUNNING
            job.worker = worker_id
            job.attempts += 1
            job.lease_expires_at = now + lease
            job.started_at = now
            job.error = None
        return jobs

    # -- worker leases -----------------------------------------------------

    def register_worker(
        self, worker_id: str, lease_s: float | None = None
    ) -> None:
        """Create (or renew) ``worker_id``'s persistent lease record.

        Workers register once per lifetime, then keep the single record
        alive with :meth:`heartbeat_worker` — no per-job lease traffic.
        ``lease_s`` sets the first deadline (default the queue's).
        """
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            self._upsert_lease(conn, worker_id, now, now + lease)
            self._log_events(
                [{"ts": now, "kind": "register", "worker": worker_id}]
            )
            conn.execute("COMMIT")

    def unregister_worker(self, worker_id: str) -> None:
        """Drop ``worker_id``'s lease record (graceful worker exit).

        Jobs the worker somehow still holds are untouched — their
        per-job deadlines expire and reclaim them normally.
        """
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute("DELETE FROM leases WHERE worker = ?", (worker_id,))
            self._log_events(
                [{"ts": time.time(), "kind": "unregister", "worker": worker_id}]
            )
            conn.execute("COMMIT")

    def heartbeat_worker(
        self, worker_id: str, lease_s: float | None = None
    ) -> bool:
        """Renew the worker's lease and every job it holds, in one commit.

        This is the whole per-interval liveness cost of a worker,
        however many jobs its current batch holds: one transaction
        pushes the ``leases`` row and all of ``worker_id``'s running
        jobs ``lease_s`` seconds out (default the queue's).  ``False``
        means the registration is gone — the worker was presumed dead
        and reaped; anything it was running belongs to someone else now.
        """
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "UPDATE leases SET lease_expires_at = ? WHERE worker = ?",
                (now + lease, worker_id),
            )
            if cursor.rowcount != 1:
                conn.execute("COMMIT")
                return False
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires_at = ?"
                " WHERE worker = ? AND state = ?",
                (now + lease, worker_id, RUNNING),
            )
            self._log_events(
                [{"ts": now, "kind": "heartbeat", "worker": worker_id,
                  "jobs": cursor.rowcount}]
            )
            conn.execute("COMMIT")
        return True

    def workers(self) -> list[dict]:
        """The live worker registrations: one dict per ``leases`` row.

        Each carries ``worker``, ``registered_at``, ``lease_expires_at``
        and ``running`` (jobs currently held).  Rows whose lease already
        expired are not reported — that worker is presumed dead, and on
        a quiescent queue (no claims to trigger a reclaim) its stale row
        could otherwise haunt ``repro status`` forever.
        """
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT l.worker, l.registered_at, l.lease_expires_at,"
                " (SELECT COUNT(*) FROM jobs j"
                "   WHERE j.worker = l.worker AND j.state = ?)"
                " FROM leases l WHERE l.lease_expires_at >= ?"
                " ORDER BY l.worker",
                (RUNNING, time.time()),
            ).fetchall()
        return [
            {
                "worker": worker,
                "registered_at": registered_at,
                "lease_expires_at": lease_expires_at,
                "running": running,
            }
            for worker, registered_at, lease_expires_at, running in rows
        ]

    def heartbeat(
        self, job_id: int, worker_id: str, lease_s: float | None = None
    ) -> bool:
        """Extend one job's lease; ``False`` means the job is no longer ours.

        The legacy per-job beat (``lease_s`` overrides the default lease);
        batch workers renew everything at once with
        :meth:`heartbeat_worker` instead.
        """
        lease = self.default_lease_s if lease_s is None else float(lease_s)
        now = time.time()
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires_at = ?"
                " WHERE id = ? AND worker = ? AND state = ?",
                (now + lease, job_id, worker_id, RUNNING),
            )
            if cursor.rowcount == 1:
                self._log_events(
                    [{"ts": now, "kind": "heartbeat", "worker": worker_id,
                      "job": job_id}]
                )
            conn.execute("COMMIT")
        return cursor.rowcount == 1

    def ack(self, job_id: int, worker_id: str) -> bool:
        """Mark a claimed job done; ``False`` if the lease was lost.

        A lost ack is harmless: it means the lease expired and someone
        else (re)ran the job — and runs are deterministic, so the shared
        artifact cache holds the same bytes either way.
        """
        return self.report_batch(worker_id, [(job_id, None, True)])[job_id]

    def fail(
        self, job_id: int, worker_id: str, error: str, retry: bool = True
    ) -> bool:
        """Record a failed attempt; retries until the budget runs out.

        ``retry=False`` fails the job terminally regardless of budget —
        for deterministic errors (bad spec) that re-running cannot fix.
        """
        return self.report_batch(worker_id, [(job_id, error, retry)])[job_id]

    def report_batch(
        self,
        worker_id: str,
        results: Sequence[tuple[int, str | None, bool]],
    ) -> dict[int, bool]:
        """Write a batch of outcomes back in one transaction.

        ``results`` holds one ``(job_id, error, retry)`` triple per
        executed job: ``error=None`` acks the job done; a string records
        a failed attempt, requeued while budget remains unless
        ``retry=False`` (deterministic failures go terminal at once).
        Returns ``{job_id: accepted}`` — ``False`` marks a job that was
        no longer ours (lease expired mid-batch and someone reclaimed
        it), which determinism makes harmless.
        """
        if not results:
            return {}
        now = time.time()
        out: dict[int, bool] = {}
        events: list[dict] = []
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            for job_id, error, retry in results:
                if error is None:
                    cursor = conn.execute(
                        "UPDATE jobs SET state = ?, finished_at = ?,"
                        " error = NULL, lease_expires_at = NULL"
                        " WHERE id = ? AND worker = ? AND state = ?",
                        (DONE, now, job_id, worker_id, RUNNING),
                    )
                    out[job_id] = cursor.rowcount == 1
                    if out[job_id]:
                        events.append({"ts": now, "kind": "ack",
                                       "job": job_id, "worker": worker_id})
                    continue
                row = conn.execute(
                    "SELECT attempts, max_attempts FROM jobs"
                    " WHERE id = ? AND worker = ? AND state = ?",
                    (job_id, worker_id, RUNNING),
                ).fetchone()
                if row is None:
                    out[job_id] = False
                    continue
                attempts, max_attempts = row
                if retry and attempts < max_attempts:
                    conn.execute(
                        "UPDATE jobs SET state = ?, worker = NULL,"
                        " lease_expires_at = NULL, error = ? WHERE id = ?",
                        (PENDING, error, job_id),
                    )
                    kind = "requeue"
                else:
                    conn.execute(
                        "UPDATE jobs SET state = ?, lease_expires_at = NULL,"
                        " finished_at = ?, error = ? WHERE id = ?",
                        (FAILED, now, error, job_id),
                    )
                    kind = "fail"
                events.append({"ts": now, "kind": kind, "job": job_id,
                               "worker": worker_id, "attempts": attempts,
                               "error": error[:_EVENT_ERROR_CHARS]})
                out[job_id] = True
            self._log_events(events)
            conn.execute("COMMIT")
        return out

    # -- observing ---------------------------------------------------------

    def job(self, job_id: int) -> Job:
        with closing(self._connect()) as conn:
            row = conn.execute(
                f"SELECT {_COLS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise ClusterError(f"no job {job_id!r} in queue {self.queue_dir}")
        return job_from_row(row)

    def jobs(
        self,
        ids: Sequence[int] | None = None,
        state: str | None = None,
    ) -> list[Job]:
        """Jobs in id order — all of them, a subset, or one state."""
        if state is not None and state not in STATES:
            raise ClusterError(f"unknown job state {state!r}; one of {STATES}")
        query = f"SELECT {_COLS} FROM jobs"
        params: tuple = ()
        clauses = []
        if ids is not None:
            ids = list(ids)
            if not ids:
                return []
            clauses.append(f"id IN ({', '.join('?' * len(ids))})")
            params += tuple(ids)
        if state is not None:
            clauses.append("state = ?")
            params += (state,)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        found = [job_from_row(row) for row in rows]
        if ids is not None and len(found) != len(set(ids)):
            missing = sorted(set(ids) - {job.id for job in found})
            raise ClusterError(
                f"no such job(s) {missing} in queue {self.queue_dir}"
            )
        return found

    def states(self, ids: Sequence[int] | None = None) -> dict[int, str]:
        """``{job id: state}`` — the cheap poll for gather loops.

        Unlike :meth:`jobs` this reads two columns and never rebuilds
        specs, so waiting on a thousand-job sweep stays O(ids) per poll.
        """
        query = "SELECT id, state FROM jobs"
        params: tuple = ()
        if ids is not None:
            ids = list(ids)
            if not ids:
                return {}
            query += f" WHERE id IN ({', '.join('?' * len(ids))})"
            params = tuple(ids)
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        found = dict(rows)
        if ids is not None and len(found) != len(set(ids)):
            missing = sorted(set(ids) - set(found))
            raise ClusterError(
                f"no such job(s) {missing} in queue {self.queue_dir}"
            )
        return found

    def reap(self) -> None:
        """Reclaim expired leases now (normally claim/active do this).

        Lets a pure observer — e.g. a gather loop with every worker dead
        — still drive crashed jobs to pending/failed instead of watching
        them stay 'running' forever.
        """
        with closing(self._connect()) as conn:
            conn.execute("BEGIN IMMEDIATE")
            self._log_events(self._reclaim_expired(conn, time.time()))
            conn.execute("COMMIT")

    def counts(self) -> dict[str, int]:
        """``{state: number of jobs}`` with every state present."""
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in STATES}
        out.update(dict(rows))
        return out

    def active(self) -> bool:
        """True while any job is pending or could still come back.

        Sees a crashed worker's job as pending, not as forever-running:
        the common no-expiry case is answered by a single read-only
        query (drain loops poll this, and a write transaction per poll
        would contend with the workers actually claiming); only when
        some running lease has actually expired does it escalate to a
        write transaction that reclaims and recounts.
        """
        now = time.time()
        with closing(self._connect()) as conn:
            live, expired = conn.execute(
                "SELECT COUNT(*),"
                " SUM(state = ? AND lease_expires_at < ?)"
                " FROM jobs WHERE state IN (?, ?)",
                (RUNNING, now, PENDING, RUNNING),
            ).fetchone()
            if not expired:
                return live > 0
            conn.execute("BEGIN IMMEDIATE")
            self._log_events(self._reclaim_expired(conn, now))
            row = conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?)",
                (PENDING, RUNNING),
            ).fetchone()
            conn.execute("COMMIT")
        return row[0] > 0
