"""Evaluation metrics for the paper's tables and figures."""

from repro.metrics.fct import FctBucket, bucket_mean_fct, mean_fct
from repro.metrics.delay import (
    ccdf,
    cdf,
    packet_delays,
    percentile,
    queueing_delays,
)
from repro.metrics.fairness import jain_index, throughput_timeseries, fairness_timeseries
from repro.metrics.congestion import congestion_point_histogram, max_congestion_points

__all__ = [
    "FctBucket",
    "bucket_mean_fct",
    "ccdf",
    "cdf",
    "congestion_point_histogram",
    "fairness_timeseries",
    "jain_index",
    "max_congestion_points",
    "mean_fct",
    "packet_delays",
    "percentile",
    "queueing_delays",
    "throughput_timeseries",
]
