"""Fairness metrics (Figure 4).

Figure 4 plots Jain's fairness index [17] over time, computed "from the
throughput each flow receives per millisecond".  We reconstruct per-flow
delivered-byte time series from the tracer and evaluate the index per
interval over the set of flows that have started.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.sim.tracer import Tracer

__all__ = [
    "ARTIFACT_DIGITS",
    "artifact_fairness",
    "fairness_timeseries",
    "flow_throughputs",
    "jain_index",
    "throughput_timeseries",
]

#: Decimal places used when a fairness/utilisation figure is embedded in
#: a :class:`~repro.api.results.RunArtifact` — fixed so artifact bytes
#: are identical across platforms and the golden tests can pin values.
ARTIFACT_DIGITS = 6


def jain_index(rates: Iterable[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)``; 1.0 is perfectly fair."""
    x = np.asarray(list(rates), dtype=float)
    if x.size == 0:
        raise ValueError("fairness index needs at least one rate")
    if np.any(x < 0):
        raise ValueError("rates must be non-negative")
    total_sq = float(x.sum()) ** 2
    denom = x.size * float((x * x).sum())
    if denom == 0.0:
        return 0.0
    return total_sq / denom


def throughput_timeseries(
    tracer: Tracer,
    flow_ids: Sequence[int],
    interval: float,
    horizon: float,
    data_only: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Delivered bits/second per flow per interval.

    Returns ``(times, rates)`` where ``times`` has one entry per interval
    end and ``rates`` has shape ``(num_intervals, num_flows)``.
    """
    if interval <= 0 or horizon <= 0:
        raise ValueError("interval and horizon must be positive")
    index = {fid: k for k, fid in enumerate(flow_ids)}
    num_bins = int(np.ceil(horizon / interval))
    bytes_per_bin = np.zeros((num_bins, len(flow_ids)))
    for rec in tracer.delivered_records():
        col = index.get(rec.flow_id)
        if col is None or (data_only and rec.size <= 64):
            continue
        b = int(rec.exit / interval)
        if b < num_bins:
            bytes_per_bin[b, col] += rec.size
    times = (np.arange(num_bins) + 1) * interval
    return times, bytes_per_bin * 8.0 / interval


def flow_throughputs(
    tracer: Tracer,
    flow_ids: Sequence[int],
    horizon: float,
    data_only: bool = True,
) -> dict[int, float]:
    """Average delivered bits/second per flow over ``[0, horizon]``.

    The whole-run analogue of :func:`throughput_timeseries`: one rate per
    flow id (0.0 when nothing was delivered), which is what per-leg
    fairness summaries feed to :func:`artifact_fairness`.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    delivered = {fid: 0 for fid in flow_ids}
    for rec in tracer.delivered_records():
        if rec.flow_id not in delivered or (data_only and rec.size <= 64):
            continue
        if rec.exit <= horizon:
            delivered[rec.flow_id] += rec.size
    return {fid: nbytes * 8.0 / horizon for fid, nbytes in delivered.items()}


def artifact_fairness(rates: Iterable[float]) -> float:
    """Jain's index rounded for artifact embedding; 0.0 for no flows.

    Unlike :func:`jain_index` (which raises on an empty input so analysis
    code can't silently average over nothing), this is the total function
    drivers embed in :class:`~repro.api.results.RunArtifact` metadata:
    zero flows map to 0.0 and the result carries exactly
    :data:`ARTIFACT_DIGITS` decimals.
    """
    x = list(rates)
    if not x:
        return 0.0
    return round(jain_index(x), ARTIFACT_DIGITS)


def fairness_timeseries(
    tracer: Tracer,
    flow_ids: Sequence[int],
    interval: float,
    horizon: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Jain index per interval over *all* flows (Figure 4's y-axis).

    Matching the paper's methodology, the index is computed over the full
    flow set from the start; it therefore only reaches 1.0 once every flow
    has started and converged to its fair share.
    """
    times, rates = throughput_timeseries(tracer, flow_ids, interval, horizon)
    fairness = np.array([jain_index(r) if r.any() else 0.0 for r in rates])
    return times, fairness
