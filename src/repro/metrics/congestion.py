"""Congestion-point analysis (§2.2).

A congestion point is "a node where a packet is forced to wait during a
given schedule".  The count per packet is the paper's central structural
parameter: priorities replay ≤ 1, LSTF replays ≤ 2, nothing replays 3+ in
general.  These helpers summarise the counts over a recorded schedule or
a live tracer.
"""

from __future__ import annotations

from typing import Union

from repro.core.replay import RecordedSchedule
from repro.sim.tracer import Tracer

__all__ = ["congestion_point_histogram", "max_congestion_points"]

_Source = Union[Tracer, RecordedSchedule]


def _wait_lists(source: _Source):
    if isinstance(source, RecordedSchedule):
        return (p.hop_waits for p in source.packets)
    return (rec.hop_waits for rec in source.delivered_records())


def congestion_point_histogram(source: _Source, epsilon: float = 1e-12) -> dict[int, int]:
    """Map congestion-point count -> number of packets with that count."""
    hist: dict[int, int] = {}
    for waits in _wait_lists(source):
        c = sum(1 for w in waits if w > epsilon)
        hist[c] = hist.get(c, 0) + 1
    return dict(sorted(hist.items()))


def max_congestion_points(source: _Source, epsilon: float = 1e-12) -> int:
    """Largest per-packet congestion point count in the schedule."""
    hist = congestion_point_histogram(source, epsilon)
    return max(hist) if hist else 0
