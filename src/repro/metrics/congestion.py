"""Congestion-point analysis (§2.2).

A congestion point is "a node where a packet is forced to wait during a
given schedule".  The count per packet is the paper's central structural
parameter: priorities replay ≤ 1, LSTF replays ≤ 2, nothing replays 3+ in
general.  These helpers summarise the counts over a recorded schedule or
a live tracer.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.core.replay import RecordedSchedule
from repro.metrics.fairness import ARTIFACT_DIGITS
from repro.sim.link import Link
from repro.sim.tracer import Tracer

__all__ = [
    "congestion_point_histogram",
    "link_utilisation",
    "max_congestion_points",
]

_Source = Union[Tracer, RecordedSchedule]


def _wait_lists(source: _Source):
    if isinstance(source, RecordedSchedule):
        return (p.hop_waits for p in source.packets)
    return (rec.hop_waits for rec in source.delivered_records())


def congestion_point_histogram(source: _Source, epsilon: float = 1e-12) -> dict[int, int]:
    """Map congestion-point count -> number of packets with that count."""
    hist: dict[int, int] = {}
    for waits in _wait_lists(source):
        c = sum(1 for w in waits if w > epsilon)
        hist[c] = hist.get(c, 0) + 1
    return dict(sorted(hist.items()))


def link_utilisation(
    tracer: Tracer,
    links: Mapping[tuple[str, str], Link],
    window: float,
) -> dict[str, float]:
    """Fraction of each link's capacity used over ``[0, window]``.

    Every delivered packet's bytes are attributed to each directed link
    its recorded path crossed, then divided by what the link could have
    carried in ``window`` seconds.  Keys are ``"src->dst"`` strings
    (sorted) so the mapping drops straight into artifact metadata;
    values carry :data:`~repro.metrics.fairness.ARTIFACT_DIGITS`
    decimals, matching the fairness embedding.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    nbytes: dict[tuple[str, str], int] = {key: 0 for key in links}
    for rec in tracer.delivered_records():
        if rec.exit > window:
            continue
        for hop in zip(rec.path, rec.path[1:]):
            if hop in nbytes:
                nbytes[hop] += rec.size
    return {
        f"{u}->{v}": round(links[u, v].utilisation(nbytes[u, v], window),
                           ARTIFACT_DIGITS)
        for u, v in sorted(nbytes)
    }


def max_congestion_points(source: _Source, epsilon: float = 1e-12) -> int:
    """Largest per-packet congestion point count in the schedule."""
    hist = congestion_point_histogram(source, epsilon)
    return max(hist) if hist else 0
