"""Packet delay metrics: distributions, CDFs, CCDFs, percentiles.

Used by Figure 1 (queueing-delay-ratio CDF) and Figure 3 (packet-delay
CCDF / tail percentiles).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.sim.tracer import Tracer

__all__ = ["ccdf", "cdf", "packet_delays", "percentile", "queueing_delays"]


def packet_delays(tracer: Tracer, data_only: bool = True) -> np.ndarray:
    """End-to-end delays of delivered packets.

    ``data_only`` skips ACKs (flows' reverse-path 40-byte packets), which
    is what the tail-latency comparison plots.
    """
    delays = [
        rec.exit - rec.created
        for rec in tracer.delivered_records()
        if not (data_only and rec.size <= 64)
    ]
    return np.asarray(delays, dtype=float)


def queueing_delays(tracer: Tracer) -> np.ndarray:
    """Total queueing delay per delivered packet."""
    return np.asarray(
        [sum(rec.hop_waits) for rec in tracer.delivered_records()], dtype=float
    )


def cdf(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, cumulative_probabilities)``."""
    values = np.sort(np.asarray(list(samples), dtype=float))
    if values.size == 0:
        raise ValueError("cannot build a CDF from zero samples")
    probs = np.arange(1, values.size + 1) / values.size
    return values, probs


def ccdf(samples: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF (Figure 3's y-axis): ``P(X > x)``."""
    values, probs = cdf(samples)
    return values, 1.0 - probs + 1.0 / values.size


def percentile(samples: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (q in [0, 100])."""
    return float(np.percentile(np.asarray(list(samples), dtype=float), q))
