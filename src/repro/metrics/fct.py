"""Flow completion time metrics (Figure 2).

The figure buckets flows by size and reports the mean FCT per bucket plus
the overall mean.  Bucket edges default to the flow sizes the paper labels
on its x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.tcp import TcpStats

__all__ = ["FctBucket", "PAPER_BUCKET_EDGES", "bucket_mean_fct", "mean_fct"]

#: Bucket boundaries (bytes) matching Figure 2's x-axis labels.
PAPER_BUCKET_EDGES = (
    1_460, 2_920, 4_380, 7_300, 10_220, 58_400, 105_120,
    525_600, 2_102_400, 10_512_000, float("inf"),
)


@dataclass(frozen=True, slots=True)
class FctBucket:
    """Mean FCT of flows whose size falls in ``(low, high]`` bytes."""

    low: float
    high: float
    count: int
    mean_fct: float

    @property
    def label(self) -> str:
        if self.high == float("inf"):
            return f">{int(self.low)}"
        return f"<={int(self.high)}"


def mean_fct(stats: TcpStats) -> float:
    """Mean flow completion time over completed flows."""
    return stats.mean_fct()


def bucket_mean_fct(
    stats: TcpStats,
    edges: tuple[float, ...] = PAPER_BUCKET_EDGES,
) -> list[FctBucket]:
    """Mean FCT per flow-size bucket; empty buckets are omitted."""
    buckets: list[FctBucket] = []
    low = 0.0
    for high in edges:
        fcts = [
            fct
            for fid, fct in stats.fct.items()
            if low < stats.flow_size[fid] <= high
        ]
        if fcts:
            buckets.append(
                FctBucket(low=low, high=high, count=len(fcts),
                          mean_fct=float(np.mean(fcts)))
            )
        low = high
    return buckets
