"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime events.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation object was built or wired incorrectly.

    Examples: adding a duplicate node, linking a node to itself, installing
    a scheduler after the simulation has started, or requesting a route
    between disconnected nodes.
    """


class RoutingError(ConfigurationError):
    """No route exists between the requested endpoints."""


class SimulationError(ReproError):
    """An invariant was violated while the event loop was running."""


class SchedulerError(ReproError):
    """A scheduler was used in a way its contract forbids.

    Examples: popping from an empty queue, or feeding an omniscient
    scheduler a packet that carries no per-hop timetable.
    """


class ReplayError(ReproError):
    """A recorded schedule cannot be replayed as requested.

    Examples: replaying onto a topology that is missing nodes the recorded
    paths traverse, or asking for a replay mode that needs per-hop times
    when only black-box information was recorded.
    """


class CheckpointError(ReproError):
    """A checkpoint file cannot be loaded as requested.

    Examples: a foreign or truncated file, an unsupported format version,
    or a payload whose bytes no longer match the recorded content hash.
    """


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class ClusterError(ReproError):
    """The distributed queue/worker machinery failed or was misused.

    Examples: gathering jobs that were never submitted, a queue directory
    that is not a job queue, or a gather that timed out.
    """


class JobFailedError(ClusterError):
    """A queued job reached a terminal failure.

    Raised by :func:`repro.cluster.client.gather` when a job exhausted its
    retry budget (or failed fatally on a configuration error); carries the
    queue's recorded error string for each failed job.
    """


def require_positive_int(value: object, name: str) -> int:
    """Validate a count-like knob: an ``int`` >= 1 (bools rejected).

    Returns ``value`` unchanged, or raises :class:`ConfigurationError`
    naming ``name`` — the one validator behind ``workers`` /
    ``batch_size`` / claim sizes, so they can never drift apart.
    """
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ConfigurationError(
            f"{name} must be an integer >= 1, got {value!r}"
        )
    return value
