"""Flow arrival processes.

The paper's default load model (§2.3): "Each end host generates UDP flows
using a Poisson inter-arrival model ... at 70% utilization", with sizes
from a heavy-tailed distribution.  :func:`poisson_flows` realises that:
per-host Poisson arrivals whose rate is chosen so the host's *offered
load* equals ``utilization`` times a reference bandwidth (normally the
host's bottleneck access link), with uniformly random destinations.

:func:`long_lived_flows` builds the 90-permanent-flow setup of the
fairness experiment (Figure 4): all flows start within a small random
jitter window and never end (we give them a size that outlasts the
simulation horizon).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flow import Flow
from repro.errors import WorkloadError
from repro.units import MTU
from repro.workload.distributions import SizeDistribution

__all__ = ["PoissonWorkload", "long_lived_flows", "poisson_flows"]


@dataclass(frozen=True, slots=True)
class PoissonWorkload:
    """Parameters of a Poisson open-loop workload."""

    utilization: float
    reference_bandwidth: float
    duration: float
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.utilization < 1.5:
            raise WorkloadError(
                f"utilization should be a fraction like 0.7, got {self.utilization!r}"
            )
        if self.reference_bandwidth <= 0:
            raise WorkloadError("reference bandwidth must be positive")
        if self.duration <= 0:
            raise WorkloadError("duration must be positive")


def poisson_flows(
    hosts: list[str],
    sizes: SizeDistribution,
    workload: PoissonWorkload,
    mtu: int = MTU,
) -> list[Flow]:
    """Generate Poisson flow arrivals for every host.

    Each host offers ``utilization * reference_bandwidth`` bits/second on
    average: flow inter-arrivals are exponential with rate
    ``util * bw / (8 * mean_size)`` and destinations are uniform over the
    other hosts.  Flow ids are globally unique and deterministic given the
    seed.
    """
    if len(hosts) < 2:
        raise WorkloadError("need at least two hosts to generate traffic")
    rng = np.random.default_rng(workload.seed)
    mean_size = sizes.mean()
    rate = workload.utilization * workload.reference_bandwidth / (8.0 * mean_size)
    if rate <= 0:
        raise WorkloadError(f"degenerate arrival rate {rate!r}")

    flows: list[Flow] = []
    fid = 0
    for src in sorted(hosts):
        t = 0.0
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= workload.duration:
                break
            others = [h for h in hosts if h != src]
            dst = others[int(rng.integers(len(others)))]
            fid += 1
            flows.append(
                Flow(fid=fid, src=src, dst=dst, size=sizes.sample(rng), start=t, mtu=mtu)
            )
    flows.sort(key=lambda f: (f.start, f.fid))
    if not flows:
        raise WorkloadError(
            "workload produced no flows; increase duration or utilization"
        )
    return flows


def long_lived_flows(
    pairs: list[tuple[str, str]],
    size: int,
    jitter: float = 0.005,
    seed: int = 1,
    mtu: int = MTU,
    weights: list[float] | None = None,
) -> list[Flow]:
    """Permanent flows with jittered starts (fairness experiment, §3.3).

    ``pairs`` lists (src, dst) host names; every flow carries ``size``
    bytes — pick it large enough to outlast the measurement horizon.
    Start times are uniform in ``[0, jitter]`` (the paper uses 0–5 ms).
    """
    if not pairs:
        raise WorkloadError("need at least one src/dst pair")
    if weights is not None and len(weights) != len(pairs):
        raise WorkloadError("weights must match pairs one-to-one")
    rng = np.random.default_rng(seed)
    flows = []
    for idx, (src, dst) in enumerate(pairs):
        flows.append(
            Flow(
                fid=idx + 1,
                src=src,
                dst=dst,
                size=size,
                start=float(rng.uniform(0.0, jitter)),
                mtu=mtu,
                weight=1.0 if weights is None else weights[idx],
            )
        )
    flows.sort(key=lambda f: (f.start, f.fid))
    return flows
