"""Flow-size distributions.

The paper draws flow sizes "from a heavy-tailed distribution [4, 5]" —
i.e. measurement studies of wide-area and datacenter traffic.  We provide:

* :class:`BoundedPareto` — the classical heavy-tail model,
* :class:`EmpiricalCdf` — piecewise-linear inverse-CDF sampling, with the
  two canonical presets from the pFabric paper [3] (web search and data
  mining) plus an internet-like preset used for the Internet2 scenarios,
* :class:`ExponentialSize` — a light-tailed ablation baseline.

All samplers draw from a caller-provided ``numpy`` generator so workloads
are exactly reproducible, and all return integer byte counts ≥ 1.

Every distribution is also a *named* registry entry, so declarative
configs (notably :class:`repro.scenarios.Scenario`) can reference one by
string: :func:`make_distribution` constructs by name and
:func:`distribution_names` enumerates the catalogue.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import WorkloadError

__all__ = [
    "BoundedPareto",
    "EmpiricalCdf",
    "ExponentialSize",
    "SizeDistribution",
    "datacenter_distribution",
    "distribution_names",
    "internet_distribution",
    "make_distribution",
    "web_search_distribution",
]


class SizeDistribution:
    """Interface: sample flow sizes in bytes."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def mean(self) -> float:
        """Expected flow size in bytes (used to size Poisson arrival rates)."""
        raise NotImplementedError


class BoundedPareto(SizeDistribution):
    """Pareto truncated to ``[low, high]`` bytes.

    ``alpha`` near 1.1–1.3 gives the heavy tails seen in traffic studies:
    most flows are tiny, most *bytes* live in elephants.
    """

    def __init__(self, alpha: float = 1.2, low: int = 1_000, high: int = 10_000_000) -> None:
        if alpha <= 0:
            raise WorkloadError(f"alpha must be positive, got {alpha!r}")
        if not 0 < low < high:
            raise WorkloadError(f"need 0 < low < high, got low={low!r}, high={high!r}")
        self.alpha = alpha
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> int:
        u = rng.random()
        la, ha, a = self.low**self.alpha, self.high**self.alpha, self.alpha
        x = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / a)
        return max(1, int(round(x)))

    def mean(self) -> float:
        a, l, h = self.alpha, self.low, self.high
        if a == 1.0:
            return l * np.log(h / l) / (1 - l / h)
        return (a * l**a / (1 - (l / h) ** a)) * (h ** (1 - a) - l ** (1 - a)) / (1 - a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedPareto(alpha={self.alpha}, low={self.low:.0f}, high={self.high:.0f})"


class EmpiricalCdf(SizeDistribution):
    """Sample from a piecewise-linear empirical CDF of flow sizes.

    ``points`` is a sequence of ``(size_bytes, cumulative_probability)``
    pairs, increasing in both coordinates, ending at probability 1.0.
    """

    def __init__(self, points: list[tuple[float, float]], name: str = "empirical") -> None:
        if len(points) < 2:
            raise WorkloadError("empirical CDF needs at least two points")
        sizes = [p[0] for p in points]
        probs = [p[1] for p in points]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise WorkloadError("CDF points must be non-decreasing in size and probability")
        if abs(probs[-1] - 1.0) > 1e-9:
            raise WorkloadError(f"CDF must end at probability 1.0, got {probs[-1]!r}")
        self._sizes = np.asarray(sizes, dtype=float)
        self._probs = np.asarray(probs, dtype=float)
        self.name = name

    def sample(self, rng: np.random.Generator) -> int:
        u = rng.random()
        return max(1, int(round(float(np.interp(u, self._probs, self._sizes)))))

    def mean(self) -> float:
        # Expectation of the piecewise-linear inverse CDF: trapezoid rule
        # over probability space is exact for this distribution.
        return float(np.trapezoid(self._sizes, self._probs))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmpiricalCdf({self.name!r}, {len(self._sizes)} points)"


class ExponentialSize(SizeDistribution):
    """Light-tailed ablation baseline."""

    def __init__(self, mean_bytes: float = 30_000.0) -> None:
        if mean_bytes <= 0:
            raise WorkloadError(f"mean must be positive, got {mean_bytes!r}")
        self._mean = mean_bytes

    def sample(self, rng: np.random.Generator) -> int:
        return max(1, int(round(rng.exponential(self._mean))))

    def mean(self) -> float:
        return self._mean


def web_search_distribution() -> EmpiricalCdf:
    """pFabric's "web search" workload (DCTCP measurement study) [3].

    Flow sizes in bytes; mean ≈ 1.6 MB, with >95 % of flows under 1 MB but
    most bytes in multi-megabyte flows.
    """
    return EmpiricalCdf(
        [
            (6_000, 0.0),
            (6_000, 0.15),
            (13_000, 0.2),
            (19_000, 0.3),
            (33_000, 0.4),
            (53_000, 0.53),
            (133_000, 0.6),
            (667_000, 0.7),
            (1_333_000, 0.8),
            (3_333_000, 0.9),
            (6_667_000, 0.97),
            (20_000_000, 1.0),
        ],
        name="web-search",
    )


def datacenter_distribution() -> EmpiricalCdf:
    """pFabric's "data mining" workload [3]: extremely heavy-tailed.

    ~80 % of flows fit in a handful of packets while the top 1 % carry
    most of the bytes — the regime Figure 2's flow-size buckets probe.
    """
    return EmpiricalCdf(
        [
            (100, 0.0),
            (180, 0.1),
            (250, 0.2),
            (560, 0.3),
            (900, 0.4),
            (1_100, 0.5),
            (1_870, 0.6),
            (3_160, 0.7),
            (10_000, 0.8),
            (400_000, 0.9),
            (3_160_000, 0.95),
            (100_000_000, 1.0),
        ],
        name="data-mining",
    )


#: The named-distribution catalogue: declarative configs (scenario specs,
#: CLI flags) reference these keys instead of constructing classes.  Each
#: entry is a zero-argument factory returning a fresh, stateless sampler.
_NAMED: dict[str, Callable[[], SizeDistribution]] = {}


def _named(name: str) -> Callable[[Callable[[], SizeDistribution]],
                                  Callable[[], SizeDistribution]]:
    """Decorator: register ``factory`` under ``name`` in the catalogue."""

    def decorator(factory: Callable[[], SizeDistribution]):
        if name in _NAMED:
            raise WorkloadError(f"distribution {name!r} is already registered")
        _NAMED[name] = factory
        return factory

    return decorator


def distribution_names() -> tuple[str, ...]:
    """Names accepted by :func:`make_distribution`, sorted."""
    return tuple(sorted(_NAMED))


def make_distribution(name: str) -> SizeDistribution:
    """Construct a flow-size distribution by registry name.

    ``name`` is one of :func:`distribution_names` (``"web-search"``,
    ``"data-mining"``, ``"internet"``, ``"pareto"``, ``"exponential"``).

    >>> make_distribution("web-search").name
    'web-search'
    """
    try:
        factory = _NAMED[name]
    except KeyError:
        raise WorkloadError(
            f"unknown distribution {name!r}; choose from "
            f"{list(distribution_names())}"
        ) from None
    return factory()


@_named("pareto")
def _pareto_entry() -> BoundedPareto:
    """The default heavy-tail model with its canonical parameters."""
    return BoundedPareto()


@_named("exponential")
def _exponential_entry() -> ExponentialSize:
    """The light-tailed ablation baseline with its default mean."""
    return ExponentialSize()


def internet_distribution() -> EmpiricalCdf:
    """Internet-like heavy-tailed mix for the Internet2 scenarios [4, 5].

    Mice-dominated (most flows < 10 kB) with an elephant tail to ~10 MB;
    mean ≈ 120 kB.
    """
    return EmpiricalCdf(
        [
            (1_460, 0.0),
            (1_460, 0.3),
            (2_920, 0.4),
            (4_380, 0.5),
            (7_300, 0.6),
            (10_220, 0.7),
            (58_400, 0.8),
            (105_120, 0.85),
            (525_600, 0.92),
            (2_102_400, 0.97),
            (10_512_000, 1.0),
        ],
        name="internet",
    )


# The empirical presets join the catalogue under the names their CDF
# tables carry, so ``EmpiricalCdf.name`` and the registry key agree.
_named("web-search")(web_search_distribution)
_named("data-mining")(datacenter_distribution)
_named("internet")(internet_distribution)
