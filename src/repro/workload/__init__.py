"""Workload generation: flow arrival processes and size distributions."""

from repro.workload.distributions import (
    BoundedPareto,
    EmpiricalCdf,
    ExponentialSize,
    SizeDistribution,
    datacenter_distribution,
    internet_distribution,
    web_search_distribution,
)
from repro.workload.flows import (
    PoissonWorkload,
    long_lived_flows,
    poisson_flows,
)

__all__ = [
    "BoundedPareto",
    "EmpiricalCdf",
    "ExponentialSize",
    "PoissonWorkload",
    "SizeDistribution",
    "datacenter_distribution",
    "internet_distribution",
    "long_lived_flows",
    "poisson_flows",
    "web_search_distribution",
]
