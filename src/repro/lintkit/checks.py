"""The concrete rules: DET-* / SQL-* / THR-* / PERF-* checkers.

Each checker is registered on import via
:func:`~repro.lintkit.rules.register_rule` and reads one
:class:`~repro.lintkit.rules.ModuleContext`.  All checks are syntactic —
no type inference — which is the deliberate trade: a rule that needs
whole-program analysis to fire would be too slow for tier-1 CI and too
opaque to suppress honestly.  Where syntax cannot see intent (the
``ENGINE_PERF`` wall-time accounting, a helper that documents "caller
holds the transaction"), the escape hatch is a per-line
``# repro: allow(RULE-ID) reason`` whose reason string is itself
enforced (``ALW-REASON``).

The ALW-* rules about the suppression machinery live in
:mod:`repro.lintkit.runner`, which is the layer that sees the comments.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintkit.config import (
    CLUSTER_SCOPE,
    HOT_PATH_SCOPE,
    OBS_SCOPE,
    SIM_SCOPE,
)
from repro.lintkit.findings import Finding
from repro.lintkit.rules import ModuleContext, register_rule, shallow_body

__all__: list[str] = []

# --- DET-*: determinism in simulation-facing code ---------------------------

#: Seeded-constructor entry points that are the *approved* way to get
#: randomness — everything else under these modules is a violation.
_SEEDED_CTORS = ("random.Random", "numpy.random.default_rng")
_NUMPY_RANDOM_OK = (
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
)


@register_rule(
    "DET-RANDOM",
    summary="module-level RNG call; inject a seeded random.Random instead",
    invariant="every random draw comes from an injected, seeded generator",
    scopes=SIM_SCOPE + CLUSTER_SCOPE,
)
def check_det_random(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``random.*`` / ``np.random.*`` calls and unseeded constructors.

    ``random.Random(seed)`` and ``np.random.default_rng(seed)`` are the
    approved entry points (the pattern ``sim/aqm.py`` and the workload
    generators use); called with *no* seed they are still
    nondeterministic across runs and are flagged too.
    """
    for call in ctx.calls():
        name = ctx.dotted(call.func)
        if name is None:
            continue
        if name in _SEEDED_CTORS:
            if not call.args and not call.keywords:
                yield ctx.finding(
                    call, "DET-RANDOM",
                    f"unseeded {name}() — pass an explicit seed so runs "
                    f"are reproducible",
                )
        elif name.startswith("random."):
            yield ctx.finding(
                call, "DET-RANDOM",
                f"module-level {name}() draws from the process-global RNG "
                f"stream — inject a seeded random.Random instead",
            )
        elif name.startswith("numpy.random.") and name not in _NUMPY_RANDOM_OK:
            yield ctx.finding(
                call, "DET-RANDOM",
                f"legacy global-state {name}() — use a seeded "
                f"numpy.random.default_rng(seed) generator instead",
            )


#: Wall-clock reads that leak host timing into simulation-facing code.
_WALLCLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})


@register_rule(
    "DET-WALLCLOCK",
    summary="wall-clock read in simulation-facing code",
    invariant="simulated behaviour depends only on the virtual clock",
    scopes=SIM_SCOPE,
)
def check_det_wallclock(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``time.time()`` / ``perf_counter()`` / ``datetime.now()`` calls.

    The only legitimate wall-clock reads near the simulator are the
    ``ENGINE_PERF`` throughput accounting in ``sim/engine.py`` and the
    benchmark harness in ``experiments/perf.py`` — both carry reasoned
    ``allow`` comments, which is exactly the visibility this rule wants.
    """
    for call in ctx.calls():
        name = ctx.dotted(call.func)
        if name in _WALLCLOCK:
            yield ctx.finding(
                call, "DET-WALLCLOCK",
                f"{name}() reads the host clock — simulation-facing code "
                f"must depend only on engine.now",
            )


def _is_set_expr(node: ast.AST) -> bool:
    """A set literal, set comprehension, or set()/frozenset() call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _set_iteration_sites(ctx: ModuleContext) -> Iterator[ast.AST]:
    """Expressions iterated in an order-sensitive position."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for generator in node.generators:
                yield generator.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
        ):
            yield node.args[0]


@register_rule(
    "DET-SET-ITER",
    summary="iteration over a set without sorted()",
    invariant="every iteration order that can reach an artifact is explicit",
    scopes=SIM_SCOPE + CLUSTER_SCOPE,
)
def check_det_set_iter(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``for x in set(...)`` / ``list({...})`` and friends.

    Set iteration order is hash-randomised across processes, so any set
    feeding event scheduling or artifact hashing must pass through
    ``sorted(...)`` first (which this rule recognises as the fix).
    """
    for site in _set_iteration_sites(ctx):
        if _is_set_expr(site):
            yield ctx.finding(
                site, "DET-SET-ITER",
                "iterating a set directly — wrap it in sorted(...) so the "
                "order is deterministic across processes",
            )


@register_rule(
    "DET-ID-ORDER",
    summary="builtin id() used; object identity is not stable across runs",
    invariant="no ordering or keying ever derives from memory addresses",
    scopes=SIM_SCOPE,
)
def check_det_id_order(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag calls to builtin ``id()`` in simulation-facing code."""
    for call in ctx.calls():
        if isinstance(call.func, ast.Name) and call.func.id == "id" \
                and "id" not in ctx.imports:
            yield ctx.finding(
                call, "DET-ID-ORDER",
                "id() is a memory address — ordering or keying by it "
                "changes run to run; use an explicit sequence number",
            )


@register_rule(
    "DET-OBJECT-HASH",
    summary="builtin hash() of an object used; salted and identity-based",
    invariant="artifact-reaching keys come from stable content, not hash()",
    scopes=SIM_SCOPE,
)
def check_det_object_hash(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag calls to builtin ``hash()`` in simulation-facing code.

    ``hash(str)`` is salted per process (PYTHONHASHSEED) and
    ``hash(object)`` is the address — either one feeding a key or an
    order is a cross-process determinism bug.  Content digests
    (``hashlib``) are the approved alternative and are not flagged.
    """
    for call in ctx.calls():
        if isinstance(call.func, ast.Name) and call.func.id == "hash" \
                and "hash" not in ctx.imports:
            yield ctx.finding(
                call, "DET-OBJECT-HASH",
                "builtin hash() is process-salted — derive keys from "
                "stable content (hashlib, explicit tuples) instead",
            )


# --- OBS-*: telemetry must observe, never steer -----------------------------

#: Registration points whose callback argument runs on the engine's
#: sampler path (excluded from event accounting, dropped from
#: checkpoints) — so it must not be able to change what the run means.
_SAMPLER_REGISTRARS = ("add_sampler", "schedule_sample")
#: Keyword names the registrars accept for the callback argument.
_SAMPLER_CALLBACK_KWARGS = ("fn", "callback")


def _sampler_callback_arg(call: ast.Call) -> ast.AST | None:
    """The callback expression of a sampler registration, if present.

    Both registrars take the callback last: ``add_sampler(name, fn)``
    and ``schedule_sample(time, callback)``.
    """
    for kw in call.keywords:
        if kw.arg in _SAMPLER_CALLBACK_KWARGS:
            return kw.value
    if len(call.args) >= 2:
        return call.args[-1]
    return None


def _local_functions(
    ctx: ModuleContext,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module functions by name (last definition wins, like runtime)."""
    return {fn.name: fn for fn in ctx.functions()}


def _state_writes(body: Iterator[ast.AST]) -> Iterator[tuple[ast.AST, str]]:
    """(node, description) for each write to non-local state in ``body``.

    A *pure reader* may bind local names; what it may not do is assign
    through an attribute or subscript — ``port._queued = 0``,
    ``flow.slack -= x``, ``net.nodes[k] = ...`` — because on the sampler
    path that mutation is invisible to event accounting and silently
    diverges a hub-on run from a hub-off one.
    """
    for node in body:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    yield node, f"attribute {ast.unparse(target)}"
                elif isinstance(target, ast.Subscript):
                    yield node, f"item {ast.unparse(target)}"
        elif isinstance(node, (ast.Delete,)):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    yield node, f"del {ast.unparse(target)}"


@register_rule(
    "OBS-SAMPLER-PURE",
    summary="sampler callback mutates simulation state",
    invariant="telemetry sampling can never change what a run computes",
    scopes=SIM_SCOPE + OBS_SCOPE,
)
def check_obs_sampler_pure(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag sampler callbacks that write attributes or container items.

    Sampler events (``engine.schedule_sample``, ``hub.add_sampler``) are
    excluded from ``events_processed``, ``ENGINE_PERF``, the flight
    recorder, and checkpoints — the whole determinism contract rests on
    them being *pure readers*.  The check is syntactic and local: when
    the callback argument is a ``lambda`` or resolves to a module-level
    ``def``, its body must contain no attribute/subscript assignment.
    Callbacks the AST cannot resolve (bound methods, call results) are
    skipped — the hub's own re-arming tick lives on that path and is
    reviewed by hand.
    """
    functions = None
    for call in ctx.calls():
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr in _SAMPLER_REGISTRARS):
            continue
        callback = _sampler_callback_arg(call)
        if callback is None:
            continue
        if isinstance(callback, ast.Lambda):
            body: ast.AST | None = callback
        elif isinstance(callback, ast.Name):
            if functions is None:
                functions = _local_functions(ctx)
            body = functions.get(callback.id)
        else:
            body = None
        if body is None:
            continue
        for node, what in _state_writes(ast.walk(body)):
            yield ctx.finding(
                node, "OBS-SAMPLER-PURE",
                f"sampler callback writes {what} — sampler events are "
                f"excluded from event accounting and checkpoints, so the "
                f"callback must be a pure reader of simulation state",
            )


# --- SQL-*: transaction discipline in the cluster broker --------------------

_EXECUTE_METHODS = ("execute", "executemany", "executescript")
_MUTATING_SQL = ("UPDATE", "INSERT", "DELETE", "REPLACE")


def _leading_sql(arg: ast.AST) -> str | None:
    """The constant head of a SQL argument (plain or f-string), if any."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _sql_keyword(sql: str) -> str | None:
    """The first SQL keyword of a statement text, uppercased."""
    words = sql.strip().split(None, 1)
    return words[0].upper() if words else None


@register_rule(
    "SQL-TXN",
    summary="mutating SQL outside a BEGIN IMMEDIATE transaction",
    invariant="every queue mutation is atomic under BEGIN IMMEDIATE",
    scopes=CLUSTER_SCOPE,
)
def check_sql_txn(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag UPDATE/INSERT/DELETE executes with no prior BEGIN IMMEDIATE.

    The check is per function: a mutating ``conn.execute(...)`` must be
    preceded (in source order, same function) by an
    ``execute("BEGIN IMMEDIATE")``.  Helpers that *document* an open
    caller-held transaction carry a reasoned ``allow`` instead — the
    point is that running a mutation on a bare autocommit connection is
    never invisible.
    """
    for fn in ctx.functions():
        statements: list[tuple[tuple[int, int], str, ast.Call]] = []
        for node in shallow_body(fn):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EXECUTE_METHODS
                    and node.args):
                continue
            sql = _leading_sql(node.args[0])
            if sql is None:
                continue
            keyword = _sql_keyword(sql)
            if keyword == "BEGIN":
                statements.append(((node.lineno, node.col_offset), "BEGIN", node))
            elif keyword in _MUTATING_SQL:
                statements.append(((node.lineno, node.col_offset), keyword, node))
        statements.sort(key=lambda item: item[0])
        begun = False
        for _pos, kind, node in statements:
            if kind == "BEGIN":
                begun = True
            elif not begun:
                yield ctx.finding(
                    node, "SQL-TXN",
                    f"{kind} on a bare autocommit connection — run queue "
                    f"mutations inside a BEGIN IMMEDIATE transaction",
                )


# --- THR-*: thread hygiene in the cluster workers ---------------------------


def _thread_targets(ctx: ModuleContext) -> set[str]:
    """Names of functions/methods used as ``threading.Thread`` targets."""
    targets: set[str] = set()
    for call in ctx.calls():
        if ctx.dotted(call.func) != "threading.Thread":
            continue
        for kw in call.keywords:
            if kw.arg != "target":
                continue
            value = kw.value
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"):
                targets.add(value.attr)
            elif isinstance(value, ast.Name):
                targets.add(value.id)
    return targets


@register_rule(
    "THR-THREAD-MUT",
    summary="thread-target function mutates shared self state",
    invariant="helper threads signal through Events/queues, never by "
              "writing shared attributes",
    scopes=CLUSTER_SCOPE,
)
def check_thr_thread_mut(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``self.x = ...`` inside a ``threading.Thread`` target.

    A worker's heartbeat thread runs concurrently with the claim loop;
    any attribute it wrote would race the owning thread without a lock.
    The discipline (which ``cluster/worker.py`` follows) is that helper
    threads only *signal* — ``Event.set()`` — and the owning thread
    mutates its own state.
    """
    targets = _thread_targets(ctx)
    if not targets:
        return
    for fn in ctx.functions():
        if fn.name not in targets:
            continue
        for node in shallow_body(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                assigned = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in assigned:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        yield ctx.finding(
                            node, "THR-THREAD-MUT",
                            f"thread target {fn.name}() writes "
                            f"self.{target.attr} — shared worker state is "
                            f"owned by the claim loop; signal via an Event",
                        )


def _stop_event_classes(ctx: ModuleContext) -> set[str]:
    """Classes that own a ``threading.Event`` attribute (stop flags)."""
    owners: set[str] = set()
    for cls in ctx.classes():
        for node in ast.walk(cls):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and ctx.dotted(node.value.func) == "threading.Event"
                    and any(isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            for t in node.targets)):
                owners.add(cls.name)
    return owners


@register_rule(
    "THR-SLEEP",
    summary="time.sleep() in a class that owns a stop Event",
    invariant="graceful shutdown is never delayed by an uninterruptible "
              "sleep",
    scopes=CLUSTER_SCOPE,
)
def check_thr_sleep(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag ``time.sleep`` inside classes that carry a ``threading.Event``.

    A loop that owns a stop Event must idle with ``event.wait(s)`` so a
    SIGTERM-triggered ``request_stop`` interrupts the wait; a bare
    ``time.sleep`` turns graceful drain into a full-interval stall.
    """
    owners = _stop_event_classes(ctx)
    if not owners:
        return
    for cls in ctx.classes():
        if cls.name not in owners:
            continue
        for node in ast.walk(cls):
            if isinstance(node, ast.Call) \
                    and ctx.dotted(node.func) == "time.sleep":
                yield ctx.finding(
                    node, "THR-SLEEP",
                    f"time.sleep() in {cls.name} — idle with the stop "
                    f"Event's wait() so shutdown requests interrupt it",
                )


# --- PERF-*: hot-path regression guards -------------------------------------


def _has_slots(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in node.targets
        ):
            return True
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.target.id == "__slots__":
            return True
    return False


def _is_slotted_dataclass(ctx: ModuleContext, cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = ctx.dotted(decorator.func)
        if name in ("dataclass", "dataclasses.dataclass"):
            for kw in decorator.keywords:
                if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                        and kw.value.value is True:
                    return True
    return False


def _is_exempt_base(ctx: ModuleContext, base: ast.AST) -> bool:
    """Protocols and exceptions live off the hot path."""
    name = ctx.dotted(base)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return last == "Protocol" or last.endswith(("Error", "Exception"))


@register_rule(
    "PERF-SLOTS",
    summary="hot-path class without __slots__",
    invariant="per-packet objects stay dict-free so the hot path stays flat",
    scopes=HOT_PATH_SCOPE,
    exclude=("tests",),
)
def check_perf_slots(ctx: ModuleContext) -> Iterator[Finding]:
    """Every class in sim/ and schedulers/ declares ``__slots__``.

    ``@dataclass(slots=True)`` counts; ``typing.Protocol`` subclasses
    and exception types are exempt (they are never per-packet state).
    """
    for cls in ctx.classes():
        if _has_slots(cls) or _is_slotted_dataclass(ctx, cls):
            continue
        if any(_is_exempt_base(ctx, base) for base in cls.bases):
            continue
        yield ctx.finding(
            cls, "PERF-SLOTS",
            f"class {cls.name} has no __slots__ — sim/ and schedulers/ "
            f"classes allocate per packet and must stay dict-free",
        )


@register_rule(
    "PERF-SCHEDULE-HANDLE",
    summary="return value of schedule()/schedule_at() consumed",
    invariant="the handle-free fast path stays handle-free",
    scopes=SIM_SCOPE,
    exclude=("tests",),
)
def check_perf_schedule_handle(ctx: ModuleContext) -> Iterator[Finding]:
    """Flag uses of ``engine.schedule(...)`` as a value.

    The hot-path ``schedule``/``schedule_at`` return ``None`` by design
    (PR 2 removed the handle-returning idiom); code that binds, returns
    or chains their result is either dead wrong or wants
    ``schedule_cancellable[_at]``.
    """
    for call in ctx.calls():
        if not (isinstance(call.func, ast.Attribute)
                and call.func.attr in ("schedule", "schedule_at")):
            continue
        parent = ctx.parent(call)
        if parent is not None and not isinstance(parent, ast.Expr):
            yield ctx.finding(
                call, "PERF-SCHEDULE-HANDLE",
                f"{call.func.attr}() returns None on the hot path — use "
                f"schedule_cancellable{'_at' if call.func.attr.endswith('_at') else ''}"
                f"() when a cancellable handle is needed",
            )


# --- ALW-* / LNT-*: the suppression machinery polices itself ----------------
#
# These rules are *emitted by the runner* (which is the layer that sees
# comments and parse failures); they are registered here with no-op
# checkers so `--list-rules`, the docs cross-check, and the scope wiring
# treat them like any other rule.  None of them is suppressible — an
# allow comment cannot vouch for itself.


def _runner_emitted(_ctx: ModuleContext) -> Iterator[Finding]:
    return iter(())


register_rule(
    "ALW-REASON",
    summary="allow() suppression without a reason string",
    invariant="every suppression carries a reviewable justification",
    scopes=("*",),
    suppressible=False,
)(_runner_emitted)

register_rule(
    "ALW-UNKNOWN",
    summary="allow() names a rule id the registry does not know",
    invariant="suppressions always point at a real, current rule",
    scopes=("*",),
    suppressible=False,
)(_runner_emitted)

register_rule(
    "ALW-UNUSED",
    summary="allow() suppresses nothing on its line",
    invariant="stale suppressions are removed, not accumulated",
    scopes=("*",),
    suppressible=False,
)(_runner_emitted)

register_rule(
    "LNT-PARSE",
    summary="file does not parse as Python",
    invariant="every file under analysis is actually analysable",
    scopes=("*",),
    suppressible=False,
)(_runner_emitted)
