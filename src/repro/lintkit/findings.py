"""Findings and reports: what the analyzer returns and how it renders.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintReport` is everything one ``repro lint`` invocation saw.
Findings are value objects — the runner produces them, the CLI renders
them, the tests assert on them — and their JSON form (see
:meth:`Finding.to_dict`) is a stable schema: ``repro lint --format
json`` output is consumed by CI, so keys are only ever added, never
renamed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "LintReport"]

#: Version of the ``--format json`` schema (bump only on breaking change).
JSON_SCHEMA_VERSION = 1


@dataclass(order=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``suppressed`` marks a finding covered by a reasoned
    ``# repro: allow(...)`` comment (or by the committed baseline);
    suppressed findings are reported but do not fail the run, and
    ``reason`` carries the justification text.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)
    suppressed: bool = field(default=False, compare=False)
    reason: str | None = field(default=None, compare=False)

    def to_dict(self) -> dict:
        """The stable JSON form of this finding."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }

    def render(self) -> str:
        """``path:line:col: RULE-ID message`` (the text output line)."""
        tag = " [suppressed]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} {self.message}"


@dataclass(slots=True)
class LintReport:
    """Everything one lint run saw: findings plus file accounting."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        """The findings that fail the run (not allow-listed, not baselined)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def clean(self) -> bool:
        """True when nothing unsuppressed was found (exit code 0)."""
        return not self.unsuppressed

    def to_dict(self) -> dict:
        """The stable ``--format json`` document."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "unsuppressed": len(self.unsuppressed),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self, verbose: bool = False) -> str:
        """Human-readable report; suppressed findings only with ``verbose``."""
        shown = self.findings if verbose else self.unsuppressed
        lines = [finding.render() for finding in shown]
        suppressed = sum(1 for f in self.findings if f.suppressed)
        summary = (
            f"{len(self.unsuppressed)} finding(s) in {self.files_checked} "
            f"file(s) ({suppressed} suppressed)"
        )
        lines.append(summary)
        return "\n".join(lines)
