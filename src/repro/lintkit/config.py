"""Path-scoped rule application: where in the tree each family bites.

Scopes are directory names matched against a file's path segments, so
``src/repro/sim/engine.py`` is in scope ``sim`` and
``tests/cluster/test_stress.py`` is in scope ``cluster``.  The layering
principle, from strict to lax:

* **Simulation-facing code** (:data:`SIM_SCOPE`: sim, core, schedulers,
  experiments, workload, topology, transport, theory, metrics,
  scenarios) gets the
  full determinism family — these modules produce the bytes the
  byte-identity suite compares, so a wall-clock read or an unseeded RNG
  there is an artifact-corrupting bug, not a style issue.
* **Cluster code** (queue, worker, client — and the cluster test suite
  when pointed at it) gets the transaction- and thread-discipline
  families plus the RNG rule, but *not* the wall-clock rule: leases and
  heartbeats are wall-clock by design.
* **Everything else** (cli, api glue, analysis) gets only the always-on
  rules about the suppression machinery itself — scheduling policy does
  not live there, so the strict families would only generate noise.

A rule with scope ``("*",)`` applies to every linted file.
"""

from __future__ import annotations

from pathlib import PurePath

from repro.lintkit.rules import Rule, load_rules

__all__ = ["CLUSTER_SCOPE", "HOT_PATH_SCOPE", "OBS_SCOPE", "SIM_SCOPE",
           "rules_for_path"]

#: Directories whose code feeds deterministic artifacts (strict rules).
SIM_SCOPE = (
    "sim",
    "core",
    "schedulers",
    "experiments",
    "workload",
    "topology",
    "transport",
    "theory",
    "metrics",
    "scenarios",
)

#: Directories holding the distributed queue/worker machinery.
CLUSTER_SCOPE = ("cluster",)

#: Directories holding the observability layer (metrics hub, spans,
#: flight recorder).  Telemetry code is *not* simulation-facing — it may
#: read wall clocks — but its sampler callbacks ride the engine's event
#: heap, so the sampler-purity rule bites here as well as in SIM_SCOPE.
OBS_SCOPE = ("obs",)

#: Directories whose classes sit on the simulation hot path.
HOT_PATH_SCOPE = ("sim", "schedulers")


def rules_for_path(path: str | PurePath) -> tuple[Rule, ...]:
    """The rules that apply to ``path``, per its directory segments."""
    parts = set(PurePath(path).parts)
    return tuple(
        rule
        for rule in load_rules().values()
        if (rule.scopes == ("*",) or parts.intersection(rule.scopes))
        and not parts.intersection(rule.exclude)
    )
