"""The lint engine: walk files, run rules, apply suppressions, report.

Suppression syntax — one comment on the offending line::

    self._now = perf_counter()  # repro: allow(DET-WALLCLOCK) ENGINE_PERF accounting

* ``allow(ID)`` may carry several comma-separated rule ids.
* The reason text after the closing parenthesis is **mandatory**
  (``ALW-REASON`` fires on a bare allow), must reference a real rule
  (``ALW-UNKNOWN``), and must actually suppress something on its line
  (``ALW-UNUSED``) — so the suppression inventory in the tree is always
  current, justified, and greppable.
* The ALW-* rules themselves (and ``LNT-PARSE``) cannot be suppressed.

A committed baseline file (``lint-baseline.json``) can additionally
waive known findings by ``(path, rule, line)`` — this repo's baseline
is empty and CI keeps it that way, but the mechanism is what makes
introducing a new rule against a dirty tree tractable.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.lintkit.config import rules_for_path
from repro.lintkit.findings import Finding, LintReport
from repro.lintkit.rules import ModuleContext, load_rules

__all__ = ["lint_file", "lint_paths", "load_baseline"]

#: The allow-comment shape: comma-separated rule ids in parens, then the
#: mandatory reason text (see the module docstring for the full syntax).
_ALLOW = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)\s*(.*)$")


@dataclass(slots=True)
class _Suppression:
    """One parsed allow comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


def _collect_suppressions(source: str) -> list[_Suppression]:
    """Every ``repro: allow(...)`` comment in ``source``, via tokenize.

    Tokenizing (rather than regexing raw lines) means a string literal
    that merely *contains* the allow syntax — lint's own tests are full
    of those — can never masquerade as a suppression.
    """
    suppressions: list[_Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW.search(token.string)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",")
                if rule.strip()
            )
            suppressions.append(_Suppression(
                line=token.start[0],
                rules=rules,
                reason=match.group(2).strip(),
            ))
    except tokenize.TokenizeError:
        pass  # unparseable file: LNT-PARSE already tells the story
    return suppressions


def _meta_findings(
    path: str,
    suppressions: Iterable[_Suppression],
    used_lines: dict[int, set[str]],
) -> list[Finding]:
    """The ALW-* findings for one file's suppression comments."""
    registry = load_rules()
    out: list[Finding] = []
    for sup in suppressions:
        if not sup.reason:
            out.append(Finding(
                path=path, line=sup.line, col=0, rule="ALW-REASON",
                message="allow() without a reason — every suppression "
                        "must say why the exception is intentional",
            ))
            continue
        unknown = [rule for rule in sup.rules if rule not in registry]
        if unknown or not sup.rules:
            out.append(Finding(
                path=path, line=sup.line, col=0, rule="ALW-UNKNOWN",
                message=f"allow() names unknown rule(s) "
                        f"{unknown or ['<none>']} — see repro lint --list-rules",
            ))
            continue
        if not used_lines.get(sup.line, set()).intersection(sup.rules):
            out.append(Finding(
                path=path, line=sup.line, col=0, rule="ALW-UNUSED",
                message=f"allow({', '.join(sup.rules)}) suppresses nothing "
                        f"on this line — remove the stale comment",
            ))
    return out


def lint_file(path: str | Path, source: str | None = None) -> list[Finding]:
    """Lint one file; returns its findings (suppressed ones marked).

    ``source`` overrides reading from disk (fixture tests).  The rules
    applied are chosen by :func:`~repro.lintkit.config.rules_for_path`
    from ``path``'s directory segments, so the same snippet can be a
    violation under ``sim/`` and fine under ``cli``-land.
    """
    path_text = str(path)
    if source is None:
        source = Path(path).read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(
            path=path_text, line=exc.lineno or 1, col=exc.offset or 0,
            rule="LNT-PARSE", message=f"not parseable as Python: {exc.msg}",
        )]
    ctx = ModuleContext(path_text, tree)
    registry = load_rules()
    findings: list[Finding] = []
    for rule in rules_for_path(path_text):
        findings.extend(rule.check(ctx))

    suppressions = _collect_suppressions(source)
    used_lines: dict[int, set[str]] = {}
    for finding in findings:
        rule = registry[finding.rule]
        if not rule.suppressible:
            continue
        for sup in suppressions:
            if sup.line == finding.line and finding.rule in sup.rules \
                    and sup.reason:
                finding.suppressed = True
                finding.reason = sup.reason
                used_lines.setdefault(sup.line, set()).add(finding.rule)
                break
    findings.extend(_meta_findings(path_text, suppressions, used_lines))
    findings.sort()
    return findings


def _python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise ConfigurationError(f"lint path {raw!r} does not exist")
    return sorted(files)


def load_baseline(path: str | Path) -> set[tuple[str, str, int]]:
    """The committed waivers: a set of ``(path, rule, line)`` triples."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"cannot read lint baseline {path}: {exc}")
    entries = document.get("findings") if isinstance(document, dict) else None
    if entries is None:
        raise ConfigurationError(
            f"lint baseline {path} must be a JSON object with a "
            f"'findings' array"
        )
    return {
        (entry["path"], entry["rule"], int(entry["line"]))
        for entry in entries
    }


def lint_paths(
    paths: Sequence[str | Path],
    baseline: set[tuple[str, str, int]] | None = None,
) -> LintReport:
    """Lint every Python file under ``paths``; the ``repro lint`` core.

    ``baseline`` waives known findings by ``(path, rule, line)`` —
    waived findings stay in the report, marked suppressed with a
    "baseline" reason, so the JSON output never hides them.
    """
    report = LintReport()
    for file in _python_files(paths):
        findings = lint_file(file)
        if baseline:
            for finding in findings:
                key = (finding.path, finding.rule, finding.line)
                if not finding.suppressed and key in baseline:
                    finding.suppressed = True
                    finding.reason = "baseline"
        report.findings.extend(findings)
        report.files_checked += 1
    return report
