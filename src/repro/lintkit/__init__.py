"""Static analysis for the reproduction's determinism & concurrency rules.

Every correctness claim this repo makes — byte-identical artifacts
across the serial/process/queue executors, replayed schedules matching
recorded ones, exactly-once queue semantics — rests on coding
invariants that no test can watch all the time: RNG must be injected
and seeded, simulation code must never read the wall clock, queue
mutations must run inside ``BEGIN IMMEDIATE`` transactions, worker
threads must not scribble on shared state, hot-path classes must stay
``__slots__``-ed.  :mod:`repro.lintkit` turns those reviewer-memory
rules into machine-checked ones:

* :mod:`~repro.lintkit.rules` — the rule registry: stable IDs, one
  visitor-style checker per rule, and the per-module AST context they
  share.
* :mod:`~repro.lintkit.config` — path-scoped application: sim/core/
  schedulers get the strict determinism rules, cluster gets the
  transaction/thread rules, cli gets almost nothing.
* :mod:`~repro.lintkit.runner` — walks files, applies suppressions
  (``# repro: allow(RULE-ID) reason`` — the reason is mandatory and
  itself linted), subtracts a committed baseline, and renders text or
  JSON.

The CLI front end is ``repro lint`` (see :mod:`repro.cli`); the
enforced invariants are catalogued in ``docs/determinism.md``.
"""

from __future__ import annotations

from repro.lintkit.config import rules_for_path
from repro.lintkit.findings import JSON_SCHEMA_VERSION, Finding, LintReport
from repro.lintkit.rules import RULES, Rule, rule_ids
from repro.lintkit.runner import lint_file, lint_paths, load_baseline

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintReport",
    "RULES",
    "Rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_ids",
    "rules_for_path",
]
