"""The rule registry and the per-module AST context checkers share.

A :class:`Rule` is a stable ID, a one-line summary, the invariant it
protects (the ``docs/determinism.md`` column), the path scopes it
applies in (see :mod:`repro.lintkit.config`), and a checker — a
function taking a :class:`ModuleContext` and yielding
:class:`~repro.lintkit.findings.Finding`\\ s.  Rules self-register via
:func:`register_rule`; the concrete checkers live in
:mod:`repro.lintkit.checks`, imported lazily by :func:`load_rules` so
the registry is populated exactly once however the package is entered.

The :class:`ModuleContext` does the shared AST bookkeeping one parse
pays for once per file: an import table that resolves local names to
canonical dotted origins (``np.random.default_rng`` →
``numpy.random.default_rng``), a child→parent map for
expression-context checks, and cached node lists per syntax kind.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.lintkit.findings import Finding

__all__ = [
    "RULES",
    "ModuleContext",
    "Rule",
    "load_rules",
    "register_rule",
    "rule_ids",
]

#: Checker signature: one module in, findings out.
Checker = Callable[["ModuleContext"], Iterator[Finding]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered rule: identity, documentation, scope, checker."""

    id: str
    summary: str
    invariant: str
    scopes: tuple[str, ...]
    check: Checker
    #: Rules about the suppression machinery itself cannot be suppressed.
    suppressible: bool = True
    #: Path segments that veto the rule even inside its scopes — e.g. the
    #: PERF family is about production hot paths, so ``tests`` opts out.
    exclude: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """The ``--list-rules --format json`` row."""
        return {
            "id": self.id,
            "summary": self.summary,
            "invariant": self.invariant,
            "scopes": list(self.scopes),
            "exclude": list(self.exclude),
            "suppressible": self.suppressible,
        }


#: The registry: rule id → :class:`Rule`, populated by :func:`load_rules`.
RULES: dict[str, Rule] = {}


def register_rule(
    id: str,
    summary: str,
    invariant: str,
    scopes: tuple[str, ...],
    suppressible: bool = True,
    exclude: tuple[str, ...] = (),
) -> Callable[[Checker], Checker]:
    """Decorator: register ``fn`` as the checker behind rule ``id``."""

    def decorator(fn: Checker) -> Checker:
        if id in RULES:
            raise ValueError(f"lint rule {id!r} is already registered")
        RULES[id] = Rule(
            id=id, summary=summary, invariant=invariant, scopes=scopes,
            check=fn, suppressible=suppressible, exclude=exclude,
        )
        return fn

    return decorator


def load_rules() -> dict[str, Rule]:
    """The fully populated registry (imports the checkers on first call)."""
    importlib.import_module("repro.lintkit.checks")
    return RULES


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted — the ``--list-rules`` set."""
    return tuple(sorted(load_rules()))


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local name → canonical dotted origin, from the module's imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    perf_counter as pc`` maps ``pc -> time.perf_counter``.  Relative
    imports keep their module path as written (level dots dropped) —
    precise enough for the stdlib/numpy origins the rules match on.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


class ModuleContext:
    """One parsed module plus the derived tables every checker shares."""

    __slots__ = ("path", "tree", "imports", "_parents", "_calls", "_classes",
                 "_functions")

    def __init__(self, path: str | Path, tree: ast.Module) -> None:
        self.path = str(path)
        self.tree = tree
        self.imports = _import_table(tree)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._calls: list[ast.Call] | None = None
        self._classes: list[ast.ClassDef] | None = None
        self._functions: list[ast.FunctionDef | ast.AsyncFunctionDef] | None = None

    # -- node inventories (walked once, cached) ----------------------------

    def calls(self) -> list[ast.Call]:
        if self._calls is None:
            self._calls = [n for n in ast.walk(self.tree)
                           if isinstance(n, ast.Call)]
        return self._calls

    def classes(self) -> list[ast.ClassDef]:
        if self._classes is None:
            self._classes = [n for n in ast.walk(self.tree)
                             if isinstance(n, ast.ClassDef)]
        return self._classes

    def functions(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        if self._functions is None:
            self._functions = [
                n for n in ast.walk(self.tree)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        return self._functions

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module root)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents.get(node)

    # -- name resolution ---------------------------------------------------

    def dotted(self, node: ast.AST) -> str | None:
        """Canonical dotted name of an expression, or None if unresolvable.

        ``Name`` resolves through the import table (falling back to the
        bare name, which is how builtins like ``id`` surface);
        ``Attribute`` chains resolve their base and append, so
        ``np.random.default_rng`` canonicalises through ``np -> numpy``.
        Anything rooted in a call result or subscript is None — the
        rules only judge names they can trace to an import or builtin.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.dotted(node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None

    # -- findings ----------------------------------------------------------

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """A finding anchored at ``node``'s source location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
        )


def shallow_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes.

    The SQL and thread rules reason about *one* function's statement
    sequence; a nested helper has its own discipline and is visited on
    its own turn through :meth:`ModuleContext.functions`.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
