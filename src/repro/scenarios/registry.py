"""The scenario registry: named, enumerable, declarative workloads.

Built-in scenarios live in :mod:`repro.scenarios.builtin` and register
themselves with :func:`register_scenario` at import time; the registry
loads that module lazily on first lookup, mirroring how the experiment
registry (:mod:`repro.api.registry`) discovers its drivers.  Anything —
a test, a plugin, a notebook — can register more::

    @register_scenario
    def my_burst() -> Scenario:
        return Scenario("my-burst", pattern="staggered-burst")

The decorated factory is called once at registration; what the registry
stores (and :func:`get_scenario` hands back) is the frozen
:class:`~repro.scenarios.spec.Scenario` value itself.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.errors import ConfigurationError
from repro.scenarios.spec import Scenario

__all__ = [
    "SCENARIOS",
    "ScenarioRegistry",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]

#: Modules imported on first lookup so built-ins self-register.
_BUILTIN_MODULES = ("repro.scenarios.builtin",)


class ScenarioRegistry:
    """Name → :class:`Scenario` mapping with lazy built-in loading."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}
        self._loaded = False

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)

    def register(self, factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
        """Decorator: add ``factory()``'s scenario to the registry.

        The factory runs immediately; duplicate names are an error so two
        definitions can never shadow each other silently.
        """
        scenario = factory()
        if not isinstance(scenario, Scenario):
            raise ConfigurationError(
                f"scenario factory {factory!r} must return a Scenario, "
                f"got {type(scenario).__name__}"
            )
        if scenario.name in self._scenarios:
            raise ConfigurationError(
                f"scenario {scenario.name!r} is already registered"
            )
        self._scenarios[scenario.name] = scenario
        return factory

    def get(self, name: str) -> Scenario:
        """The registered scenario called ``name``; unknown names raise."""
        self._ensure_loaded()
        try:
            return self._scenarios[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown scenario {name!r}; choose from {list(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered scenario names, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._scenarios))

    def entries(self) -> tuple[Scenario, ...]:
        """All registered scenarios, sorted by name."""
        self._ensure_loaded()
        return tuple(self._scenarios[n] for n in self.names())

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._scenarios


#: The process-wide registry every helper below delegates to.
SCENARIOS = ScenarioRegistry()


def register_scenario(factory: Callable[[], Scenario]) -> Callable[[], Scenario]:
    """Register a zero-argument scenario factory with :data:`SCENARIOS`."""
    return SCENARIOS.register(factory)


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (:meth:`ScenarioRegistry.get`)."""
    return SCENARIOS.get(name)


def scenario_names() -> tuple[str, ...]:
    """Names of every registered scenario, sorted."""
    return SCENARIOS.names()
