"""Deterministic traffic patterns: (scenario, seed, duration) → flows.

Each pattern turns a :class:`~repro.scenarios.spec.Scenario` into a
concrete flow list using one seeded ``numpy`` generator, drawn in a
single canonical order (round → sender → flow), so the same triple
always yields the byte-identical list — the property the scenario
hypothesis suite locks down.

Patterns (who talks to whom, and when):

* ``incast`` — every sender bursts at the first receiver on each round
  boundary: the synchronized fan-in that stresses one queue.
* ``all-to-all`` — each sender spreads its round's flows across the
  receiver set (the shuffle-stage shape).
* ``permutation`` — one random cyclic shift per round pairs each sender
  with a single receiver, so no receiver is oversubscribed by design.
* ``staggered-burst`` — incast with each sender's burst offset evenly
  within the round, turning the spike into a wave.

Flow ids are disjoint across seeds: leg ``seed`` owns the id range
``[seed * SEED_FID_STRIDE + 1, ...)``, so two legs' flows can never
alias even when merged into one trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.flow import Flow
from repro.errors import WorkloadError
from repro.scenarios.spec import Scenario
from repro.scenarios.topology import scenario_hosts
from repro.workload.distributions import make_distribution

__all__ = ["SEED_FID_STRIDE", "scenario_flows"]

#: Each seed's flows live in their own id range: seed k owns
#: ``(k * SEED_FID_STRIDE, (k + 1) * SEED_FID_STRIDE]``, so distinct
#: seeds produce disjoint fid streams by construction.
SEED_FID_STRIDE = 1_000_000


def _destination(pattern: str, receivers: list[str], sender_idx: int,
                 flow_idx: int, shift: int) -> str:
    """The canonical receiver for one (pattern, sender, flow) slot."""
    n = len(receivers)
    if pattern in ("incast", "staggered-burst"):
        return receivers[0]
    if pattern == "all-to-all":
        return receivers[(sender_idx + 1 + flow_idx) % n]
    # permutation: the round's shared cyclic shift
    return receivers[(sender_idx + shift) % n]


def scenario_flows(scenario: Scenario, seed: int, duration: float) -> list[Flow]:
    """The deterministic flow list for one (scenario, seed, duration) leg.

    Rounds fire every ``scenario.interval`` seconds until ``duration``
    is covered; each sender contributes ``scenario.flows_per_host``
    flows per round, starts jittered by the seeded RNG and sizes drawn
    from the scenario's named distribution (capped at ``size_cap``).
    Same arguments ⇒ byte-identical list; distinct seeds ⇒ disjoint
    flow-id ranges (:data:`SEED_FID_STRIDE`).
    """
    if duration <= 0:
        raise WorkloadError(f"duration must be positive, got {duration!r}")
    senders, receivers = scenario_hosts(scenario)
    sizes = make_distribution(scenario.distribution)
    rng = np.random.default_rng(seed)
    rounds = max(1, int(np.ceil(duration / scenario.interval)))
    stagger = (scenario.interval / len(senders)
               if scenario.pattern == "staggered-burst" else 0.0)

    fid = seed * SEED_FID_STRIDE
    flows: list[Flow] = []
    for r in range(rounds):
        base = r * scenario.interval
        if scenario.pattern == "permutation" and len(receivers) > 1:
            shift = 1 + int(rng.integers(len(receivers) - 1))
        else:
            shift = 0
        for i, src in enumerate(senders):
            offset = base + i * stagger
            for k in range(scenario.flows_per_host):
                start = offset + float(rng.uniform(0.0, scenario.jitter))
                size = min(sizes.sample(rng), scenario.size_cap)
                fid += 1
                flows.append(
                    Flow(
                        fid=fid,
                        src=src,
                        dst=_destination(scenario.pattern, receivers, i, k,
                                         shift),
                        size=size,
                        start=start,
                    )
                )
    flows.sort(key=lambda f: (f.start, f.fid))
    return flows
