"""The declarative scenario DSL: one dataclass describes one workload.

A :class:`Scenario` bundles everything that defines a datacenter-style
evaluation setting — a topology shape, a traffic pattern, a named
flow-size distribution, and link impairments — into a frozen, hashable,
JSON-round-trippable value, exactly like
:class:`~repro.api.spec.ExperimentSpec` does for experiment runs::

    s = Scenario("demo", pattern="incast", distribution="web-search")
    assert Scenario.from_dict(s.to_dict()) == s

Scenarios deliberately do *not* carry a seed or a duration: those are
run-time axes owned by the experiment spec, so one scenario definition
fans out over ``seeds=(1..8)`` without being rewritten per leg.  The
deterministic flow list for a (scenario, seed, duration) triple comes
from :func:`repro.scenarios.patterns.scenario_flows`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

from repro.errors import ConfigurationError

__all__ = ["PATTERNS", "SCENARIO_TOPOLOGIES", "Scenario"]

#: Traffic patterns :func:`~repro.scenarios.patterns.scenario_flows` knows.
PATTERNS = ("incast", "all-to-all", "permutation", "staggered-burst")

#: Topology shapes a scenario may name (the canonical gadgets of
#: :mod:`repro.topology.simple`, sized by :attr:`Scenario.hosts`).
SCENARIO_TOPOLOGIES = ("single-switch", "dumbbell", "parking-lot")


def _require_number(name: str, value: object, *, minimum: float | None = None,
                    positive: bool = False) -> None:
    """One validator for the numeric knobs (bools are not numbers here)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"scenario {name} must be a number, got {value!r}")
    if positive and value <= 0:
        raise ConfigurationError(f"scenario {name} must be > 0, got {value!r}")
    if minimum is not None and value < minimum:
        raise ConfigurationError(
            f"scenario {name} must be >= {minimum}, got {value!r}"
        )


@dataclass(frozen=True, slots=True)
class Scenario:
    """One declarative traffic scenario.

    ``pattern`` picks the communication structure (who talks to whom,
    when), ``distribution`` names a flow-size law from
    :func:`repro.workload.distributions.distribution_names`, and
    ``topology``/``hosts`` shape the network the traffic crosses.

    ``delay`` and ``bottleneck_scale`` are the impairment knobs: extra
    per-link propagation (seconds) and a multiplier on the bottleneck
    bandwidth (``0.5`` halves it — the degraded-path regime of the
    mininet methodology this matrix reproduces).

    ``flows_per_host`` flows per source per round, one round every
    ``interval`` seconds until the run's duration is covered; starts are
    jittered uniformly in ``[0, jitter]`` from the round boundary, and
    sampled sizes are capped at ``size_cap`` bytes so laptop-scale
    matrix legs stay bounded.
    """

    name: str
    pattern: str = "incast"
    distribution: str = "web-search"
    topology: str = "dumbbell"
    hosts: int = 6
    flows_per_host: int = 2
    size_cap: int = 500_000
    interval: float = 0.005
    jitter: float = 0.001
    delay: float = 0.0
    bottleneck_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        if self.pattern not in PATTERNS:
            raise ConfigurationError(
                f"unknown traffic pattern {self.pattern!r}; "
                f"choose from {PATTERNS}"
            )
        if self.topology not in SCENARIO_TOPOLOGIES:
            raise ConfigurationError(
                f"unknown scenario topology {self.topology!r}; "
                f"choose from {SCENARIO_TOPOLOGIES}"
            )
        from repro.workload.distributions import distribution_names

        if self.distribution not in distribution_names():
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}; choose from "
                f"{list(distribution_names())}"
            )
        if isinstance(self.hosts, bool) or not isinstance(self.hosts, int):
            raise ConfigurationError(
                f"scenario hosts must be an integer, got {self.hosts!r}"
            )
        if self.hosts < 2:
            raise ConfigurationError(
                f"scenario needs at least 2 hosts, got {self.hosts!r}"
            )
        if (isinstance(self.flows_per_host, bool)
                or not isinstance(self.flows_per_host, int)
                or self.flows_per_host < 1):
            raise ConfigurationError(
                f"flows_per_host must be an integer >= 1, "
                f"got {self.flows_per_host!r}"
            )
        if (isinstance(self.size_cap, bool)
                or not isinstance(self.size_cap, int) or self.size_cap < 1):
            raise ConfigurationError(
                f"size_cap must be an integer >= 1, got {self.size_cap!r}"
            )
        _require_number("interval", self.interval, positive=True)
        _require_number("jitter", self.jitter, minimum=0.0)
        _require_number("delay", self.delay, minimum=0.0)
        _require_number("bottleneck_scale", self.bottleneck_scale,
                        positive=True)

    def with_(self, **changes: object) -> "Scenario":
        """A copy with fields replaced (scenarios are frozen)."""
        return replace(self, **changes)

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dict; lossless under :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output (or hand JSON)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario fields {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(**dict(data))
