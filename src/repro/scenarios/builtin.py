"""The built-in scenario catalogue.

Five scenarios spanning the (pattern × distribution × topology) space
the mininet methodology evaluates: synchronized incast, shuffle-stage
all-to-all, permutation traffic, a staggered burst, and a degraded-path
variant exercising the impairment knobs.  Each is a plain
:func:`~repro.scenarios.registry.register_scenario` factory, so this
module doubles as the reference for defining new ones.
"""

from __future__ import annotations

from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import Scenario

__all__: list[str] = []


@register_scenario
def websearch_incast() -> Scenario:
    """Web-search flows fanning into one switch port — the classic incast."""
    return Scenario(
        "websearch-incast",
        pattern="incast",
        distribution="web-search",
        topology="single-switch",
        hosts=6,
        flows_per_host=2,
        size_cap=200_000,
    )


@register_scenario
def datamining_a2a() -> Scenario:
    """Data-mining shuffle: every sender spreads flows across all receivers."""
    return Scenario(
        "datamining-a2a",
        pattern="all-to-all",
        distribution="data-mining",
        topology="dumbbell",
        hosts=4,
        flows_per_host=3,
        size_cap=500_000,
    )


@register_scenario
def internet_permutation() -> Scenario:
    """Internet-mix permutation traffic: one receiver per sender per round."""
    return Scenario(
        "internet-permutation",
        pattern="permutation",
        distribution="internet",
        topology="dumbbell",
        hosts=6,
        flows_per_host=2,
        size_cap=300_000,
    )


@register_scenario
def pareto_burst() -> Scenario:
    """Heavy-tailed staggered bursts: the incast spike spread into a wave."""
    return Scenario(
        "pareto-burst",
        pattern="staggered-burst",
        distribution="pareto",
        topology="single-switch",
        hosts=8,
        flows_per_host=2,
        size_cap=200_000,
    )


@register_scenario
def datamining_incast_slow() -> Scenario:
    """Incast over a degraded parking-lot core: added delay, halved bottleneck."""
    return Scenario(
        "datamining-incast-slow",
        pattern="incast",
        distribution="data-mining",
        topology="parking-lot",
        hosts=3,
        flows_per_host=2,
        size_cap=300_000,
        delay=0.001,
        bottleneck_scale=0.5,
    )
