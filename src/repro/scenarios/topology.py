"""Scenario topologies: name → built network, with impairments applied.

Scenarios reference the canonical gadget shapes of
:mod:`repro.topology.simple` by name and size them with
:attr:`~repro.scenarios.spec.Scenario.hosts`:

* ``single-switch`` — ``hosts`` senders into one switch and one sink:
  the classic incast bottleneck (one congestion point).
* ``dumbbell`` — ``hosts`` sender/receiver pairs around one shared
  bottleneck link (the ≤ 2 congestion point regime).
* ``parking-lot`` — a chain of ``hosts`` switches with per-hop on/off
  ramps (the ≥ 3 congestion point regime).

Impairments map onto the builders directly: ``delay`` adds propagation
to every link, ``bottleneck_scale`` multiplies the bottleneck/core
bandwidth only — host access links keep their speed, so the bottleneck
actually moves the way a degraded core path would.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.scenarios.spec import SCENARIO_TOPOLOGIES, Scenario
from repro.sim.network import Network
from repro.topology.simple import (
    build_dumbbell,
    build_parking_lot,
    build_single_switch,
)
from repro.units import MBPS

__all__ = ["build_scenario_network", "scenario_hosts"]

#: Base link speeds before ``bandwidth_scale``: the familiar 100 Mbps
#: access / slower shared core shape of the mininet fairness experiments.
_HOST_BW = 100 * MBPS
_BOTTLENECK_BW = {"single-switch": 10 * MBPS, "dumbbell": 50 * MBPS,
                  "parking-lot": 10 * MBPS}
_BASE_PROP = 1e-5


def scenario_hosts(scenario: Scenario) -> tuple[list[str], list[str]]:
    """The (senders, receivers) host names the scenario's topology owns.

    The names match what :func:`build_scenario_network` creates, so the
    pattern generators and the simulator can never disagree about who
    exists.
    """
    n = scenario.hosts
    if scenario.topology == "single-switch":
        return [f"s_{i}" for i in range(n)], ["sink"]
    if scenario.topology == "dumbbell":
        return [f"s_{i}" for i in range(n)], [f"d_{i}" for i in range(n)]
    if scenario.topology == "parking-lot":
        return ([f"h_in_{i}" for i in range(n)],
                [f"h_out_{i}" for i in range(n)])
    raise ConfigurationError(
        f"unknown scenario topology {scenario.topology!r}; "
        f"choose from {SCENARIO_TOPOLOGIES}"
    )


def build_scenario_network(
    scenario: Scenario, bandwidth_scale: float = 1.0
) -> Network:
    """Build the scenario's network, impairments included.

    ``bandwidth_scale`` is the experiment-wide scale knob (the same one
    every driver takes); the scenario's own ``bottleneck_scale``
    impairment multiplies the bottleneck on top of it, and ``delay``
    adds propagation to every link.
    """
    if bandwidth_scale <= 0:
        raise ConfigurationError(
            f"bandwidth_scale must be > 0, got {bandwidth_scale!r}"
        )
    host_bw = _HOST_BW * bandwidth_scale
    bottleneck = (_BOTTLENECK_BW[scenario.topology] * bandwidth_scale
                  * scenario.bottleneck_scale)
    prop = _BASE_PROP + scenario.delay
    if scenario.topology == "single-switch":
        return build_single_switch(
            num_senders=scenario.hosts, host_bw=host_bw,
            bottleneck_bw=bottleneck, prop=prop,
        )
    if scenario.topology == "dumbbell":
        return build_dumbbell(
            num_pairs=scenario.hosts, host_bw=host_bw,
            bottleneck_bw=bottleneck, prop=prop,
        )
    return build_parking_lot(
        num_hops=scenario.hosts - 1, host_bw=host_bw,
        core_bw=bottleneck, prop=prop,
    )
