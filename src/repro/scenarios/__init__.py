"""Declarative scenarios: named (topology × pattern × workload) bundles.

A :class:`Scenario` is the frozen, JSON-round-trippable description of
one evaluation setting; the registry makes scenarios enumerable by name
(``repro list --scenarios``) and the pattern generators turn a
(scenario, seed, duration) triple into a byte-identical flow list.  The
``scenarios`` sweep axis on :class:`repro.api.spec.ExperimentSpec` fans
those names across cluster legs next to ``seeds``.
"""

from repro.scenarios.patterns import SEED_FID_STRIDE, scenario_flows
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioRegistry,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.spec import PATTERNS, SCENARIO_TOPOLOGIES, Scenario
from repro.scenarios.topology import build_scenario_network, scenario_hosts

__all__ = [
    "PATTERNS",
    "SCENARIOS",
    "SCENARIO_TOPOLOGIES",
    "SEED_FID_STRIDE",
    "Scenario",
    "ScenarioRegistry",
    "build_scenario_network",
    "get_scenario",
    "register_scenario",
    "scenario_flows",
    "scenario_hosts",
    "scenario_names",
]
