"""The crash flight recorder.

A :class:`FlightRecorder` is a bounded ring buffer of the most recent
engine events — ``(sim_time, callback name)`` — plus a per-callback
fire count.  Attach one to an engine (``engine.flight = recorder``,
or hand it to :class:`~repro.obs.hub.MetricsHub`) and the run loop
notes every event it dispatches; when a leg hangs or crashes, the tail
of the ring says *what the simulation was doing* — which callback, at
which simulated time — long after the traceback has lost that context.

Cluster workers keep one recorder across jobs (``REPRO_OBS=1``): its
dump is appended to failure records the queue stores, and ``SIGUSR1``
prints it to stderr for live post-mortem of a wedged worker (see
:meth:`repro.cluster.worker.Worker.install_signal_handlers`).

Names are resolved eagerly (``__qualname__``), so a recorder holds no
references into the simulation and pickles freely.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring buffer of recent engine events with callback attribution."""

    __slots__ = ("capacity", "total", "counts", "_ring", "_next")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"flight recorder capacity must be >= 1, got {capacity!r}"
            )
        self.capacity = capacity
        #: Events noted since construction (the ring only keeps the tail).
        self.total = 0
        #: Callback name -> number of times it fired.
        self.counts: dict[str, int] = {}
        self._ring: list[tuple[float, str] | None] = [None] * capacity
        self._next = 0

    def note(self, time: float, callback) -> None:
        """Record one dispatched event (called from the engine run loop)."""
        name = getattr(callback, "__qualname__", None) \
            or type(callback).__name__
        self.total += 1
        counts = self.counts
        counts[name] = counts.get(name, 0) + 1
        self._ring[self._next] = (time, name)
        self._next = (self._next + 1) % self.capacity

    def clear(self) -> None:
        """Forget everything (a fresh ring, zero counts)."""
        self.total = 0
        self.counts = {}
        self._ring = [None] * self.capacity
        self._next = 0

    # -- queries -----------------------------------------------------------

    def tail(self, limit: int | None = None) -> list[tuple[float, str]]:
        """The most recent events, oldest first (at most ``limit``)."""
        ring, start = self._ring, self._next
        events = [
            entry
            for i in range(self.capacity)
            if (entry := ring[(start + i) % self.capacity]) is not None
        ]
        return events[-limit:] if limit is not None else events

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-fired callbacks as ``(name, count)``, busiest first."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def dump(self, limit: int | None = 16) -> str:
        """A human-readable post-mortem block (tail + top callbacks)."""
        lines = [f"flight recorder: {self.total} events noted, "
                 f"ring capacity {self.capacity}"]
        for name, count in self.top(5):
            lines.append(f"  top {name}: {count}")
        for time, name in self.tail(limit):
            lines.append(f"  t={time:.9f} {name}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlightRecorder total={self.total} capacity={self.capacity}>"
