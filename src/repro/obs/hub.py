"""The sim-time metrics hub.

A :class:`MetricsHub` collects what the paper's analysis talks about
but the figures never show: per-port queue depth over time, per-link
utilisation, where drops happen and which AQM caused them.  It is
*sim-time* telemetry — samples are taken by callbacks riding the
engine's own event heap (:meth:`repro.sim.engine.Engine.schedule_sample`),
so the recorded series are a deterministic function of the simulation,
not of wall-clock scheduling.

The determinism contract (guarded by the byte-identity suite):

* Sampler events are excluded from every accounting surface — they do
  not increment ``events_processed``, are invisible to ``ENGINE_PERF``
  and the flight recorder, and are dropped from checkpoints.  A run
  with a hub attached therefore reports the *same*
  ``metadata["engine_events"]`` as one without.
* Instrumentation in the packet hot path costs exactly one ``is None``
  check per event while no hub is attached (ports cache the hub in a
  slot at construction) — the zero-allocation-when-off guard.
* The hub's :meth:`summary` is embedded in the artifact's
  non-canonical ``obs`` section, next to ``timings`` — never part of
  :meth:`~repro.api.results.RunArtifact.canonical_json`.
* Sampler callbacks must be pure readers of simulation state (lint
  rule ``OBS-SAMPLER-PURE``).

Hubs activate like the schedule/checkpoint stores: ``with
use_metrics_hub(hub):`` makes the hub ambient, and every
:class:`~repro.sim.network.Network` constructed inside the block
attaches itself — which is how the hub reaches the networks an
experiment driver builds internally.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.flight import FlightRecorder
    from repro.sim.engine import Engine
    from repro.sim.link import Link
    from repro.sim.network import Network

__all__ = ["MetricsHub", "active_metrics_hub", "use_metrics_hub"]

#: The ambient hub new networks attach to (see :func:`use_metrics_hub`).
_ACTIVE_HUB: "MetricsHub | None" = None


def active_metrics_hub() -> "MetricsHub | None":
    """The hub networks built right now attach to, or ``None``."""
    return _ACTIVE_HUB


@contextmanager
def use_metrics_hub(hub: "MetricsHub | None") -> Iterator["MetricsHub | None"]:
    """Make ``hub`` ambient for the block (``None`` = telemetry off).

    Mirrors :func:`~repro.core.trace_io.use_schedule_store`: the runner
    wraps the driver call in this, so every network the driver builds —
    including ones deep inside record/replay helpers — is instrumented
    without threading a parameter through the stack.
    """
    global _ACTIVE_HUB
    previous = _ACTIVE_HUB
    _ACTIVE_HUB = hub
    try:
        yield hub
    finally:
        _ACTIVE_HUB = previous


class _NetSampler:
    """The periodic sampling loop bound to one attached network.

    One per :meth:`MetricsHub.attach` call.  The tick re-arms itself
    only while the engine still has work queued, so sampling can never
    keep :meth:`Engine.run` alive on its own; the hub re-arms it at the
    top of every :meth:`Network.run`.
    """

    __slots__ = ("hub", "network", "pending")

    def __init__(self, hub: "MetricsHub", network: "Network") -> None:
        self.hub = hub
        self.network = network
        self.pending = False

    def ensure(self) -> None:
        """Arm the next tick unless one is already queued."""
        if not self.pending:
            engine = self.network.engine
            self.pending = True
            engine.schedule_sample(engine.now + self.hub.interval, self.tick)

    def tick(self) -> None:
        """Take one sample; re-arm while the simulation still has work."""
        engine = self.network.engine
        now = engine.now
        hub = self.hub
        hub.sample_network(self.network, now)
        for name, fn in hub._samplers:
            hub.record(name, now, fn(now))
        if engine.pending_events or engine.pending_deferred:
            engine.schedule_sample(now + hub.interval, self.tick)
        else:
            self.pending = False


class MetricsHub:
    """Counters, gauges, and periodic sim-time samplers for a run.

    ``interval`` is the sampling period in simulated seconds.
    ``flight`` optionally carries a
    :class:`~repro.obs.flight.FlightRecorder` that :meth:`attach` wires
    into each attached network's engine.
    """

    __slots__ = ("interval", "flight", "counters", "series", "_samplers",
                 "_net_samplers", "_tx_window")

    def __init__(self, interval: float = 0.001,
                 flight: "FlightRecorder | None" = None) -> None:
        if not interval > 0.0:
            raise ConfigurationError(
                f"sampling interval must be positive, got {interval!r}"
            )
        self.interval = interval
        self.flight = flight
        #: Monotonic event counters, e.g. ``"drops"``,
        #: ``"drops.codel:r1->r2"``, ``"tx_bytes:h1->r1"``.
        self.counters: dict[str, int] = {}
        #: Time series: name -> list of ``(sim_time, value)`` samples.
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._samplers: list[tuple[str, Callable[[float], float]]] = []
        self._net_samplers: list[tuple["Network", _NetSampler]] = []
        #: Bytes transmitted per link since that link's last sample —
        #: drained by the utilisation gauge.
        self._tx_window: dict[str, int] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, network: "Network") -> "MetricsHub":
        """Instrument ``network``: ports report here, sampling is armed.

        Idempotent per network.  Called automatically from
        :class:`~repro.sim.network.Network` construction while this hub
        is ambient, and again from
        :func:`~repro.sim.checkpoint.restore_snapshot` so branch legs
        restored from a checkpoint report into the live hub rather than
        the pickled clone inside the snapshot.
        """
        network.obs = self
        for node in network.nodes.values():
            for port in node.ports.values():
                port._obs = self
        network.engine.flight = self.flight
        for seen, _sampler in self._net_samplers:
            if seen is network:
                return self
        self._net_samplers.append((network, _NetSampler(self, network)))
        return self

    def ensure_sampling(self, network: "Network") -> None:
        """Arm the periodic sampler for ``network`` (idempotent)."""
        for seen, sampler in self._net_samplers:
            if seen is network:
                sampler.ensure()
                return
        self.attach(network)
        self._net_samplers[-1][1].ensure()

    def reset_sampling(self, network: "Network") -> None:
        """Forget any armed-tick state for ``network``.

        Called after a snapshot restore replaced the network's engine:
        checkpoints drop pending sampler entries, so a sampler that
        believed its tick was queued would otherwise never re-arm.  The
        next :meth:`ensure_sampling` arms a fresh tick on the restored
        engine.
        """
        for seen, sampler in self._net_samplers:
            if seen is network:
                sampler.pending = False
                return

    def add_sampler(self, name: str, fn: Callable[[float], float]) -> None:
        """Register a custom gauge: ``fn(now) -> value``, sampled each tick.

        The callback runs on the engine's sampler path and must not
        mutate simulation state (lint rule ``OBS-SAMPLER-PURE``).
        """
        self._samplers.append((name, fn))

    # -- hot-path hooks (called by ports, only while attached) -------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + value

    def drop(self, link: "Link", kind: str) -> None:
        """One packet dropped on ``link`` (``kind``: overflow/red/codel)."""
        counters = self.counters
        counters["drops"] = counters.get("drops", 0) + 1
        key = f"drops.{kind}:{link.src}->{link.dst}"
        counters[key] = counters.get(key, 0) + 1

    def tx(self, link: "Link", size: int) -> None:
        """``size`` bytes put on the wire of ``link``."""
        key = f"{link.src}->{link.dst}"
        counters = self.counters
        ckey = f"tx_bytes:{key}"
        counters[ckey] = counters.get(ckey, 0) + size
        window = self._tx_window
        window[key] = window.get(key, 0) + size

    # -- sampling ----------------------------------------------------------

    def record(self, name: str, now: float, value: float) -> None:
        """Append one ``(now, value)`` sample to series ``name``."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = []
        series.append((now, value))

    def sample_network(self, network: "Network", now: float) -> None:
        """The built-in gauges: queue depth and link utilisation per port.

        Iterates ports in sorted (node, peer) order so the series are
        laid down deterministically; AQM mark counts ride along as
        counters wherever an AQM is installed.
        """
        window = self._tx_window
        interval = self.interval
        for name in sorted(network.nodes):
            node = network.nodes[name]
            ports = node.ports
            for peer in sorted(ports):
                port = ports[peer]
                key = f"{name}->{peer}"
                self.record(f"queue_depth:{key}", now, port._queued)
                self.record(
                    f"link_util:{key}", now,
                    port.link.utilisation(window.pop(key, 0), interval),
                )

    # -- reporting ---------------------------------------------------------

    def series_points(self, name: str) -> list[tuple[float, float]]:
        """The raw samples of one series (empty if never sampled)."""
        return list(self.series.get(name, ()))

    def summary(self) -> dict:
        """A deterministic digest for the artifact's ``obs`` section.

        Counters verbatim (sorted), series compressed to count/last/
        min/max/mean — small enough to embed, rich enough to plot a
        first-order picture without the raw samples.
        """
        series = {}
        for name in sorted(self.series):
            points = self.series[name]
            values = [v for _, v in points]
            series[name] = {
                "samples": len(points),
                "t_last": round(points[-1][0], 9),
                "min": round(min(values), 9),
                "max": round(max(values), 9),
                "mean": round(sum(values) / len(values), 9),
            }
        return {
            "interval": self.interval,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "series": series,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsHub interval={self.interval} "
            f"counters={len(self.counters)} series={len(self.series)}>"
        )
