"""The cluster's structured event log.

Every state transition the job queue makes — submit, claim, ack, fail,
requeue, heartbeat, lease-expiry, reclaim, worker register/unregister —
is appended as one JSON line to ``<queue_dir>/events.jsonl`` from
*inside* the transaction that makes it (see
:class:`~repro.cluster.queue.JobQueue`), so the log's order matches the
broker's serialised history.  Records are small flat dicts::

    {"ts": 1754640000.123456, "kind": "claim", "job": 7, "worker": "h:42"}

The log is append-only and never read by the queue itself — it exists
for humans and tooling: ``repro status --events`` shows the tail,
``repro tail QUEUE_DIR`` follows it live, and post-mortems grep it for
the lease-expiry/reclaim history of a crashed sweep.

Writes are single ``O_APPEND`` syscalls of whole lines, the same
atomicity argument as the checkpoint store's build log: concurrent
workers interleave *records*, never bytes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Iterator

__all__ = [
    "EVENTS_FILENAME",
    "append_events",
    "events_path",
    "follow_events",
    "format_event",
    "read_events",
]

#: File (inside a queue directory) holding one event record per line.
EVENTS_FILENAME = "events.jsonl"


def events_path(queue_dir: str | Path) -> Path:
    """Where a queue's event log lives."""
    return Path(queue_dir) / EVENTS_FILENAME


def append_events(queue_dir: str | Path, events: list[dict]) -> None:
    """Append ``events`` (one JSON line each) in a single atomic write."""
    if not events:
        return
    payload = "".join(
        json.dumps(event, sort_keys=True) + "\n" for event in events
    ).encode()
    fd = os.open(str(events_path(queue_dir)),
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def read_events(queue_dir: str | Path, limit: int | None = None,
                kinds: tuple[str, ...] | None = None) -> list[dict]:
    """The (filtered) tail of the event log, oldest first.

    ``limit`` keeps the last N matching records; ``kinds`` filters by
    the ``kind`` field.  An absent log is an empty history, not an
    error — a fresh queue simply has no events yet.
    """
    path = events_path(queue_dir)
    if not path.is_file():
        return []
    events = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        event = json.loads(line)
        if kinds is None or event.get("kind") in kinds:
            events.append(event)
    return events[-limit:] if limit is not None else events


def follow_events(queue_dir: str | Path, poll_s: float = 0.2,
                  from_start: bool = False,
                  stop: Callable[[], bool] | None = None) -> Iterator[dict]:
    """Yield event records as they are appended (``tail -f`` semantics).

    Starts at the end of the log unless ``from_start``; polls every
    ``poll_s`` seconds; returns when ``stop()`` goes true (runs forever
    without one — the CLI's ``repro tail`` leaves it to Ctrl-C).
    Partial lines (a writer mid-append) are left in the buffer until
    their newline arrives.
    """
    path = events_path(queue_dir)
    offset = 0 if from_start or not path.is_file() else path.stat().st_size
    buffer = ""
    while stop is None or not stop():
        size = path.stat().st_size if path.is_file() else 0
        if size < offset:  # truncated/rotated: start over
            offset, buffer = 0, ""
        if size > offset:
            with open(path, "r") as handle:
                handle.seek(offset)
                buffer += handle.read()
                offset = handle.tell()
            *lines, buffer = buffer.split("\n")
            for line in lines:
                if line.strip():
                    yield json.loads(line)
        else:
            time.sleep(poll_s)


def format_event(event: dict) -> str:
    """One human-readable log line for an event record."""
    ts = event.get("ts")
    stamp = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    kind = event.get("kind", "?")
    detail = " ".join(
        f"{key}={event[key]}"
        for key in sorted(event)
        if key not in ("ts", "kind") and event[key] is not None
    )
    return f"{stamp} {kind:<13s} {detail}"
