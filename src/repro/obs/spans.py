"""Phase/span tracing with Chrome-trace-event export.

The experiment pipeline — record pre-pass, checkpoint build, simulate,
save, submit, gather — is timed as *spans*: named wall-clock intervals
with arbitrary key/value args.  Spans serialise as Chrome trace events
(``"ph": "X"`` complete events, microsecond timestamps), so a trace
written by :func:`write_chrome_trace` loads directly into Perfetto or
``chrome://tracing`` and a queue sweep renders as one timeline lane per
worker (the worker id is the ``tid``).

Two producers share the format:

* :data:`SPANS`, the process-global :class:`SpanRecorder` — disabled
  by default; ``repro profile`` / ``repro trace`` enable it around a
  run and the runner's phases record into it.
* Cluster workers, which append one span record per executed job to
  ``<queue_dir>/spans.jsonl`` (:func:`append_span_record` — O_APPEND,
  one line per record, safe under concurrent writers like the queue's
  other logs).  ``repro trace QUEUE_DIR`` folds that file into a
  Chrome trace document.

Spans are wall-clock by nature (they measure the pipeline, not the
simulation) and never feed simulation state or artifacts.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = [
    "SPANS",
    "SpanRecorder",
    "append_span_record",
    "chrome_trace_document",
    "read_span_records",
    "span_record",
    "spans_path",
    "write_chrome_trace",
]

#: File (inside a queue directory) holding one span record per line.
SPANS_FILENAME = "spans.jsonl"


def span_record(name: str, start_s: float, dur_s: float, *, cat: str = "phase",
                pid: int | None = None, tid: str = "main",
                args: dict | None = None) -> dict:
    """One Chrome trace event (``ph: "X"``) from wall-clock seconds."""
    return {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": round(start_s * 1e6, 1),
        "dur": round(dur_s * 1e6, 1),
        "pid": os.getpid() if pid is None else pid,
        "tid": tid,
        "args": args or {},
    }


class SpanRecorder:
    """Collects spans; disabled (and therefore free) by default."""

    __slots__ = ("enabled", "records", "tid")

    def __init__(self, tid: str = "main") -> None:
        self.enabled = False
        self.records: list[dict] = []
        self.tid = tid

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records = []

    @contextmanager
    def span(self, name: str, cat: str = "phase", **args) -> Iterator[None]:
        """Record the block as one span (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start_s = time.time()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.records.append(span_record(
                name, start_s, time.perf_counter() - t0,
                cat=cat, tid=self.tid, args=args,
            ))

    def breakdown(self) -> list[tuple[str, float]]:
        """Total wall seconds per span name, longest first."""
        totals: dict[str, float] = {}
        for record in self.records:
            name = record["name"]
            totals[name] = totals.get(name, 0.0) + record["dur"] / 1e6
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<SpanRecorder {state} records={len(self.records)}>"


#: The process-global recorder the runner's phases report into.
SPANS = SpanRecorder()


# -- queue-side span log ---------------------------------------------------

def spans_path(queue_dir: str | Path) -> Path:
    """Where a queue's per-job span log lives."""
    return Path(queue_dir) / SPANS_FILENAME


def append_span_record(queue_dir: str | Path, record: dict) -> None:
    """Append one span record to the queue's span log (atomic line write)."""
    payload = (json.dumps(record, sort_keys=True) + "\n").encode()
    fd = os.open(str(spans_path(queue_dir)),
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def read_span_records(queue_dir: str | Path) -> list[dict]:
    """Every span record in the queue's span log (empty if none yet)."""
    path = spans_path(queue_dir)
    if not path.is_file():
        return []
    records = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# -- Chrome trace export ---------------------------------------------------

def chrome_trace_document(records: list[dict]) -> dict:
    """Wrap span records as a Chrome/Perfetto trace document."""
    return {
        "traceEvents": sorted(records, key=lambda r: (r["ts"], r["tid"])),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str | Path, records: list[dict]) -> Path:
    """Write ``records`` as Chrome trace JSON; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(chrome_trace_document(records), indent=1) + "\n")
    return out
