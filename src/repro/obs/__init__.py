"""Deterministic run telemetry.

Observability for the repro stack, in four pieces — all disabled by
default, all proven (by the byte-identity suite) to never perturb a
run's artifacts:

* :class:`~repro.obs.hub.MetricsHub` — sim-time counters, gauges and
  engine-scheduled periodic samplers producing deterministic time
  series of per-port queue depth, per-link utilisation, drops, and AQM
  marks.  The hot path (:mod:`repro.sim.port`) pays exactly one ``is
  None`` check per instrumented event while a hub is not attached.
* :class:`~repro.obs.spans.SpanRecorder` — wall-clock phase/span
  tracing around the experiment pipeline, exported as Chrome trace
  event JSON (loadable in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.events` — the cluster's append-only JSONL event log
  (claim/ack/fail/heartbeat/lease-expiry/reclaim), written by
  :class:`~repro.cluster.queue.JobQueue` inside its transactions and
  surfaced by ``repro status --events`` / ``repro tail``.
* :class:`~repro.obs.flight.FlightRecorder` — a bounded ring buffer of
  recent engine events for post-mortem of hung or crashed legs,
  attached to worker failure records and dumpable via ``SIGUSR1``.

The determinism contract is spelled out in ``docs/observability.md``:
sampler ticks ride the engine heap but are excluded from every
accounting surface, telemetry lives in the artifact's non-canonical
``obs`` section, and sampler callbacks must be pure readers (lint rule
``OBS-SAMPLER-PURE``).
"""

from repro.obs.events import (
    EVENTS_FILENAME,
    append_events,
    events_path,
    follow_events,
    format_event,
    read_events,
)
from repro.obs.flight import FlightRecorder
from repro.obs.hub import MetricsHub, active_metrics_hub, use_metrics_hub
from repro.obs.spans import (
    SPANS,
    SpanRecorder,
    append_span_record,
    chrome_trace_document,
    read_span_records,
    spans_path,
    write_chrome_trace,
)

__all__ = [
    "EVENTS_FILENAME",
    "FlightRecorder",
    "MetricsHub",
    "SPANS",
    "SpanRecorder",
    "active_metrics_hub",
    "append_events",
    "append_span_record",
    "chrome_trace_document",
    "events_path",
    "follow_events",
    "format_event",
    "read_events",
    "read_span_records",
    "spans_path",
    "use_metrics_hub",
    "write_chrome_trace",
]
