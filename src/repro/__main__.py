"""``python -m repro`` — regenerate the paper's artefacts from the shell."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
