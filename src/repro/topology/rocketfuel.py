"""A RocketFuel-scale ISP topology (83 routers, 131 core links).

The paper uses "a bigger Rocketfuel topology [29] (with 83 routers and 131
links in the core)" and notes that "half of the core links in the
Rocketfuel topology are set to have bandwidths smaller than the access
links" — the property that drives its replay difficulty.

The measured RocketFuel adjacency lists are not bundled with this
reproduction, so we synthesise a deterministic ISP-like graph with exactly
83 routers and 131 core links: a ring backbone (guaranteeing
connectivity) plus seeded preferential-attachment chords (reproducing the
hub-heavy degree skew of measured ISP maps).  Half the core links (by
deterministic index) run slower than the access links, matching the
paper's stated configuration.  See DESIGN.md substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.units import GBPS, MBPS, MILLISECONDS

__all__ = ["RocketFuelConfig", "build_rocketfuel"]


@dataclass(frozen=True, slots=True)
class RocketFuelConfig:
    """Parameters for :func:`build_rocketfuel`."""

    num_routers: int = 83
    num_core_links: int = 131
    num_hosts: int = 40
    access_bw: float = 1 * GBPS
    host_bw: float = 10 * GBPS
    core_bw_fast: float = 2.5 * GBPS
    core_bw_slow: float = 622 * MBPS     # OC-12, below the 1G access links
    core_prop: float = 2 * MILLISECONDS
    access_prop: float = 0.5 * MILLISECONDS
    host_prop: float = 0.05 * MILLISECONDS
    bandwidth_scale: float = 1.0
    seed: int = 42

    @property
    def bottleneck_bw(self) -> float:
        return (
            min(self.access_bw, self.host_bw, self.core_bw_fast, self.core_bw_slow)
            * self.bandwidth_scale
        )


def _chord_edges(cfg: RocketFuelConfig) -> list[tuple[int, int]]:
    """Ring + preferential-attachment chords, exactly ``num_core_links``."""
    n = cfg.num_routers
    edges = [(i, (i + 1) % n) for i in range(n)]
    present = {tuple(sorted(e)) for e in edges}
    rng = np.random.default_rng(cfg.seed)
    degree = np.full(n, 2.0)
    while len(edges) < cfg.num_core_links:
        u = int(rng.integers(n))
        weights = degree / degree.sum()
        v = int(rng.choice(n, p=weights))
        key = tuple(sorted((u, v)))
        if u == v or key in present:
            continue
        present.add(key)
        edges.append((u, v))
        degree[u] += 1
        degree[v] += 1
    return edges


def build_rocketfuel(config: RocketFuelConfig | None = None) -> Network:
    """Build the synthetic RocketFuel-like topology.

    Hosts attach to routers spread evenly around the backbone, each behind
    a 1 Gbps access link (mirroring the Internet2 setup): host ``h_<k>``
    hangs off router ``r_<k * num_routers // num_hosts>``.
    """
    cfg = config if config is not None else RocketFuelConfig()
    if cfg.num_core_links < cfg.num_routers:
        raise ConfigurationError(
            "need at least as many core links as routers for the ring backbone"
        )
    if cfg.num_hosts < 2 or cfg.num_hosts > cfg.num_routers:
        raise ConfigurationError("num_hosts must be in [2, num_routers]")
    scale = cfg.bandwidth_scale
    if scale <= 0:
        raise ConfigurationError(f"bandwidth_scale must be positive, got {scale!r}")

    net = Network()
    for i in range(cfg.num_routers):
        net.add_router(f"r_{i:02d}")
    for idx, (u, v) in enumerate(_chord_edges(cfg)):
        bw = cfg.core_bw_fast if idx % 2 == 0 else cfg.core_bw_slow
        net.add_link(f"r_{u:02d}", f"r_{v:02d}", bw * scale, cfg.core_prop)

    stride = cfg.num_routers // cfg.num_hosts
    for k in range(cfg.num_hosts):
        router = f"r_{(k * stride) % cfg.num_routers:02d}"
        edge = f"e_{k:02d}"
        host = f"h_{k:02d}"
        net.add_router(edge)
        net.add_link(router, edge, cfg.access_bw * scale, cfg.access_prop)
        net.add_host(host)
        net.add_link(edge, host, cfg.host_bw * scale, cfg.host_prop)
    return net
