"""Small canonical topologies for tests, examples, and the theory work.

* :func:`build_single_switch` — N senders, one switch, one receiver: the
  classic single-bottleneck gadget (one congestion point per packet).
* :func:`build_dumbbell` — N sender hosts, two switches joined by a
  bottleneck, N receiver hosts: at most two congestion points per packet
  when each host terminates one flow (the regime of the LSTF ≤ 2 theorem).
* :func:`build_parking_lot` — a chain of switches with per-hop on/off
  ramps: packets can hit three or more congestion points.
* :func:`build_linear` — a bare host-switch-...-switch-host chain.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.units import MBPS

__all__ = [
    "build_dumbbell",
    "build_linear",
    "build_parking_lot",
    "build_single_switch",
]


def build_single_switch(
    num_senders: int = 4,
    host_bw: float = 100 * MBPS,
    bottleneck_bw: float = 10 * MBPS,
    prop: float = 1e-5,
) -> Network:
    """``s_i -> SW -> sink``: exactly one shared congestion point."""
    if num_senders < 1:
        raise ConfigurationError("need at least one sender")
    net = Network()
    net.add_router("SW")
    net.add_host("sink")
    net.add_link("SW", "sink", bottleneck_bw, prop)
    for i in range(num_senders):
        name = f"s_{i}"
        net.add_host(name)
        net.add_link(name, "SW", host_bw, prop)
    return net


def build_dumbbell(
    num_pairs: int = 4,
    host_bw: float = 100 * MBPS,
    bottleneck_bw: float = 50 * MBPS,
    prop: float = 1e-5,
) -> Network:
    """``s_i -> L -> R -> d_i`` with a shared L-R bottleneck."""
    if num_pairs < 1:
        raise ConfigurationError("need at least one host pair")
    net = Network()
    net.add_router("L")
    net.add_router("R")
    net.add_link("L", "R", bottleneck_bw, prop)
    for i in range(num_pairs):
        src, dst = f"s_{i}", f"d_{i}"
        net.add_host(src)
        net.add_host(dst)
        net.add_link(src, "L", host_bw, prop)
        net.add_link("R", dst, host_bw, prop)
    return net


def build_parking_lot(
    num_hops: int = 3,
    host_bw: float = 100 * MBPS,
    core_bw: float = 10 * MBPS,
    prop: float = 1e-5,
) -> Network:
    """A chain ``SW_0 - SW_1 - ... - SW_n`` with a host pair per switch.

    Long flows (``h_in_0`` to ``h_out_<n>``) cross every inter-switch link
    and can queue at each one — the ≥ 3 congestion point regime where LSTF
    replay can fail (§2.2).
    """
    if num_hops < 1:
        raise ConfigurationError("need at least one hop")
    net = Network()
    for i in range(num_hops + 1):
        net.add_router(f"SW_{i}")
        h_in, h_out = f"h_in_{i}", f"h_out_{i}"
        net.add_host(h_in)
        net.add_host(h_out)
        net.add_link(h_in, f"SW_{i}", host_bw, prop)
        net.add_link(f"SW_{i}", h_out, host_bw, prop)
    for i in range(num_hops):
        net.add_link(f"SW_{i}", f"SW_{i+1}", core_bw, prop)
    return net


def build_linear(
    num_switches: int = 2,
    bw: float = 10 * MBPS,
    prop: float = 1e-5,
) -> Network:
    """``src -> SW_0 -> ... -> SW_<n-1> -> dst`` with uniform links."""
    if num_switches < 1:
        raise ConfigurationError("need at least one switch")
    net = Network()
    net.add_host("src")
    net.add_host("dst")
    for i in range(num_switches):
        net.add_router(f"SW_{i}")
    net.add_link("src", "SW_0", bw, prop)
    for i in range(num_switches - 1):
        net.add_link(f"SW_{i}", f"SW_{i+1}", bw, prop)
    net.add_link(f"SW_{num_switches - 1}", "dst", bw, prop)
    return net
