"""The simplified Internet-2 topology of §2.3.

"A simplified Internet-2 topology, identical to the one used in [21]
(consisting of 10 routers and 16 links in the core).  We connect each core
router to 10 edge routers using 1Gbps links and each edge router is
attached to an end host via a 10Gbps link."  Hop counts per packet fall in
4–7 excluding end hosts.

We lay out ten Abilene-style core routers with sixteen core links.  The
real Internet2 backbone mixes circuit speeds; following the paper's
observation that in the 10G-10G variant "both the access and edge links
have a higher bandwidth than most core links", half the core links run at
``core_bw_slow`` and half at ``core_bw_fast``.

The paper's three bandwidth variants map to configs:

* ``I2 1Gbps-10Gbps`` (default): ``access_bw=1G``, ``host_bw=10G``
* ``I2 1Gbps-1Gbps``: ``host_bw=1G``
* ``I2 10Gbps-10Gbps``: ``access_bw=10G``

``bandwidth_scale`` scales *every* link, preserving all ratios (and hence
utilisation and scheduling behaviour) while shrinking the packet-event
count to laptop scale — see DESIGN.md substitutions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.units import GBPS, MILLISECONDS

__all__ = ["Internet2Config", "build_internet2"]

#: Ten core routers, named after Abilene/Internet2 points of presence.
CORE_ROUTERS = (
    "SEAT", "SUNN", "LOSA", "SALT", "DENV",
    "KANS", "HOUS", "CHIC", "ATLA", "WASH",
)

#: Sixteen core links.  The first eight run at ``core_bw_fast``; the rest
#: at ``core_bw_slow`` (deterministic assignment in listed order).
CORE_LINKS = (
    ("SEAT", "SUNN"), ("SEAT", "SALT"), ("SUNN", "LOSA"), ("SUNN", "SALT"),
    ("LOSA", "SALT"), ("LOSA", "HOUS"), ("SALT", "DENV"), ("DENV", "KANS"),
    ("KANS", "HOUS"), ("KANS", "CHIC"), ("HOUS", "ATLA"), ("CHIC", "ATLA"),
    ("CHIC", "WASH"), ("ATLA", "WASH"), ("SEAT", "DENV"), ("SUNN", "HOUS"),
)


@dataclass(frozen=True, slots=True)
class Internet2Config:
    """Parameters for :func:`build_internet2`."""

    edges_per_core: int = 10
    hosts_per_edge: int = 1
    access_bw: float = 1 * GBPS     # edge router <-> core router
    host_bw: float = 10 * GBPS      # host <-> edge router
    core_bw_fast: float = 10 * GBPS
    core_bw_slow: float = 2.5 * GBPS
    core_prop: float = 5 * MILLISECONDS
    access_prop: float = 1 * MILLISECONDS
    host_prop: float = 0.05 * MILLISECONDS
    bandwidth_scale: float = 1.0

    def scaled(self, factor: float) -> "Internet2Config":
        """A copy with every bandwidth multiplied by ``factor``."""
        return replace(self, bandwidth_scale=self.bandwidth_scale * factor)

    @property
    def bottleneck_bw(self) -> float:
        """The slowest link — sets the overdue threshold ``T`` (§2.3)."""
        return (
            min(self.access_bw, self.host_bw, self.core_bw_fast, self.core_bw_slow)
            * self.bandwidth_scale
        )


def build_internet2(config: Internet2Config | None = None) -> Network:
    """Build the Internet2 topology; hosts are named ``h_<core>_<i>_<j>``."""
    cfg = config if config is not None else Internet2Config()
    if cfg.edges_per_core < 1 or cfg.hosts_per_edge < 1:
        raise ConfigurationError("edges_per_core and hosts_per_edge must be >= 1")
    scale = cfg.bandwidth_scale
    if scale <= 0:
        raise ConfigurationError(f"bandwidth_scale must be positive, got {scale!r}")

    net = Network()
    for name in CORE_ROUTERS:
        net.add_router(name)
    for idx, (a, b) in enumerate(CORE_LINKS):
        bw = cfg.core_bw_fast if idx < len(CORE_LINKS) // 2 else cfg.core_bw_slow
        net.add_link(a, b, bw * scale, cfg.core_prop)

    for core in CORE_ROUTERS:
        for i in range(cfg.edges_per_core):
            edge = f"e_{core}_{i}"
            net.add_router(edge)
            net.add_link(core, edge, cfg.access_bw * scale, cfg.access_prop)
            for j in range(cfg.hosts_per_edge):
                host = f"h_{core}_{i}_{j}"
                net.add_host(host)
                net.add_link(edge, host, cfg.host_bw * scale, cfg.host_prop)
    return net
