"""Topology builders.

Each builder returns a fresh :class:`~repro.sim.network.Network`; calling
it twice gives two independent networks with identical structure, which is
exactly what record/replay needs (the replay must start from empty queues
on the same topology).
"""

from repro.topology.internet2 import Internet2Config, build_internet2
from repro.topology.rocketfuel import RocketFuelConfig, build_rocketfuel
from repro.topology.fattree import FatTreeConfig, build_fattree
from repro.topology.simple import (
    build_dumbbell,
    build_linear,
    build_parking_lot,
    build_single_switch,
)

__all__ = [
    "FatTreeConfig",
    "Internet2Config",
    "RocketFuelConfig",
    "build_dumbbell",
    "build_fattree",
    "build_internet2",
    "build_linear",
    "build_parking_lot",
    "build_rocketfuel",
    "build_single_switch",
]
