"""k-ary fat-tree datacenter topology.

"A full bisection bandwidth datacenter fat-tree topology from [3] (with
10Gbps links)" — the pFabric evaluation fabric.  Standard construction:
``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches,
``(k/2)^2`` core switches, ``k/2`` hosts per edge switch, every link at
the same bandwidth (full bisection).

Routing here is deterministic shortest path (no ECMP hashing); with a
single path per src/dst pair the replay machinery applies unchanged, and
the paper's replay results do not depend on multipath.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.units import GBPS, MICROSECONDS

__all__ = ["FatTreeConfig", "build_fattree"]


@dataclass(frozen=True, slots=True)
class FatTreeConfig:
    """Parameters for :func:`build_fattree`."""

    k: int = 4
    link_bw: float = 10 * GBPS
    link_prop: float = 1 * MICROSECONDS
    host_prop: float = 0.5 * MICROSECONDS
    bandwidth_scale: float = 1.0

    @property
    def num_hosts(self) -> int:
        return self.k**3 // 4

    @property
    def bottleneck_bw(self) -> float:
        return self.link_bw * self.bandwidth_scale


def build_fattree(config: FatTreeConfig | None = None) -> Network:
    """Build a k-ary fat tree; hosts are named ``h_<pod>_<edge>_<i>``."""
    cfg = config if config is not None else FatTreeConfig()
    k = cfg.k
    if k < 2 or k % 2:
        raise ConfigurationError(f"fat-tree arity must be even and >= 2, got {k}")
    scale = cfg.bandwidth_scale
    if scale <= 0:
        raise ConfigurationError(f"bandwidth_scale must be positive, got {scale!r}")
    bw = cfg.link_bw * scale
    half = k // 2

    net = Network()
    cores = [f"c_{i}_{j}" for i in range(half) for j in range(half)]
    for name in cores:
        net.add_router(name)

    for pod in range(k):
        aggs = [f"a_{pod}_{i}" for i in range(half)]
        edges = [f"e_{pod}_{i}" for i in range(half)]
        for name in aggs + edges:
            net.add_router(name)
        for agg in aggs:
            for edge in edges:
                net.add_link(agg, edge, bw, cfg.link_prop)
        # Aggregation switch i connects to core row i.
        for i, agg in enumerate(aggs):
            for j in range(half):
                net.add_link(f"c_{i}_{j}", agg, bw, cfg.link_prop)
        for e_idx, edge in enumerate(edges):
            for h in range(half):
                host = f"h_{pod}_{e_idx}_{h}"
                net.add_host(host)
                net.add_link(edge, host, bw, cfg.host_prop)
    return net
