"""Units, conversions, and shared constants.

Conventions used throughout the package (documented in DESIGN.md §5):

* **time** — ``float`` seconds,
* **bandwidth** — bits per second,
* **packet / flow sizes** — bytes.

A packet of ``size`` bytes sent on a link of bandwidth ``bw`` occupies the
transmitter for ``8 * size / bw`` seconds and is available at the next node
(store-and-forward) one propagation delay after its *last* bit left.
"""

from __future__ import annotations

import math

# --- bandwidth -----------------------------------------------------------

BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

# --- time ----------------------------------------------------------------

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

# --- sizes ---------------------------------------------------------------

BYTE = 1
KB = 1_000
MB = 1_000_000

#: Default maximum transmission unit, bytes (Ethernet payload convention
#: used by the paper's ns-2 setup).
MTU = 1500

#: Size of a (pure) TCP acknowledgement, bytes.
ACK_SIZE = 40

#: Tolerance used when comparing simulation timestamps for equality.  One
#: nanosecond is far below any transmission time we simulate, so it absorbs
#: float rounding without masking genuine lateness.
TIME_EPSILON = 1e-9

#: Stands in for "no deadline / unbounded slack" in packet headers.
INFINITY = math.inf


def tx_time(size_bytes: float, bandwidth_bps: float) -> float:
    """Transmission (serialisation) delay of ``size_bytes`` on a link.

    >>> tx_time(1500, 1e9) * 1e6   # a full MTU at 1 Gbps, in microseconds
    12.0
    """
    if bandwidth_bps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes!r}")
    if math.isinf(bandwidth_bps):
        return 0.0
    return 8.0 * size_bytes / bandwidth_bps


def bits(size_bytes: float) -> float:
    """Convert bytes to bits."""
    return 8.0 * size_bytes


def packets_for(flow_bytes: int, mtu: int = MTU) -> int:
    """Number of MTU-sized segments needed to carry ``flow_bytes``.

    Always at least one packet, matching how the workload generators
    segment flows.

    >>> packets_for(4000)
    3
    >>> packets_for(0)
    1
    """
    if flow_bytes <= 0:
        return 1
    return -(-flow_bytes // mtu)  # ceil division


def almost_leq(a: float, b: float, eps: float = TIME_EPSILON) -> bool:
    """``a <= b`` with a float guard band (replay condition o'(p) <= o(p))."""
    return a <= b + eps
