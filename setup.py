"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments whose
setuptools cannot do PEP 660 editable installs (no ``wheel`` package).
All real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Universal Packet Scheduling' (NSDI 2016): LSTF "
        "replay and practical objectives on a from-scratch discrete-event "
        "network simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
