"""The documentation lint runs clean (same check as the CI docs job)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_docs_links_and_paper_map_are_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "docs" / "check_docs.py")],
        capture_output=True, text=True, env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "docs OK" in proc.stdout
