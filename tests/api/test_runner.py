"""Runner + artifacts: parallel determinism, persistence, CLI parity."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentSpec, RunArtifact, load_artifact, run, run_many
from repro.errors import ConfigurationError

TINY_TABLE1 = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})


def test_run_wraps_driver_output_into_an_artifact():
    artifact = run(TINY_TABLE1)
    assert artifact.spec == TINY_TABLE1
    assert artifact.title.startswith("Table 1")
    assert artifact.headers[0] == "scenario"
    assert len(artifact.rows) == 1
    assert artifact.wall_time_s > 0
    # raw cells are JSON scalars, not formatted strings
    assert isinstance(artifact.rows[0][1], int)
    json.dumps(artifact.to_dict())  # serialisable as-is


def test_run_is_deterministic_regardless_of_prior_runs():
    first = run(TINY_TABLE1)
    run(ExperimentSpec("gadgets"))  # perturb global packet-id state
    second = run(TINY_TABLE1)
    assert first.canonical_json() == second.canonical_json()


def test_run_many_parallel_matches_serial_byte_for_byte():
    """The determinism guard: worker processes change nothing."""
    specs = ExperimentSpec("table1", duration=0.04, seeds=(1, 2),
                           options={"rows": (0,)}).sweep()
    serial = run_many(specs, workers=1)
    parallel = run_many(specs, workers=2)
    assert len(serial) == len(parallel) == 2
    assert [a.canonical_json() for a in serial] == [
        a.canonical_json() for a in parallel
    ]
    # different seeds really did produce different runs
    assert serial[0].canonical_json() != serial[1].canonical_json()


def test_slack_policy_reaches_the_driver():
    """spec.slack_policy is applied, not just recorded: overriding LSTF's
    flow-size heuristic with a constant slack changes the FCT result."""
    base = ExperimentSpec("fig2", duration=0.05, schedulers=("lstf",))
    default = run(base)
    constant = run(base.with_(slack_policy="constant"))
    assert default.rows != constant.rows
    assert constant.metadata["slack_policy"] == "constant"


def test_run_rejects_options_the_driver_does_not_read():
    """An option no driver reads must fail loudly, not vanish."""
    with pytest.raises(ConfigurationError, match="does not read"):
        run(ExperimentSpec("fig1", duration=0.04, options={"rows": (0,)}))
    with pytest.raises(ConfigurationError, match="accepted: rows"):
        run(ExperimentSpec("table1", duration=0.04, options={"warp": 9}))


def test_run_many_rejects_bad_worker_count():
    with pytest.raises(ConfigurationError):
        run_many([TINY_TABLE1], workers=0)


def test_artifact_save_and_load_round_trip(tmp_path):
    artifact = run(ExperimentSpec("gadgets"))
    path = artifact.save(tmp_path)
    assert path.parent == tmp_path
    loaded = load_artifact(path)
    assert loaded.spec == artifact.spec
    assert loaded.rows == artifact.rows
    assert loaded.canonical_json() == artifact.canonical_json()
    assert loaded.wall_time_s == pytest.approx(artifact.wall_time_s)
    # deterministic filename: saving again overwrites, not duplicates
    assert artifact.save(tmp_path) == path
    assert len(list(tmp_path.iterdir())) == 1


def test_artifact_rejects_unknown_version():
    artifact = run(ExperimentSpec("gadgets"))
    data = artifact.to_dict()
    data["version"] = 99
    with pytest.raises(ConfigurationError):
        RunArtifact.from_dict(data)


def test_artifact_table_renders_like_the_driver_table():
    artifact = run(ExperimentSpec("gadgets"))
    rendered = artifact.table().render()
    assert "Figure 6" in rendered and "Figure 5" in rendered
    assert "False" not in rendered  # every claim holds
    # the JSON view carries the same rows as the ASCII view
    payload = json.loads(artifact.table().to_json())
    assert payload["rows"] == artifact.rows
