"""Registry: registration rules, lookup, and completeness.

The completeness test is the important one: every registered experiment
must actually run end-to-end from a tiny declarative spec — no driver
can rot behind the registry without this suite noticing.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, REGISTRY, get, run
from repro.api.registry import ExperimentRegistry
from repro.errors import ConfigurationError

EXPECTED = {
    "table1", "fig1", "fig2", "fig3", "fig4", "gadgets", "info", "weighted",
    "bench",  # substrate micro-benchmarks (PR 2), not a paper artefact
    "branch",  # branch-from-checkpoint sweeps (PR 7), not a paper artefact
    "scenario-matrix",  # declarative scenario sweeps (PR 10)
}

# Per-experiment overrides that keep each run to a fraction of a second
# while still exercising the full driver path.
TINY = {
    "table1": dict(duration=0.04, options={"rows": (0,)}),
    "fig1": dict(duration=0.04, schedulers=("fifo",)),
    "fig2": dict(duration=0.05, schedulers=("fifo",)),
    "fig3": dict(duration=0.05, schedulers=("fifo",)),
    "fig4": dict(
        schedulers=("fifo",),
        options={"rest_fractions": (1.0,), "horizon": 0.4, "num_flows": 3},
    ),
    "weighted": dict(schedulers=("lstf",), options={"horizon": 0.4}),
    "info": dict(duration=0.04, options={"steps_in_t": (0.0, 4.0)}),
    "gadgets": dict(),
    "bench": dict(
        duration=0.005,
        schedulers=("fifo", "lstf"),
        options={"events": 500, "packets": 200, "repeats": 1},
    ),
    "branch": dict(duration=0.01, options={"warmup": 0.02}),
    "scenario-matrix": dict(
        duration=0.006, schedulers=("fifo",), scenarios=("websearch-incast",),
    ),
}


def test_every_paper_artefact_is_registered():
    assert set(REGISTRY.names()) == EXPECTED


def test_expected_tiny_overrides_cover_registry():
    assert set(TINY) == set(REGISTRY.names())


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_registered_experiment_runs_from_a_tiny_spec(name):
    artifact = run(ExperimentSpec(name, **TINY[name]))
    assert artifact.spec.experiment == name
    assert artifact.headers
    assert artifact.rows, f"{name} produced no rows"
    assert all(len(row) == len(artifact.headers) for row in artifact.rows)
    assert artifact.wall_time_s > 0


def test_get_resolves_and_rejects():
    assert get("table1").name == "table1"
    assert "table1" in REGISTRY
    assert "nosuch" not in REGISTRY
    with pytest.raises(ConfigurationError):
        get("nosuch")


def test_duplicate_registration_rejected():
    registry = ExperimentRegistry()

    @registry.register("demo", help="x", aliases=("demo2",))
    def _demo(spec):
        raise AssertionError("never run")

    for clash in ("demo", "demo2"):
        with pytest.raises(ConfigurationError):
            registry.register(clash)(lambda spec: None)
    assert registry.get("demo2").name == "demo"
