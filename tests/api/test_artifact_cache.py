"""Content-addressed artifact cache + the CSV/bench surfaces of PR 2."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.api import (
    ExperimentSpec,
    RunArtifact,
    cached_artifact,
    load_artifact,
    run,
    run_many,
    spec_run_id,
)
from repro.cli import main

TINY = ExperimentSpec("table1", duration=0.04, options={"rows": (0,)})


def _hammer_save(payload: dict, out_dir: str, barrier) -> None:
    """Child-process body for the save-race test: save the same artifact
    many times, synchronised so the writes genuinely interleave."""
    artifact = RunArtifact.from_dict(payload)
    barrier.wait(timeout=10)
    for _ in range(50):
        artifact.save(out_dir)


class TestArtifactCache:
    def test_second_run_is_answered_from_cache(self, tmp_path):
        first = run(TINY, out_dir=tmp_path)
        assert not first.from_cache
        assert (tmp_path / f"{spec_run_id(TINY)}.json").is_file()
        second = run(TINY, out_dir=tmp_path)
        assert second.from_cache
        assert second.canonical_json() == first.canonical_json()
        # the cache returns the *saved* timing, not a fresh one
        assert second.wall_time_s == pytest.approx(first.wall_time_s)

    def test_force_resimulates_and_overwrites(self, tmp_path):
        run(TINY, out_dir=tmp_path)
        forced = run(TINY, out_dir=tmp_path, force=True)
        assert not forced.from_cache
        # the overwritten file carries the forced run's timings
        saved = load_artifact(tmp_path / f"{spec_run_id(TINY)}.json")
        assert saved.wall_time_s == pytest.approx(forced.wall_time_s)

    def test_different_spec_misses_the_cache(self, tmp_path):
        run(TINY, out_dir=tmp_path)
        other = TINY.with_(seeds=(2,))
        assert cached_artifact(other, tmp_path) is None
        assert not run(other, out_dir=tmp_path).from_cache

    def test_corrupt_cache_entry_falls_through_to_a_fresh_run(self, tmp_path):
        path = tmp_path / f"{spec_run_id(TINY)}.json"
        path.write_text("{not json")
        artifact = run(TINY, out_dir=tmp_path)
        assert not artifact.from_cache
        load_artifact(path)  # the fresh run healed the cache entry

    def test_malformed_cache_payload_is_a_miss_not_a_crash(self, tmp_path):
        artifact = run(TINY)
        payload = artifact.to_dict()
        payload["rows"] = [1, 2]  # non-list rows: from_dict raises TypeError
        path = tmp_path / f"{spec_run_id(TINY)}.json"
        path.write_text(json.dumps(payload))
        assert cached_artifact(TINY, tmp_path) is None
        assert not run(TINY, out_dir=tmp_path).from_cache

    def test_stale_entry_with_mismatched_spec_is_a_miss(self, tmp_path):
        artifact = run(TINY)
        payload = artifact.to_dict()
        payload["spec"]["duration"] = 0.05  # hand-edited / collided file
        path = tmp_path / f"{spec_run_id(TINY)}.json"
        path.write_text(json.dumps(payload))
        assert cached_artifact(TINY, tmp_path) is None

    def test_run_many_mixes_cache_hits_and_fresh_runs(self, tmp_path):
        sweep = ExperimentSpec(
            "table1", duration=0.04, seeds=(1, 2), options={"rows": (0,)}
        ).sweep()
        run(sweep[0], out_dir=tmp_path)  # warm one of the two
        artifacts = run_many(sweep, out_dir=tmp_path)
        assert [a.from_cache for a in artifacts] == [True, False]
        # the whole sweep is now warm, workers included
        warm = run_many(sweep, workers=2, out_dir=tmp_path)
        assert all(a.from_cache for a in warm)

    def test_without_out_dir_nothing_is_cached(self):
        artifact = run(TINY)
        assert not artifact.from_cache

    def test_truncated_cache_entry_falls_through_to_a_fresh_run(self, tmp_path):
        """A torn write (e.g. a crashed saver without atomic replace) must
        read as a miss, then be healed by the fresh run's save."""
        first = run(TINY, out_dir=tmp_path)
        path = tmp_path / f"{spec_run_id(TINY)}.json"
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # cut mid-JSON
        assert cached_artifact(TINY, tmp_path) is None
        healed = run(TINY, out_dir=tmp_path)
        assert not healed.from_cache
        assert load_artifact(path).canonical_json() == first.canonical_json()

    def test_save_is_atomic_no_temp_droppings_and_readable_payload(self, tmp_path):
        artifact = run(TINY)
        path = artifact.save(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == [path.name]
        assert load_artifact(path).canonical_json() == artifact.canonical_json()
        # umask-default permissions, not mkstemp's 0600 — a shared store
        # must stay readable by other workers' users
        umask = os.umask(0)
        os.umask(umask)
        assert path.stat().st_mode & 0o777 == 0o666 & ~umask

    def test_racing_savers_of_one_run_id_leave_a_valid_artifact(self, tmp_path):
        """Two processes hammering save() on the same run-id must never
        expose a torn file: every concurrent read parses, and the final
        bytes are one complete artifact."""
        artifact = run(TINY)
        payload = artifact.to_dict()
        path = tmp_path / f"{spec_run_id(TINY)}.json"
        barrier = multiprocessing.Barrier(2)
        workers = [
            multiprocessing.Process(
                target=_hammer_save, args=(payload, str(tmp_path), barrier)
            )
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        failures = 0
        deadline = time.monotonic() + 10
        while any(p.is_alive() for p in workers) and time.monotonic() < deadline:
            try:
                load_artifact(path)  # concurrent reader: never a torn JSON
            except FileNotFoundError:
                pass  # not written yet
            except ValueError:
                failures += 1
        for proc in workers:
            proc.join(timeout=10)
            assert proc.exitcode == 0
        assert failures == 0
        assert load_artifact(path).canonical_json() == artifact.canonical_json()
        assert [p.name for p in tmp_path.iterdir()] == [path.name]


class TestEngineAccounting:
    def test_event_count_is_deterministic_metadata(self):
        first, second = run(TINY), run(TINY)
        assert first.metadata["engine_events"] > 0
        assert first.metadata["engine_events"] == second.metadata["engine_events"]

    def test_events_per_sec_lives_in_timings_not_canonical_json(self):
        artifact = run(TINY)
        assert artifact.events_per_sec > 0
        assert "events_per_sec" in artifact.to_dict()["timings"]
        assert "events_per_sec" not in artifact.canonical_json()

    def test_round_trip_preserves_throughput(self, tmp_path):
        artifact = run(TINY, out_dir=tmp_path)
        loaded = load_artifact(tmp_path / f"{spec_run_id(TINY)}.json")
        assert loaded.events_per_sec == pytest.approx(artifact.events_per_sec)


class TestCliSurfaces:
    def test_csv_flag_emits_the_table_as_csv(self, capsys):
        assert main(["run", "gadgets", "--csv"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.count(",") >= 2
        assert "|" not in out  # not the ASCII renderer

    def test_csv_and_json_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "gadgets", "--csv", "--json"])

    def test_out_flag_reports_cached_on_second_invocation(self, tmp_path, capsys):
        assert main(["run", "gadgets", "--out", str(tmp_path)]) == 0
        assert "wrote" in capsys.readouterr().err
        assert main(["run", "gadgets", "--out", str(tmp_path)]) == 0
        assert "cached" in capsys.readouterr().err
        assert main(["run", "gadgets", "--out", str(tmp_path), "--force"]) == 0
        assert "wrote" in capsys.readouterr().err

    def test_bench_experiment_runs_from_a_tiny_spec(self):
        artifact = run(
            ExperimentSpec(
                "bench",
                duration=0.005,
                schedulers=("fifo",),
                options={"events": 300, "packets": 100, "repeats": 1},
            )
        )
        names = [row[0] for row in artifact.rows]
        assert names[:3] == ["engine-chain", "engine-fan", "engine-defer"]
        assert "sched-fifo" in names and "e2e-fig2" in names
        assert artifact.metadata["bench_schema_version"] == 1
        assert all(row[4] > 0 for row in artifact.rows)  # ops_per_sec
