"""ExperimentSpec: validation, sweeps, and lossless JSON round-trips."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import ExperimentSpec
from repro.errors import ConfigurationError

option_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

specs = st.builds(
    ExperimentSpec,
    experiment=st.sampled_from(["table1", "fig1", "fig2", "fig3", "custom"]),
    name=st.text(max_size=16),
    schedulers=st.lists(st.sampled_from(["fifo", "fq", "sjf", "lstf"]), max_size=3).map(tuple),
    topology=st.sampled_from(["i2-1g-10g", "rocketfuel", "fattree"]),
    utilization=st.floats(min_value=0.05, max_value=0.95),
    duration=st.floats(min_value=1e-3, max_value=10.0),
    seeds=st.lists(st.integers(min_value=0, max_value=2**31), min_size=1, max_size=4).map(tuple),
    bandwidth_scale=st.floats(min_value=1e-4, max_value=1.0),
    slack_policy=st.one_of(
        st.none(),
        st.sampled_from(["constant", "constant:0.5", "flow-size:2", "virtual-clock:1e6"]),
    ),
    replay_modes=st.lists(
        st.sampled_from(["lstf", "lstf-preemptive", "edf", "priority", "omniscient"]),
        max_size=2,
    ).map(tuple),
    options=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(option_scalars, st.lists(option_scalars, max_size=3).map(tuple)),
        max_size=3,
    ),
)


@settings(max_examples=200, deadline=None)
@given(spec=specs)
def test_json_round_trip_is_lossless(spec: ExperimentSpec):
    """to_dict -> json -> from_dict reproduces the spec exactly."""
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ExperimentSpec.from_dict(wire) == spec


def test_defaults_and_accessors():
    spec = ExperimentSpec("table1")
    assert spec.label == "table1"
    assert spec.seed == 1
    assert spec.option("rows") is None
    assert spec.option("rows", ()) == ()
    named = spec.with_(name="row zero", options={"rows": (0,)})
    assert named.label == "row zero"
    assert named.option("rows") == (0,)
    assert spec.option("rows") is None  # frozen: original untouched


def test_options_accept_mapping_and_are_canonicalised():
    a = ExperimentSpec("t", options={"b": 2, "a": 1})
    b = ExperimentSpec("t", options={"a": 1, "b": 2})
    assert a == b
    assert hash(a) == hash(b)
    assert a.options == (("a", 1), ("b", 2))


def test_validation_rejects_bad_specs():
    with pytest.raises(ConfigurationError):
        ExperimentSpec("")
    with pytest.raises(ConfigurationError):
        ExperimentSpec("t", seeds=())
    with pytest.raises(ConfigurationError):
        ExperimentSpec("t", duration=0.0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec("t", bandwidth_scale=-1.0)
    with pytest.raises(ConfigurationError):
        ExperimentSpec("t", options={"nested": {"not": "flat"}})


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError):
        ExperimentSpec.from_dict({"experiment": "t", "warp": 9})


def test_sweep_expands_seeds_and_schedulers():
    spec = ExperimentSpec("fig3", seeds=(1, 2), schedulers=("fifo", "fifo+"))
    by_seed = spec.sweep()
    assert [s.seeds for s in by_seed] == [(1,), (2,)]
    assert all(s.schedulers == ("fifo", "fifo+") for s in by_seed)
    full = spec.sweep(schedulers=("fifo", "fifo+"))
    assert len(full) == 4
    assert {(s.seed, s.schedulers) for s in full} == {
        (1, ("fifo",)), (1, ("fifo+",)), (2, ("fifo",)), (2, ("fifo+",)),
    }


def test_sweep_expands_replay_modes_innermost():
    """Mode legs come out adjacent, so legs sharing one recorded schedule
    sit next to each other in the sweep."""
    spec = ExperimentSpec(
        "table1", seeds=(1, 2), replay_modes=("lstf", "priority")
    )
    legs = spec.sweep()
    assert [(s.seed, s.replay_mode) for s in legs] == [
        (1, "lstf"), (1, "priority"), (2, "lstf"), (2, "priority"),
    ]
    assert all(len(s.replay_modes) == 1 for s in legs)


def test_replay_mode_accessor_defaults_to_lstf():
    assert ExperimentSpec("table1").replay_mode == "lstf"
    assert ExperimentSpec("table1").replay_modes == ()
    spec = ExperimentSpec("table1", replay_modes=("edf", "priority"))
    assert spec.replay_mode == "edf"
    assert spec.sweep(replay_modes=("omniscient",))[0].replay_mode == "omniscient"


def test_replay_modes_validated_at_construction():
    with pytest.raises(ConfigurationError, match="unknown replay mode"):
        ExperimentSpec("table1", replay_modes=("lstf", "clairvoyant"))


def test_replay_modes_round_trip():
    spec = ExperimentSpec("table1", replay_modes=("lstf", "edf-preemptive"))
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ExperimentSpec.from_dict(wire) == spec
    assert ExperimentSpec.from_dict(wire).replay_modes == ("lstf", "edf-preemptive")


def test_scenarios_round_trip():
    spec = ExperimentSpec(
        "scenario-matrix", scenarios=("websearch-incast", "datamining-a2a")
    )
    wire = json.loads(json.dumps(spec.to_dict()))
    assert ExperimentSpec.from_dict(wire) == spec
    assert ExperimentSpec.from_dict(wire).scenarios == (
        "websearch-incast", "datamining-a2a",
    )


def test_sweep_expands_scenarios_outermost():
    """Scenario legs group together so a sweep reads scenario-by-scenario."""
    spec = ExperimentSpec(
        "scenario-matrix",
        seeds=(1, 2),
        scenarios=("websearch-incast", "pareto-burst"),
    )
    legs = spec.sweep()
    assert [(s.scenario, s.seed) for s in legs] == [
        ("websearch-incast", 1), ("websearch-incast", 2),
        ("pareto-burst", 1), ("pareto-burst", 2),
    ]
    assert all(len(s.scenarios) == 1 for s in legs)


def test_scenario_accessor_defaults_to_websearch_incast():
    assert ExperimentSpec("scenario-matrix").scenario == "websearch-incast"
    assert ExperimentSpec("scenario-matrix").scenarios == ()
    spec = ExperimentSpec(
        "scenario-matrix", scenarios=("pareto-burst", "datamining-a2a")
    )
    assert spec.scenario == "pareto-burst"
    assert spec.sweep(scenarios=("internet-permutation",))[0].scenario == (
        "internet-permutation"
    )


def test_scenarios_validated_at_construction():
    with pytest.raises(ConfigurationError, match="unknown scenario"):
        ExperimentSpec("scenario-matrix", scenarios=("websearch-incast", "warp"))
