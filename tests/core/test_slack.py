"""Unit tests for the slack algebra (Appendix A/D)."""

from __future__ import annotations

import pytest

from repro.core.slack import initialize_replay_slack, replay_slack
from repro.errors import ReplayError
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _chain():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("R1")
    net.add_router("R2")
    net.add_link("a", "R1", 8 * MBPS, 0.001)   # 1000B: 1ms, +1ms prop
    net.add_link("R1", "R2", 4 * MBPS, 0.002)  # 1000B: 2ms, +2ms prop
    net.add_link("R2", "b", 8 * MBPS, 0.001)   # 1000B: 1ms, +1ms prop
    return net


def test_replay_slack_is_output_minus_input_minus_tmin():
    net = _chain()
    tmin = net.tmin("a", "b", 1000)
    assert tmin == pytest.approx(0.008)
    slack = replay_slack(net, 1000, "a", "b", ingress_time=1.0, output_time=1.020)
    assert slack == pytest.approx(0.020 - tmin)


def test_zero_slack_for_uncongested_target():
    net = _chain()
    tmin = net.tmin("a", "b", 1000)
    assert replay_slack(net, 1000, "a", "b", 0.0, tmin) == pytest.approx(0.0)


def test_unviable_target_rejected():
    net = _chain()
    with pytest.raises(ReplayError):
        replay_slack(net, 1000, "a", "b", ingress_time=0.0, output_time=0.001)


def test_float_jitter_clamped_to_zero():
    net = _chain()
    tmin = net.tmin("a", "b", 1000)
    slack = replay_slack(net, 1000, "a", "b", 0.0, tmin - 1e-12)
    assert slack == 0.0


def test_initialize_replay_slack_stamps_header():
    net = _chain()
    p = make_packet(src="a", dst="b", size=1000, created=0.5)
    initialize_replay_slack(p, net, output_time=0.520)
    assert p.slack == pytest.approx(0.020 - net.tmin("a", "b", 1000))
    assert p.deadline == 0.520


def test_slack_conservation_end_to_end():
    """A packet's final lateness equals initial slack minus total waits:
    o'(p) = i(p) + tmin + total_wait, so slack-at-exit = slack - waits."""
    net = _chain()
    blocker = make_packet(src="a", dst="b", size=1000)
    probe = make_packet(src="a", dst="b", size=1000)
    net.inject_at(0.0, blocker)
    net.inject_at(0.0, probe)
    net.run()
    rec = net.tracer.records[probe.pid]
    expected_exit = rec.created + net.tmin("a", "b", 1000) + sum(rec.hop_waits)
    assert rec.exit == pytest.approx(expected_exit)
