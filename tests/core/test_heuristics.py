"""Unit tests for the §3 slack-initialisation heuristics."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.core.heuristics import ConstantSlack, FlowSizeSlack, VirtualClockSlack
from repro.errors import WorkloadError
from tests.conftest import make_packet


def _flow(fid=1, weight=1.0):
    return Flow(fid, "a", "b", 10_000, 0.0, weight=weight)


class TestConstantSlack:
    def test_assigns_uniform_value(self):
        policy = ConstantSlack(2.5)
        p1, p2 = make_packet(), make_packet()
        policy.assign(p1, _flow(), 0.0)
        policy.assign(p2, _flow(2), 9.0)
        assert p1.slack == p2.slack == 2.5

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            ConstantSlack(-1.0)


class TestFlowSizeSlack:
    def test_scales_with_flow_size(self):
        policy = FlowSizeSlack(d=2.0)
        p = make_packet(flow_size=5000)
        policy.assign(p, _flow(), 0.0)
        assert p.slack == pytest.approx(10_000.0)

    def test_orders_flows_like_sjf(self):
        policy = FlowSizeSlack()
        small = make_packet(flow_size=1_000)
        big = make_packet(flow_size=100_000)
        policy.assign(small, _flow(1), 0.0)
        policy.assign(big, _flow(2), 0.0)
        assert small.slack < big.slack

    def test_rejects_nonpositive_d(self):
        with pytest.raises(WorkloadError):
            FlowSizeSlack(d=0.0)


class TestVirtualClockSlack:
    def test_first_packet_gets_zero_slack(self):
        policy = VirtualClockSlack(rate_estimate=8e6)
        p = make_packet(size=1000)
        policy.assign(p, _flow(), 0.0)
        assert p.slack == 0.0

    def test_recurrence_accumulates_when_sending_fast(self):
        """Back-to-back sends at twice r_est build slack linearly."""
        policy = VirtualClockSlack(rate_estimate=8e6)  # 1000B spacing = 1ms
        flow = _flow()
        slacks = []
        for i in range(4):
            p = make_packet(size=1000)
            policy.assign(p, flow, i * 0.5e-3)  # sending every 0.5 ms
            slacks.append(p.slack)
        assert slacks == pytest.approx([0.0, 0.5e-3, 1.0e-3, 1.5e-3])

    def test_recurrence_clamps_at_zero_when_sending_slow(self):
        policy = VirtualClockSlack(rate_estimate=8e6)
        flow = _flow()
        p1 = make_packet(size=1000)
        policy.assign(p1, flow, 0.0)
        p2 = make_packet(size=1000)
        policy.assign(p2, flow, 0.010)  # far later than the 1ms spacing
        assert p2.slack == 0.0

    def test_flows_tracked_independently(self):
        policy = VirtualClockSlack(rate_estimate=8e6)
        fast, slow = _flow(1), _flow(2)
        for i in range(3):
            p = make_packet(size=1000)
            policy.assign(p, fast, i * 0.1e-3)
        probe = make_packet(size=1000)
        policy.assign(probe, slow, 0.2e-3)
        assert probe.slack == 0.0  # slow flow's first packet

    def test_weight_scales_entitlement(self):
        heavy = VirtualClockSlack(rate_estimate=8e6)
        flow = _flow(1, weight=2.0)  # entitled to 2x => spacing 0.5ms
        p1 = make_packet(size=1000)
        heavy.assign(p1, flow, 0.0)
        p2 = make_packet(size=1000)
        heavy.assign(p2, flow, 0.5e-3)
        assert p2.slack == pytest.approx(0.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(WorkloadError):
            VirtualClockSlack(rate_estimate=0.0)


class TestParseSlackPolicy:
    def test_kinds_and_defaults(self):
        from repro.core.heuristics import parse_slack_policy

        assert isinstance(parse_slack_policy("constant"), ConstantSlack)
        assert parse_slack_policy("constant").slack == 1.0
        assert parse_slack_policy("constant:0.5").slack == 0.5
        assert isinstance(parse_slack_policy("flow-size"), FlowSizeSlack)
        assert parse_slack_policy("flow-size:2").d == 2.0
        vc = parse_slack_policy("virtual-clock:1e6")
        assert isinstance(vc, VirtualClockSlack)
        assert vc.rate_estimate == 1e6

    def test_rejects_bad_grammar(self):
        from repro.core.heuristics import parse_slack_policy

        with pytest.raises(WorkloadError):
            parse_slack_policy("warp-speed")
        with pytest.raises(WorkloadError):
            parse_slack_policy("constant:abc")
        with pytest.raises(WorkloadError):
            parse_slack_policy("virtual-clock")  # rate is required
