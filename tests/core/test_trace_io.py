"""Tests for recorded-schedule persistence."""

from __future__ import annotations

import functools
import json

import numpy as np
import pytest

from repro.core.replay import record_schedule, replay_schedule
from repro.core.trace_io import load_schedule, save_schedule
from repro.errors import ReplayError
from repro.topology.simple import build_dumbbell
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows


@pytest.fixture
def schedule_and_factory():
    make = functools.partial(build_dumbbell, num_pairs=3)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 40_000),
        workload=PoissonWorkload(0.6, 50e6, duration=0.03, seed=8),
    )
    install_udp_flows(net, flows)
    return record_schedule(net, description="io-test"), make


def test_round_trip_preserves_everything(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    loaded = load_schedule(path)
    assert len(loaded) == len(schedule)
    assert loaded.threshold == schedule.threshold
    assert loaded.description == "io-test"
    for a, b in zip(schedule.packets, loaded.packets):
        assert (a.pid, a.src, a.dst, a.size, a.flow_id) == (
            b.pid, b.src, b.dst, b.size, b.flow_id
        )
        assert a.ingress_time == b.ingress_time
        assert a.output_time == b.output_time
        assert a.path == b.path
        assert a.hop_tx == b.hop_tx
        assert a.hop_waits == b.hop_waits


def test_gzip_round_trip(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json.gz"
    save_schedule(schedule, path)
    assert load_schedule(path).packets[0].pid == schedule.packets[0].pid


def test_replay_from_loaded_schedule_is_identical(tmp_path, schedule_and_factory):
    schedule, make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    loaded = load_schedule(path)
    direct = replay_schedule(schedule, make, mode="lstf")
    from_disk = replay_schedule(loaded, make, mode="lstf")
    assert np.array_equal(direct.lateness, from_disk.lateness)


def test_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ReplayError):
        load_schedule(path)


def test_rejects_future_version(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    doc = json.loads(path.read_text())
    doc["version"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(ReplayError):
        load_schedule(path)
