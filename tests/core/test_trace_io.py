"""Tests for recorded-schedule persistence, the stable serialised format,
and the content-addressed schedule store."""

from __future__ import annotations

import functools
import json

import numpy as np
import pytest

from repro.core.replay import RecordedSchedule, record_schedule, replay_schedule
from repro.core.trace_io import (
    ScheduleStore,
    active_schedule_store,
    load_schedule,
    save_schedule,
    use_schedule_store,
)
from repro.errors import ReplayError
from repro.schedulers import FifoScheduler, FqScheduler, LifoScheduler, SjfScheduler
from repro.topology.simple import build_dumbbell, build_parking_lot
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows


@pytest.fixture
def schedule_and_factory():
    make = functools.partial(build_dumbbell, num_pairs=3)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 40_000),
        workload=PoissonWorkload(0.6, 50e6, duration=0.03, seed=8),
    )
    install_udp_flows(net, flows)
    return record_schedule(net, description="io-test"), make


def test_round_trip_preserves_everything(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    loaded = load_schedule(path)
    assert len(loaded) == len(schedule)
    assert loaded.threshold == schedule.threshold
    assert loaded.description == "io-test"
    for a, b in zip(schedule.packets, loaded.packets):
        assert (a.pid, a.src, a.dst, a.size, a.flow_id) == (
            b.pid, b.src, b.dst, b.size, b.flow_id
        )
        assert a.ingress_time == b.ingress_time
        assert a.output_time == b.output_time
        assert a.path == b.path
        assert a.hop_tx == b.hop_tx
        assert a.hop_waits == b.hop_waits


def test_gzip_round_trip(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json.gz"
    save_schedule(schedule, path)
    assert load_schedule(path).packets[0].pid == schedule.packets[0].pid


def test_replay_from_loaded_schedule_is_identical(tmp_path, schedule_and_factory):
    schedule, make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    loaded = load_schedule(path)
    direct = replay_schedule(schedule, make, mode="lstf")
    from_disk = replay_schedule(loaded, make, mode="lstf")
    assert np.array_equal(direct.lateness, from_disk.lateness)


def test_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(ReplayError):
        load_schedule(path)


def test_rejects_future_version(tmp_path, schedule_and_factory):
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    doc = json.loads(path.read_text())
    doc["version"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(ReplayError):
        load_schedule(path)


def test_reads_version1_files(tmp_path, schedule_and_factory):
    """Pre-hash (v1) trace files still load: the packet layout is
    unchanged, v1 just lacks the detached content hash."""
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    doc = json.loads(path.read_text())
    doc.pop("content_hash")
    doc["version"] = 1
    path.write_text(json.dumps(doc))
    loaded = load_schedule(path)
    assert len(loaded) == len(schedule)
    assert loaded.packets[0].hop_waits == schedule.packets[0].hop_waits


def test_rejects_tampered_content(tmp_path, schedule_and_factory):
    """The embedded content hash catches post-recording edits."""
    schedule, _make = schedule_and_factory
    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    doc = json.loads(path.read_text())
    doc["packets"][0]["o"] += 1e-3  # a subtly corrupted target time
    path.write_text(json.dumps(doc))
    with pytest.raises(ReplayError, match="content-hash"):
        load_schedule(path)


# --- the stable serialised format across schedulers and topologies ----------

_TOPOLOGIES = {
    "dumbbell": functools.partial(build_dumbbell, num_pairs=3),
    "parking-lot": functools.partial(build_parking_lot, num_hops=3),
}
_SCHEDULERS = {
    "fifo": FifoScheduler,
    "fq": FqScheduler,
    "sjf": SjfScheduler,
    "lifo": LifoScheduler,
}


def _record(topology: str, scheduler: str) -> tuple[RecordedSchedule, object]:
    make = _TOPOLOGIES[topology]
    net = make()
    net.install_uniform(_SCHEDULERS[scheduler])
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 30_000),
        workload=PoissonWorkload(0.5, 10e6, duration=0.05, seed=11),
    )
    install_udp_flows(net, flows)
    return record_schedule(net, description=f"{topology}/{scheduler}"), make


@pytest.mark.parametrize("topology", sorted(_TOPOLOGIES))
@pytest.mark.parametrize("scheduler", sorted(_SCHEDULERS))
def test_round_trip_replay_is_byte_identical(tmp_path, topology, scheduler):
    """serialize → deserialize → replay equals replaying the in-memory
    schedule, across 4 original schedulers x 2 topologies (the satellite's
    acceptance matrix)."""
    schedule, make = _record(topology, scheduler)
    reloaded = RecordedSchedule.from_dict(json.loads(schedule.canonical_json()))
    assert reloaded.content_hash() == schedule.content_hash()

    path = tmp_path / "trace.json"
    save_schedule(schedule, path)
    from_disk = load_schedule(path)
    assert from_disk.content_hash() == schedule.content_hash()

    direct = replay_schedule(schedule, make, mode="lstf")
    replayed = replay_schedule(from_disk, make, mode="lstf")
    assert np.array_equal(direct.lateness, replayed.lateness)


def test_content_hash_distinguishes_schedules():
    a, _ = _record("dumbbell", "fifo")
    b, _ = _record("dumbbell", "lifo")
    assert a.content_hash() != b.content_hash()


# --- the schedule store ------------------------------------------------------


class TestScheduleStore:
    def _schedule(self):
        schedule, _make = _record("dumbbell", "fifo")
        return schedule

    def test_put_get_round_trip(self, tmp_path):
        store = ScheduleStore(tmp_path)
        schedule = self._schedule()
        store.put("sched-abc", schedule)
        loaded = store.get("sched-abc")
        assert loaded is not None
        assert loaded.content_hash() == schedule.content_hash()

    def test_get_miss_and_corrupt_entry_return_none(self, tmp_path):
        store = ScheduleStore(tmp_path)
        assert store.get("nope") is None
        store.path("torn").parent.mkdir(parents=True, exist_ok=True)
        store.path("torn").write_text('{"format": "repro.recorded_sche')
        assert store.get("torn") is None

    def test_get_or_record_records_once_and_logs(self, tmp_path):
        store = ScheduleStore(tmp_path)
        calls = []

        def recorder():
            calls.append(1)
            return self._schedule()

        first = store.get_or_record("k", recorder)
        second = store.get_or_record("k", recorder)
        assert len(calls) == 1
        assert store.recorded_keys() == ["k"]
        assert first.content_hash() == second.content_hash()

    def test_get_or_record_returns_post_round_trip_object(self, tmp_path):
        """Every consumer replays the reloaded object, recorder included."""
        store = ScheduleStore(tmp_path)
        in_memory = self._schedule()
        stored = store.get_or_record("k", lambda: in_memory)
        assert stored is not in_memory
        assert stored.content_hash() == in_memory.content_hash()

    def test_saved_file_verifies_under_the_strict_load_path(self, tmp_path):
        """The spliced-hash write path produces exactly the document the
        hash-verifying loader (and the v2 format contract) expects."""
        store = ScheduleStore(tmp_path)
        schedule = self._schedule()
        store.put("k", schedule)
        strict = load_schedule(store.path("k"), verify=True)
        assert strict.content_hash() == schedule.content_hash()
        document = json.loads(store.path("k").read_text())
        assert document["content_hash"] == schedule.content_hash()

    def test_keys_lists_entries_and_skips_temp_files(self, tmp_path):
        store = ScheduleStore(tmp_path)
        assert store.keys() == []  # missing directory is an empty store
        store.put("b", self._schedule())
        store.put("a", self._schedule())
        (tmp_path / ".a.json.123.tmp").write_text("partial")
        assert store.keys() == ["a", "b"]

    def test_prune_removes_orphans_and_keeps_live_keys(self, tmp_path):
        store = ScheduleStore(tmp_path)
        schedule = self._schedule()
        for key in ("live", "orphan-1", "orphan-2"):
            store.get_or_record(key, lambda: schedule)
        removed = store.prune({"live", "never-recorded"})
        assert removed == ["orphan-1", "orphan-2"]
        assert store.keys() == ["live"]
        # the survivor is intact and loadable, not half-deleted
        assert store.get("live").content_hash() == schedule.content_hash()
        # pruning never rewrites history: the audit log keeps every line
        assert sorted(store.recorded_keys()) == ["live", "orphan-1", "orphan-2"]

    def test_prune_everything_and_empty_store(self, tmp_path):
        store = ScheduleStore(tmp_path)
        assert store.prune(set()) == []  # empty store: nothing to do
        store.put("k", self._schedule())
        assert store.prune(set()) == ["k"]
        assert store.keys() == []


def test_use_schedule_store_nests_and_restores(tmp_path):
    assert active_schedule_store() is None
    outer = ScheduleStore(tmp_path / "outer")
    inner = ScheduleStore(tmp_path / "inner")
    with use_schedule_store(outer):
        assert active_schedule_store() is outer
        with use_schedule_store(inner):
            assert active_schedule_store() is inner
        with use_schedule_store(None):  # explicit opt-out
            assert active_schedule_store() is None
        assert active_schedule_store() is outer
    assert active_schedule_store() is None
