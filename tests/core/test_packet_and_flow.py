"""Unit tests for the packet/flow data model."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.core.packet import Packet


def test_packet_ids_are_unique_and_monotone():
    a = Packet(1, 1000, "x", "y", 0.0)
    b = Packet(1, 1000, "x", "y", 0.0)
    assert b.pid == a.pid + 1


def test_packet_explicit_pid():
    p = Packet(1, 1000, "x", "y", 0.0, pid=777)
    assert p.pid == 777


def test_packet_defaults():
    p = Packet(3, 1500, "x", "y", 1.5, seq=3000)
    assert p.flow_size == 1500
    assert p.remaining_flow == 1500
    assert p.queue_wait == 0.0
    assert p.path_pos == 0
    assert not p.is_ack
    assert p.hop_times is None


def test_flow_segmentation_exact_multiple():
    f = Flow(1, "a", "b", 3000, 0.0)
    assert f.segment_sizes() == [1500, 1500]
    assert f.num_packets == 2


def test_flow_segmentation_with_remainder():
    f = Flow(1, "a", "b", 3200, 0.0)
    assert f.segment_sizes() == [1500, 1500, 200]
    assert f.num_packets == 3


def test_flow_smaller_than_mtu():
    f = Flow(1, "a", "b", 200, 0.0)
    assert f.segment_sizes() == [200]
    assert f.num_packets == 1


def test_flow_custom_mtu():
    f = Flow(1, "a", "b", 2500, 0.0, mtu=1000)
    assert f.segment_sizes() == [1000, 1000, 500]


def test_flow_rejects_bad_parameters():
    with pytest.raises(ValueError):
        Flow(1, "a", "b", 0, 0.0)
    with pytest.raises(ValueError):
        Flow(1, "a", "a", 100, 0.0)


def test_flow_segments_sum_to_size():
    for size in (1, 1499, 1500, 1501, 44_444):
        f = Flow(1, "a", "b", size, 0.0)
        assert sum(f.segment_sizes()) == size
