"""Unit and integration tests for the record/replay engine (§2)."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core.flow import Flow
from repro.core.replay import (
    REPLAY_MODES,
    RecordedPacket,
    record_schedule,
    replay_schedule,
)
from repro.errors import ReplayError
from repro.topology.simple import build_dumbbell, build_single_switch
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows


def _loaded_dumbbell(seed=3, duration=0.03, pairs=4):
    make = functools.partial(build_dumbbell, num_pairs=pairs)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 60_000),
        workload=PoissonWorkload(0.7, 50e6, duration=duration, seed=seed),
    )
    install_udp_flows(net, flows)
    return net, make


class TestRecord:
    def test_schedule_captures_every_packet(self):
        net, _make = _loaded_dumbbell()
        schedule = record_schedule(net)
        assert len(schedule) == net.tracer.delivered_count()
        assert all(p.output_time > p.ingress_time for p in schedule.packets)

    def test_packets_sorted_by_ingress(self):
        net, _make = _loaded_dumbbell()
        schedule = record_schedule(net)
        times = [p.ingress_time for p in schedule.packets]
        assert times == sorted(times)

    def test_rejects_undelivered_packets(self):
        net, _make = _loaded_dumbbell()
        with pytest.raises(ReplayError):
            record_schedule(net, until=1e-4)

    def test_rejects_drops(self):
        net, _make = _loaded_dumbbell()
        net.set_buffers(3000)
        with pytest.raises(ReplayError):
            record_schedule(net)

    def test_empty_schedule_rejected(self):
        net = build_dumbbell(num_pairs=2)  # no traffic installed
        with pytest.raises(ReplayError):
            record_schedule(net)

    def test_congestion_point_histogram(self):
        net, _make = _loaded_dumbbell()
        schedule = record_schedule(net)
        hist = schedule.congestion_point_histogram()
        assert sum(hist.values()) == len(schedule)
        assert schedule.max_congestion_points() == max(hist)


class TestReplay:
    def test_unknown_mode_rejected(self):
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        with pytest.raises(ReplayError):
            replay_schedule(schedule, make, mode="clairvoyant")

    def test_omniscient_replay_is_perfect(self):
        """Appendix B, used as a full-simulator oracle."""
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        result = replay_schedule(schedule, make, mode="omniscient")
        assert result.perfect

    def test_lstf_replay_mostly_on_time(self):
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        result = replay_schedule(schedule, make, mode="lstf")
        assert result.fraction_overdue < 0.10
        assert result.fraction_overdue_beyond_threshold < 0.02

    def test_edf_equals_lstf(self):
        """Appendix E: the two replays produce identical output times."""
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        lstf = replay_schedule(schedule, make, mode="lstf")
        edf = replay_schedule(schedule, make, mode="edf")
        assert np.allclose(lstf.lateness, edf.lateness, atol=1e-9)

    def test_priority_replay_uses_custom_priorities(self):
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        default = replay_schedule(schedule, make, mode="priority")
        flipped = replay_schedule(
            schedule, make, mode="priority", priority_fn=lambda r: -r.output_time
        )
        # Reversing priorities must change the outcome (sanity of plumbing).
        assert default.fraction_overdue != flipped.fraction_overdue

    def test_route_mismatch_detected(self):
        net, _make = _loaded_dumbbell(pairs=4)
        schedule = record_schedule(net)
        bigger = functools.partial(build_single_switch, num_senders=8)
        with pytest.raises(ReplayError):
            replay_schedule(schedule, bigger, mode="lstf")

    def test_all_modes_run(self):
        net, make = _loaded_dumbbell(duration=0.01)
        schedule = record_schedule(net)
        for mode in REPLAY_MODES:
            result = replay_schedule(schedule, make, mode=mode)
            assert result.num_packets == len(schedule)


class TestReplayResultMetrics:
    def _result(self):
        net, make = _loaded_dumbbell()
        schedule = record_schedule(net)
        return replay_schedule(schedule, make, mode="lstf")

    def test_fraction_bounds(self):
        r = self._result()
        assert 0.0 <= r.fraction_overdue_beyond_threshold <= r.fraction_overdue <= 1.0

    def test_custom_threshold_monotone(self):
        r = self._result()
        t = r.schedule.threshold
        assert r.fraction_overdue_beyond(2 * t) <= r.fraction_overdue_beyond(t)

    def test_queueing_delay_ratios_nonnegative(self):
        ratios = self._result().queueing_delay_ratios()
        assert len(ratios) > 0
        assert np.all(ratios >= 0)

    def test_summary_mentions_mode(self):
        assert "lstf" in self._result().summary()


def test_replay_of_single_bottleneck_is_perfect_for_lstf():
    """One congestion point per packet: even simple priorities suffice, so
    LSTF must be perfect (§2.2 hierarchy)."""
    make = functools.partial(build_single_switch, num_senders=3)
    net = make()
    flows = [
        Flow(fid=i + 1, src=f"s_{i}", dst="sink", size=20_000, start=0.002 * i)
        for i in range(3)
    ]
    install_udp_flows(net, flows)
    schedule = record_schedule(net)
    result = replay_schedule(schedule, make, mode="lstf")
    assert result.perfect
