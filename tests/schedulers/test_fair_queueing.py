"""Unit tests for FQ (self-clocked fair queueing) and DRR."""

from __future__ import annotations

import pytest

from repro.schedulers import DrrScheduler, FqScheduler
from tests.conftest import make_packet


def _drain(s, now=0.0):
    out = []
    while len(s):
        out.append(s.pop(now))
    return out


def test_fq_interleaves_backlogged_flows():
    s = FqScheduler()
    flow1 = [make_packet(flow_id=1, size=1000, seq=i) for i in range(3)]
    flow2 = [make_packet(flow_id=2, size=1000, seq=i) for i in range(3)]
    for p in flow1 + flow2:  # flow 1 fully enqueued first
        s.push(p, 0.0)
    order = [(p.flow_id, p.seq) for p in _drain(s)]
    # Finish tags alternate: f1#0, f2#0, f1#1, f2#1, ...
    assert order == [(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2)]


def test_fq_gives_small_packet_flows_equal_bytes_not_packets():
    s = FqScheduler()
    small = [make_packet(flow_id=1, size=500, seq=i) for i in range(4)]
    big = [make_packet(flow_id=2, size=1000, seq=i) for i in range(2)]
    for p in small + big:
        s.push(p, 0.0)
    order = [(p.flow_id, p.seq) for p in _drain(s)]
    # Two 500B packets of flow 1 per 1000B packet of flow 2.
    assert order == [(1, 0), (1, 1), (2, 0), (1, 2), (1, 3), (2, 1)]


def test_fq_weighted_flows():
    s = FqScheduler()
    s.set_weight(1, 2.0)  # flow 1 deserves twice the bandwidth
    f1 = [make_packet(flow_id=1, size=1000, seq=i) for i in range(4)]
    f2 = [make_packet(flow_id=2, size=1000, seq=i) for i in range(2)]
    for p in f1 + f2:
        s.push(p, 0.0)
    order = [p.flow_id for p in _drain(s)]
    assert order.count(1) == 4 and order.count(2) == 2
    # In any prefix, flow 1 should be roughly twice as represented.
    assert order[:3].count(1) == 2


def test_fq_rejects_bad_weight():
    with pytest.raises(ValueError):
        FqScheduler().set_weight(1, 0.0)


def test_fq_resets_virtual_time_when_idle():
    s = FqScheduler()
    p1 = make_packet(flow_id=1, size=1000)
    s.push(p1, 0.0)
    assert s.pop(0.0) is p1
    # After going idle the next packet starts from virtual time zero.
    p2 = make_packet(flow_id=2, size=1000)
    s.push(p2, 5.0)
    assert s._finish_tags[2] == pytest.approx(1000.0)


def test_drr_round_robins_equal_sizes():
    s = DrrScheduler(quantum=1000)
    f1 = [make_packet(flow_id=1, size=1000, seq=i) for i in range(3)]
    f2 = [make_packet(flow_id=2, size=1000, seq=i) for i in range(3)]
    for p in f1 + f2:
        s.push(p, 0.0)
    order = [p.flow_id for p in _drain(s)]
    assert order == [1, 2, 1, 2, 1, 2]


def test_drr_banks_deficit_for_large_packets():
    s = DrrScheduler(quantum=500)
    big = make_packet(flow_id=1, size=1000)
    small = [make_packet(flow_id=2, size=400, seq=i) for i in range(2)]
    s.push(big, 0.0)
    for p in small:
        s.push(p, 0.0)
    order = [(p.flow_id, p.size) for p in _drain(s)]
    # Flow 1 needs two quanta before its 1000B packet can go.
    assert order[0] == (2, 400)
    assert (1, 1000) in order


def test_drr_rejects_bad_quantum():
    with pytest.raises(ValueError):
        DrrScheduler(quantum=0)


def test_drr_single_flow_drains():
    s = DrrScheduler(quantum=100)
    packets = [make_packet(flow_id=1, size=1500, seq=i) for i in range(3)]
    for p in packets:
        s.push(p, 0.0)
    assert _drain(s) == packets
