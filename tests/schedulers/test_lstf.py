"""Unit tests for the LSTF scheduler: keys, header rewriting, drop policy."""

from __future__ import annotations

import pytest

from repro.schedulers import LstfScheduler
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _port_with_lstf(bw=8 * MBPS):
    """A real port on a tiny network so LSTF can read T(p, α)."""
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", bw, 0.0)
    port = net.nodes["a"].ports["b"]
    sched = LstfScheduler()
    port.set_scheduler(sched)
    return net, port, sched


def test_least_slack_first():
    _net, _port, s = _port_with_lstf()
    lax = make_packet(slack=0.5, enqueue_time=0.0)
    urgent = make_packet(slack=0.1, enqueue_time=0.0)
    s.push(lax, 0.0)
    s.push(urgent, 0.0)
    assert s.pop(0.0) is urgent
    assert s.pop(0.0) is lax


def test_key_accounts_for_arrival_time():
    """A packet that has been waiting longer is effectively more urgent."""
    _net, _port, s = _port_with_lstf()
    early = make_packet(slack=0.5, enqueue_time=0.0)
    late = make_packet(slack=0.45, enqueue_time=0.2)  # key 0.65 > 0.5
    s.push(early, 0.0)
    s.push(late, 0.2)
    assert s.pop(0.3) is early


def test_key_includes_transmission_time():
    """Last-bit semantics: a larger packet's last bit finishes later, so at
    equal slack and arrival the smaller packet wins."""
    _net, _port, s = _port_with_lstf()
    big = make_packet(size=2000, slack=0.1, enqueue_time=0.0)
    small = make_packet(size=500, slack=0.1, enqueue_time=0.0)
    s.push(big, 0.0)
    s.push(small, 0.0)
    assert s.pop(0.0) is small


def test_dequeue_rewrites_slack_header():
    """§2.2: the router overwrites the slack with slack minus queue wait."""
    _net, _port, s = _port_with_lstf()
    p = make_packet(slack=0.5, enqueue_time=1.0)
    s.push(p, 1.0)
    s.pop(1.3)
    assert p.slack == pytest.approx(0.2)


def test_fifo_tie_break():
    _net, _port, s = _port_with_lstf()
    a = make_packet(slack=0.5, enqueue_time=0.0)
    b = make_packet(slack=0.5, enqueue_time=0.0)
    s.push(a, 0.0)
    s.push(b, 0.0)
    assert s.pop(0.0) is a


def test_drop_victim_prefers_highest_slack_queued():
    _net, _port, s = _port_with_lstf()
    urgent = make_packet(slack=0.0, enqueue_time=0.0)
    lax = make_packet(slack=9.0, enqueue_time=0.0)
    s.push(urgent, 0.0)
    s.push(lax, 0.0)
    arriving = make_packet(slack=1.0, enqueue_time=0.0)
    victim = s.drop_victim(arriving, 0.0)
    assert victim is lax
    assert len(s) == 1
    assert s.pop(0.0) is urgent


def test_drop_victim_is_arriving_when_it_has_most_slack():
    _net, _port, s = _port_with_lstf()
    s.push(make_packet(slack=0.0, enqueue_time=0.0), 0.0)
    arriving = make_packet(slack=50.0, enqueue_time=0.0)
    assert s.drop_victim(arriving, 0.0) is arriving
    assert len(s) == 1


def test_drop_victim_on_empty_queue_is_arriving():
    _net, _port, s = _port_with_lstf()
    arriving = make_packet(slack=0.0)
    assert s.drop_victim(arriving, 0.0) is arriving


def test_preemption_key_matches_heap_key():
    _net, port, s = _port_with_lstf()
    p = make_packet(slack=0.25, enqueue_time=0.5, size=1000)
    expected = 0.25 + 0.5 + port.link.tx_time(1000)
    assert s.preemption_key(p) == pytest.approx(expected)
