"""Unit + property tests for the pipelined heap (§5 hardware model)."""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.schedulers.pheap import PHeap, PHeapLstfScheduler


class TestPHeap:
    def test_push_pop_single(self):
        h = PHeap(capacity=7)
        h.push((1.0, 0), "a")
        assert len(h) == 1
        assert h.pop() == ((1.0, 0), "a")
        assert len(h) == 0

    def test_orders_by_key(self):
        h = PHeap(capacity=15)
        for k in (5, 1, 4, 2, 3):
            h.push((float(k), k), k)
        assert [h.pop()[1] for k in range(5)] == [1, 2, 3, 4, 5]

    def test_fifo_tie_break_via_seq(self):
        h = PHeap(capacity=7)
        h.push((1.0, 0), "first")
        h.push((1.0, 1), "second")
        assert h.pop()[1] == "first"
        assert h.pop()[1] == "second"

    def test_peek(self):
        h = PHeap(capacity=7)
        assert h.peek() is None
        h.push((2.0, 0), "x")
        h.push((1.0, 1), "y")
        assert h.peek()[1] == "y"
        assert len(h) == 2  # peek does not remove

    def test_capacity_rounding_and_overflow(self):
        h = PHeap(capacity=5)  # rounds up to 7 slots
        assert h.capacity == 7
        for i in range(7):
            h.push((float(i), i), i)
        with pytest.raises(SchedulerError):
            h.push((99.0, 99), "overflow")

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulerError):
            PHeap(capacity=3).pop()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PHeap(capacity=0)

    def test_interleaved_operations_match_heapq(self):
        rng = np.random.default_rng(0)
        ph = PHeap(capacity=127)
        ref: list = []
        seq = 0
        for _ in range(600):
            if ref and rng.random() < 0.45:
                assert ph.pop()[0] == heapq.heappop(ref)
            elif len(ref) < 127:
                key = (float(rng.integers(0, 50)), seq)
                seq += 1
                ph.push(key, key)
                heapq.heappush(ref, key)
        while ref:
            assert ph.pop()[0] == heapq.heappop(ref)


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=60),
)
def test_property_pheap_is_a_priority_queue(keys):
    h = PHeap(capacity=63)
    for seq, k in enumerate(keys):
        h.push((k, seq), k)
    drained = [h.pop()[0][0] for _ in keys]
    assert drained == sorted(keys)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_property_pheap_lstf_matches_list_heap_lstf(seed):
    """The p-heap backend must be observationally identical to the
    standard LSTF scheduler on random push/pop sequences."""
    from repro.core.packet import Packet
    from repro.schedulers.lstf import LstfScheduler
    from repro.sim.network import Network
    from repro.units import MBPS

    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    port = net.nodes["a"].ports["b"]

    reference = LstfScheduler()
    reference.attach(port)
    pheap = PHeapLstfScheduler(capacity=255)
    pheap.attach(port)

    rng = np.random.default_rng(seed)
    live = 0
    for step in range(120):
        if live and rng.random() < 0.4:
            a = reference.pop(float(step))
            b = pheap.pop(float(step))
            assert (a.pid if a else None) == (b.pid if b else None)
            live -= 1
        else:
            p1 = Packet(1, 1000, "a", "b", 0.0)
            p2 = Packet(1, 1000, "a", "b", 0.0, pid=p1.pid)
            p1.slack = p2.slack = float(rng.integers(0, 20)) / 10.0
            p1.enqueue_time = p2.enqueue_time = float(step)
            reference.push(p1, float(step))
            pheap.push(p2, float(step))
            live += 1


def test_pheap_scheduler_end_to_end_matches_lstf():
    """Full replay with the p-heap backend produces identical lateness."""
    import functools

    from repro.core.replay import record_schedule, replay_schedule
    from repro.core.packet import Packet
    from repro.core.slack import initialize_replay_slack
    from repro.schedulers.lstf import LstfScheduler
    from repro.topology.simple import build_dumbbell
    from repro.transport.udp import install_udp_flows
    from repro.workload.distributions import BoundedPareto
    from repro.workload.flows import PoissonWorkload, poisson_flows

    make = functools.partial(build_dumbbell, num_pairs=3)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 30_000),
        workload=PoissonWorkload(0.6, 50e6, duration=0.03, seed=4),
    )
    install_udp_flows(net, flows)
    schedule = record_schedule(net)

    def run(scheduler_factory):
        replay_net = make()
        replay_net.install_uniform(scheduler_factory)
        for rec in schedule.packets:
            p = Packet(flow_id=rec.flow_id, size=rec.size, src=rec.src,
                       dst=rec.dst, created=rec.ingress_time, pid=rec.pid)
            initialize_replay_slack(p, replay_net, rec.output_time)
            replay_net.inject_at(rec.ingress_time, p)
        replay_net.run()
        return {r.pid: r.exit for r in replay_net.tracer.delivered_records()}

    assert run(LstfScheduler) == run(PHeapLstfScheduler)
