"""Unit tests for the omniscient and timetable (oracle) schedulers."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerError
from repro.schedulers import OmniscientScheduler, TimetableScheduler
from tests.conftest import make_packet


def test_omniscient_orders_by_current_hop_time():
    s = OmniscientScheduler()
    early = make_packet(hop_times=(5.0, 1.0), path_pos=1)
    late = make_packet(hop_times=(0.0, 2.0), path_pos=1)
    s.push(late, 0.0)
    s.push(early, 0.0)
    assert s.pop(0.0) is early
    assert s.pop(0.0) is late


def test_omniscient_requires_timetable_header():
    s = OmniscientScheduler()
    with pytest.raises(SchedulerError):
        s.push(make_packet(), 0.0)


def test_omniscient_detects_route_divergence():
    s = OmniscientScheduler()
    p = make_packet(hop_times=(1.0,), path_pos=3)
    with pytest.raises(SchedulerError):
        s.push(p, 0.0)


def test_timetable_releases_at_programmed_time():
    p = make_packet()
    s = TimetableScheduler({p.pid: 5.0})
    s.push(p, 0.0)
    assert s.pop(0.0) is None           # not due yet
    assert s.earliest_release(0.0) == 5.0
    assert s.pop(5.0) is p


def test_timetable_orders_by_release():
    p1, p2 = make_packet(), make_packet()
    s = TimetableScheduler({p1.pid: 2.0, p2.pid: 1.0})
    s.push(p1, 0.0)
    s.push(p2, 0.0)
    assert s.pop(2.0) is p2
    assert s.pop(2.0) is p1


def test_timetable_rejects_unknown_packet():
    s = TimetableScheduler({})
    with pytest.raises(SchedulerError):
        s.push(make_packet(), 0.0)


def test_timetable_rejects_late_arrival():
    p = make_packet()
    s = TimetableScheduler({p.pid: 1.0})
    with pytest.raises(SchedulerError):
        s.push(p, 2.0)  # arrived after its programmed transmission


def test_timetable_empty_earliest_release():
    s = TimetableScheduler({})
    assert s.earliest_release(0.0) is None
