"""Unit tests for SJF and SRPT (with starvation prevention)."""

from __future__ import annotations

from repro.schedulers import SjfScheduler, SrptScheduler
from tests.conftest import make_packet


def _drain(scheduler, now=0.0):
    out = []
    while len(scheduler):
        out.append(scheduler.pop(now))
    return out


def test_sjf_orders_by_flow_size():
    s = SjfScheduler()
    big = make_packet(flow_id=1, flow_size=100_000)
    small = make_packet(flow_id=2, flow_size=1_000)
    mid = make_packet(flow_id=3, flow_size=10_000)
    for p in (big, small, mid):
        s.push(p, 0.0)
    assert _drain(s) == [small, mid, big]


def test_sjf_keeps_flow_packets_in_order():
    s = SjfScheduler()
    packets = [make_packet(flow_id=1, flow_size=5000, seq=i) for i in range(4)]
    for p in packets:
        s.push(p, 0.0)
    assert _drain(s) == packets


def test_srpt_picks_flow_with_least_remaining():
    s = SrptScheduler()
    a = make_packet(flow_id=1, remaining_flow=50_000)
    b = make_packet(flow_id=2, remaining_flow=2_000)
    s.push(a, 0.0)
    s.push(b, 0.0)
    assert s.pop(0.0) is b
    assert s.pop(0.0) is a


def test_srpt_starvation_prevention_serves_earliest_of_best_flow():
    """Footnote 8: the earliest-arriving packet of the best flow is sent,
    even when a later packet of that flow carries the smaller remaining."""
    s = SrptScheduler()
    early = make_packet(flow_id=1, remaining_flow=9_000, seq=0)
    later = make_packet(flow_id=1, remaining_flow=1_000, seq=1)  # heap top
    other = make_packet(flow_id=2, remaining_flow=5_000)
    s.push(early, 0.0)
    s.push(other, 0.0)
    s.push(later, 0.0)
    # Flow 1 holds the minimum remaining (1000) => serve flow 1's EARLIEST.
    assert s.pop(0.0) is early
    assert s.pop(0.0) is later
    assert s.pop(0.0) is other


def test_srpt_stale_heap_entries_are_local_to_the_port():
    """Regression: serving a packet here must survive the packet being
    queued (and state-mutated) at a downstream SRPT port."""
    port_a = SrptScheduler()
    port_b = SrptScheduler()
    p1 = make_packet(flow_id=1, remaining_flow=9_000, seq=0)
    p2 = make_packet(flow_id=1, remaining_flow=1_000, seq=1)
    port_a.push(p1, 0.0)
    port_a.push(p2, 0.0)
    served_first = port_a.pop(0.0)
    assert served_first is p1
    # p1 travels on and is queued at the next hop before port_a pops again.
    port_b.push(p1, 1.0)
    assert port_a.pop(1.0) is p2
    assert len(port_a) == 0
    assert port_b.pop(1.0) is p1


def test_srpt_empty_pop_returns_none():
    s = SrptScheduler()
    assert s.pop(0.0) is None
    p = make_packet(flow_id=1)
    s.push(p, 0.0)
    assert s.pop(0.0) is p
    assert s.pop(0.0) is None
