"""Unit tests for network-EDF and FIFO+."""

from __future__ import annotations

import pytest

from repro.schedulers import EdfScheduler, FifoPlusScheduler
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _edf_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 80 * MBPS, 0.001)
    net.add_link("SW", "b", 8 * MBPS, 0.002)
    sched = EdfScheduler()
    net.nodes["SW"].ports["b"].set_scheduler(sched)
    return net, sched


def test_edf_orders_by_deadline():
    net, s = _edf_net()
    soon = make_packet(deadline=0.010)
    later = make_packet(deadline=0.020)
    s.push(later, 0.0)
    s.push(soon, 0.0)
    assert s.pop(0.0) is soon
    assert s.pop(0.0) is later


def test_edf_local_priority_uses_remaining_tmin():
    net, s = _edf_net()
    p = make_packet(deadline=0.050, size=1000)
    # priority = o(p) - tmin(SW,b) + T(SW)  [Appendix E]
    tmin_rest = net.remaining_tmin("SW", "b", 1000)
    t_here = net.links[("SW", "b")].tx_time(1000)
    assert s._local_priority(p) == pytest.approx(0.050 - tmin_rest + t_here)
    assert s.preemption_key(p) == pytest.approx(s._local_priority(p))


def test_edf_caches_tmin_lookups():
    net, s = _edf_net()
    p = make_packet(deadline=0.050)
    s._local_priority(p)
    assert ("b", 1000) in s._tmin_cache


def test_fifo_plus_prioritises_upstream_waiters():
    s = FifoPlusScheduler()
    fresh = make_packet(enqueue_time=1.000, queue_wait=0.0)
    delayed = make_packet(enqueue_time=1.001, queue_wait=0.005)
    s.push(fresh, 1.001)
    s.push(delayed, 1.001)
    # delayed's virtual arrival is 0.996 < 1.000, so it goes first.
    assert s.pop(1.001) is delayed
    assert s.pop(1.001) is fresh


def test_fifo_plus_degenerates_to_fifo_at_first_hop():
    s = FifoPlusScheduler()
    packets = [make_packet(enqueue_time=i * 0.001, queue_wait=0.0) for i in range(4)]
    for p in packets:
        s.push(p, p.enqueue_time)
    assert [s.pop(1.0) for _ in range(4)] == packets
