"""Unit tests for FIFO, LIFO, Random, and static Priority scheduling.

These exercise the scheduler objects directly (no network) plus one
end-to-end ordering check each.
"""

from __future__ import annotations

import random

import pytest

from repro.schedulers import (
    FifoScheduler,
    LifoScheduler,
    PriorityScheduler,
    RandomScheduler,
    make_scheduler,
    scheduler_names,
)
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _drain(scheduler, now=0.0):
    out = []
    while len(scheduler):
        out.append(scheduler.pop(now))
    return out


def test_fifo_order():
    s = FifoScheduler()
    packets = [make_packet() for _ in range(5)]
    for p in packets:
        s.push(p, 0.0)
    assert _drain(s) == packets
    assert s.pop(0.0) is None


def test_lifo_order():
    s = LifoScheduler()
    packets = [make_packet() for _ in range(5)]
    for p in packets:
        s.push(p, 0.0)
    assert _drain(s) == packets[::-1]
    assert s.pop(0.0) is None


def test_random_is_seeded_and_complete():
    packets = [make_packet() for _ in range(20)]
    orders = []
    for _ in range(2):
        s = RandomScheduler(random.Random(42))
        for p in packets:
            s.push(p, 0.0)
        orders.append([p.pid for p in _drain(s)])
    assert orders[0] == orders[1]                 # deterministic under a seed
    assert sorted(orders[0]) == [p.pid for p in packets]  # nothing lost
    assert orders[0] != [p.pid for p in packets]  # actually shuffles 20 packets


def test_priority_serves_smallest_value_first():
    s = PriorityScheduler()
    p_low = make_packet(priority=5.0)
    p_high = make_packet(priority=1.0)
    p_mid = make_packet(priority=3.0)
    for p in (p_low, p_high, p_mid):
        s.push(p, 0.0)
    assert _drain(s) == [p_high, p_mid, p_low]


def test_priority_breaks_ties_fifo():
    s = PriorityScheduler()
    packets = [make_packet(priority=7.0) for _ in range(4)]
    for p in packets:
        s.push(p, 0.0)
    assert _drain(s) == packets


def test_registry_constructs_every_scheduler():
    for name in scheduler_names():
        assert make_scheduler(name).name == name


def test_registry_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_scheduler("wfq2000")


def test_lifo_end_to_end_reverses_queue():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8000 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    net.install_schedulers(lambda n, _p: LifoScheduler() if n == "SW" else None)
    packets = [make_packet() for _ in range(4)]
    for p in packets:
        net.inject_at(0.0, p)
    net.run()
    exits = {p.pid: net.tracer.records[p.pid].exit for p in packets}
    order = [pid for pid, _ in sorted(exits.items(), key=lambda kv: kv[1])]
    # First packet grabs the wire; everything queued behind exits LIFO.
    assert order == [packets[0].pid] + [p.pid for p in packets[1:]][::-1]
