"""Property tests for the shared indexed-heap scheduler queue.

The queue must behave exactly like a reference implementation built on
``heapq`` plus linear scans: same pop order (key, then FIFO), same worst
victim (highest key, then *latest* push), under arbitrary interleavings of
push/pop/evict/worst.  The worst-tracking mirror is built lazily, so the
sequences deliberately call ``worst_entry`` mid-stream to exercise both
the build-from-live path and the incremental-maintenance path.
"""

from __future__ import annotations

import random

import pytest

from repro.core.packet import Packet, reset_packet_ids
from repro.schedulers.base import IndexedHeapQueue


class _Reference:
    """Ordered-list model: O(n) everywhere, obviously correct."""

    def __init__(self):
        self._entries = []  # (key, seq, packet), insertion-ordered
        self._seq = 0

    def push(self, key, packet):
        self._seq += 1
        self._entries.append((key, self._seq, packet))

    def pop(self):
        if not self._entries:
            return None
        best = min(self._entries, key=lambda e: (e[0], e[1]))
        self._entries.remove(best)
        return best[2]

    def peek(self):
        if not self._entries:
            return None
        return min(self._entries, key=lambda e: (e[0], e[1]))[2]

    def evict(self, pid):
        for entry in self._entries:
            if entry[2].pid == pid:
                self._entries.remove(entry)
                return True
        return False

    def worst_entry(self):
        if not self._entries:
            return None
        key, _seq, packet = max(self._entries, key=lambda e: (e[0], e[1]))
        return key, packet

    def __len__(self):
        return len(self._entries)


def _mk(pid_counter):
    return Packet(1, 1000, "a", "b", 0.0)


@pytest.mark.parametrize("seed", range(40))
def test_queue_matches_reference_model(seed):
    reset_packet_ids()
    rng = random.Random(seed)
    queue = IndexedHeapQueue()
    ref = _Reference()
    live_pids = []
    for step in range(300):
        roll = rng.random()
        if roll < 0.45 or not len(ref):
            key = rng.randrange(20) / 4.0
            packet = Packet(1, 1000, "a", "b", 0.0)
            queue.push(key, packet)
            ref.push(key, packet)
            live_pids.append(packet.pid)
        elif roll < 0.70:
            got, want = queue.pop(), ref.pop()
            assert (got.pid if got else None) == (want.pid if want else None)
            if got is not None:
                live_pids.remove(got.pid)
        elif roll < 0.80 and live_pids:
            pid = live_pids.pop(rng.randrange(len(live_pids)))
            assert queue.evict(pid) == ref.evict(pid)
        elif roll < 0.90:
            got, want = queue.peek(), ref.peek()
            assert (got.pid if got else None) == (want.pid if want else None)
        else:
            got, want = queue.worst_entry(), ref.worst_entry()
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert got[0] == want[0]
                assert got[1].pid == want[1].pid
        assert len(queue) == len(ref)
    # drain: orders must agree to the end
    while len(ref):
        assert queue.pop().pid == ref.pop().pid
    assert queue.pop() is None


def test_fifo_tie_break_on_equal_keys():
    reset_packet_ids()
    queue = IndexedHeapQueue()
    first = Packet(1, 100, "a", "b", 0.0)
    second = Packet(1, 100, "a", "b", 0.0)
    queue.push(1.0, first)
    queue.push(1.0, second)
    assert queue.pop() is first
    assert queue.pop() is second


def test_worst_entry_prefers_latest_push_on_ties():
    reset_packet_ids()
    queue = IndexedHeapQueue()
    older = Packet(1, 100, "a", "b", 0.0)
    newer = Packet(1, 100, "a", "b", 0.0)
    queue.push(5.0, older)
    queue.push(5.0, newer)
    assert queue.worst_entry()[1] is newer


def test_evicted_entries_never_surface():
    reset_packet_ids()
    queue = IndexedHeapQueue()
    packets = [Packet(1, 100, "a", "b", 0.0) for _ in range(5)]
    for i, packet in enumerate(packets):
        queue.push(float(i), packet)
    assert queue.evict(packets[0].pid)
    assert not queue.evict(packets[0].pid)  # already gone
    assert queue.worst_entry()[1] is packets[4]
    assert queue.evict(packets[4].pid)
    assert queue.worst_entry()[1] is packets[3]
    assert [queue.pop().pid for _ in range(3)] == [p.pid for p in packets[1:4]]
    assert len(queue) == 0


def test_worst_mirror_stays_consistent_after_lazy_build():
    """Pushes after the first worst_entry() must maintain the mirror."""
    reset_packet_ids()
    queue = IndexedHeapQueue()
    low = Packet(1, 100, "a", "b", 0.0)
    queue.push(1.0, low)
    assert queue.worst_entry()[1] is low  # builds the mirror
    high = Packet(1, 100, "a", "b", 0.0)
    queue.push(9.0, high)
    assert queue.worst_entry()[1] is high
    queue.pop()  # removes `low`
    assert queue.worst_entry()[1] is high
