"""The PR-8 obs-overhead benches (`bench_obs_engine`, `bench_obs_sweep_queue`).

Timings are meaningless in tests; what is guarded here is the contract:
ops are identical with telemetry off and on (sampler firings are excluded
from accounting by design), modes are validated, and the queue bench
toggles — and always restores — the ``REPRO_OBS`` environment switch.
"""

from __future__ import annotations

import os

import pytest

from repro.api.runner import OBS_ENV
from repro.experiments import perf
from repro.experiments.perf import OBS_MODES, bench_obs_engine


class TestObsEngineBench:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown obs mode"):
            bench_obs_engine("banana", 100, repeats=1)

    def test_ops_identical_with_telemetry_off_and_on(self):
        # The on-mode sampler and flight recorder must not leak into the
        # op count — an off/on mismatch would be an accounting bug, not
        # a performance difference.
        events = 2_000
        ops_off, seconds_off = bench_obs_engine("off", events, repeats=1)
        ops_on, seconds_on = bench_obs_engine("on", events, repeats=1)
        assert ops_off == ops_on == events
        assert seconds_off > 0 and seconds_on > 0

    def test_modes_roster(self):
        assert OBS_MODES == ("off", "on")


class TestObsSweepQueueBench:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown obs mode"):
            perf.bench_obs_sweep_queue("banana")

    def test_toggles_and_restores_the_env_switch(self, monkeypatch):
        seen = []

        def fake_sweep(executor, **kwargs):
            seen.append((executor, os.environ.get(OBS_ENV)))
            return (7, 0.5)

        monkeypatch.setattr(perf, "bench_sweep_executor", fake_sweep)
        monkeypatch.setenv(OBS_ENV, "preexisting")
        assert perf.bench_obs_sweep_queue("on") == (7, 0.5)
        assert perf.bench_obs_sweep_queue("off") == (7, 0.5)
        assert seen == [("queue", "1"), ("queue", "0")]
        assert os.environ[OBS_ENV] == "preexisting"

    def test_unset_env_stays_unset(self, monkeypatch):
        monkeypatch.setattr(
            perf, "bench_sweep_executor", lambda executor, **kwargs: (1, 1.0)
        )
        monkeypatch.delenv(OBS_ENV, raising=False)
        perf.bench_obs_sweep_queue("on")
        assert OBS_ENV not in os.environ
