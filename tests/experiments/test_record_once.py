"""Record-once/replay-many acceptance tests (the PR-4 tentpole).

The contract: a replay-mode sweep over M modes records each unique
original schedule *exactly once* (recorder call counts / the store's
``recordings.log``) and its gathered artifacts are *byte-identical* to
the record-per-leg path, under all three executors.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import ExperimentSpec, run, run_many
from repro.core.trace_io import ScheduleStore, use_schedule_store
from repro.errors import ConfigurationError
from repro.experiments import replayability
from repro.experiments.replayability import (
    ReplayScenario,
    build_recorded_schedule,
    get_recorded_schedule,
    run_replay,
    scenario_schedule_key,
)

MODES = ("lstf", "priority", "edf")


def _legs(**overrides) -> list[ExperimentSpec]:
    spec = ExperimentSpec(
        "table1",
        duration=0.03,
        options={"rows": (0,)},
        replay_modes=MODES,
        **overrides,
    )
    return spec.sweep()


@pytest.fixture
def recorder_calls(monkeypatch):
    """Count invocations of the actual schedule recorder."""
    calls: list[ReplayScenario] = []
    real = build_recorded_schedule

    def counting(scenario):
        calls.append(scenario)
        return real(scenario)

    monkeypatch.setattr(replayability, "build_recorded_schedule", counting)
    return calls


class TestExactlyOnce:
    def test_serial_sweep_records_each_schedule_exactly_once(
        self, recorder_calls
    ):
        artifacts = run_many(_legs())
        assert len(artifacts) == len(MODES)
        assert len(recorder_calls) == 1  # one scenario, three modes
        assert [a.metadata["mode"] for a in artifacts] == list(MODES)

    def test_two_scenarios_three_modes_is_two_recordings(self, recorder_calls):
        legs = ExperimentSpec(
            "table1", duration=0.03, options={"rows": (0, 5)},
            replay_modes=MODES,
        ).sweep()
        run_many(legs)
        assert len(recorder_calls) == 2
        keys = {scenario_schedule_key(s) for s in recorder_calls}
        assert len(keys) == 2

    @pytest.mark.parametrize("executor", ["serial", "process", "queue"])
    def test_store_log_shows_one_recording_per_executor(
        self, tmp_path, executor
    ):
        kwargs: dict = {"executor": executor, "workers": 2}
        if executor == "queue":
            kwargs["queue_dir"] = tmp_path / "q"
            store_root = tmp_path / "q" / "artifacts" / "schedules"
        else:
            kwargs["out_dir"] = tmp_path / "out"
            store_root = tmp_path / "out" / "schedules"
        run_many(_legs(), **kwargs)
        assert ScheduleStore(store_root).recorded_keys() == [
            scenario_schedule_key(replayability.table1_scenarios(
                duration=0.03, seed=1, bandwidth_scale=0.01
            )[0])
        ]

    def test_warm_schedule_store_records_nothing(
        self, tmp_path, recorder_calls
    ):
        out = tmp_path / "out"
        run_many(_legs(), out_dir=out)
        assert len(recorder_calls) == 1
        # a different replay-mode sweep over the same scenario: the
        # artifact cache misses, but the schedule store answers every
        # recording, so the recorder never runs again
        run_many(_legs()[:1], out_dir=out, force=True)
        assert len(recorder_calls) == 1


class TestByteIdentity:
    """Record-once artifacts == record-per-leg artifacts, bit for bit."""

    @pytest.fixture(scope="class")
    def per_leg_reference(self):
        """The record-per-leg path: independent run() calls, no store."""
        return [run(s).canonical_json() for s in _legs()]

    @pytest.mark.parametrize("executor", ["serial", "process", "queue"])
    def test_executors_match_per_leg_recording(
        self, tmp_path, executor, per_leg_reference
    ):
        kwargs: dict = {"executor": executor, "workers": 2}
        if executor == "queue":
            kwargs["queue_dir"] = tmp_path / "q"
        artifacts = run_many(_legs(), **kwargs)
        assert [a.canonical_json() for a in artifacts] == per_leg_reference

    def test_recordings_are_pid_stream_independent(self):
        """A recording is byte-identical no matter what ran before it in
        the process — the property the shared store depends on."""
        scenario = replayability.table1_scenarios(duration=0.03)[0]
        first = build_recorded_schedule(scenario)
        # pollute the packet-id counter with an unrelated simulation
        run(ExperimentSpec("table1", duration=0.02, options={"rows": (0,)}))
        second = build_recorded_schedule(scenario)
        assert first.content_hash() == second.content_hash()


class TestRunReplayScheduleKwarg:
    """Regression: ``run_replay(schedule=...)`` must never re-record."""

    def _scenario(self):
        return ReplayScenario(name="kwarg-path", duration=0.03, seed=1)

    def test_given_schedule_is_not_rerecorded(self, recorder_calls):
        scenario = self._scenario()
        schedule = build_recorded_schedule(scenario)
        recorder_calls.clear()
        outcome = run_replay(scenario, mode="lstf", schedule=schedule)
        assert len(recorder_calls) == 0  # recorder invoked zero times
        assert outcome.schedule is schedule

    def test_reuse_across_modes_equals_fresh_recordings(self, recorder_calls):
        scenario = self._scenario()
        schedule = build_recorded_schedule(scenario)
        recorder_calls.clear()
        reused = [
            run_replay(scenario, mode=m, schedule=schedule) for m in MODES
        ]
        assert len(recorder_calls) == 0
        fresh = [run_replay(scenario, mode=m) for m in MODES]
        assert len(recorder_calls) == len(MODES)  # one recording per call
        for a, b in zip(reused, fresh):
            assert a.fraction_overdue == b.fraction_overdue
            assert a.fraction_overdue_beyond_t == b.fraction_overdue_beyond_t


class TestScheduleKeyAndStore:
    def test_key_ignores_display_name_only(self):
        a = ReplayScenario(name="row 0", duration=0.03)
        b = ReplayScenario(name="fig1/random", duration=0.03)
        c = ReplayScenario(name="row 0", duration=0.03, seed=2)
        assert scenario_schedule_key(a) == scenario_schedule_key(b)
        assert scenario_schedule_key(a) != scenario_schedule_key(c)

    def test_get_recorded_schedule_uses_active_store(
        self, tmp_path, recorder_calls
    ):
        scenario = ReplayScenario(name="store-path", duration=0.03)
        store = ScheduleStore(tmp_path)
        with use_schedule_store(store):
            first = get_recorded_schedule(scenario)
            second = get_recorded_schedule(scenario)
        assert len(recorder_calls) == 1
        assert first.content_hash() == second.content_hash()
        # without a store every call records afresh
        get_recorded_schedule(scenario)
        assert len(recorder_calls) == 2


def test_replay_modes_rejected_by_non_replay_experiments():
    with pytest.raises(ConfigurationError, match="replay"):
        # the runner rejects spec *options* it does not read; replay_modes
        # is a param, so the CLI-level guard is exercised in test_cli —
        # here we check the spec itself validates mode names
        ExperimentSpec("table1", replay_modes=("clairvoyant",))
