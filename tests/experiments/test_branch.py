"""Branch-from-checkpoint acceptance tests (the PR-7 tentpole).

The contract: a ``branch`` sweep over N seeds simulates its shared
warm-up prefix *exactly once* (the checkpoint store's audit log) and
every branched leg's artifact is *byte-identical* to simulating that leg
from scratch — across schedulers × topologies and under all three
executors.
"""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, run, run_many
from repro.errors import ConfigurationError
from repro.sim.checkpoint import (
    CheckpointStore,
    snapshot_to_bytes,
)
from repro.experiments.branch import (
    BranchPrefix,
    branch_checkpoint_key,
    build_branch_snapshot,
    prefix_from_spec,
)

WARMUP = 0.02
DURATION = 0.01


def _legs(seeds=(1, 2), **overrides) -> list[ExperimentSpec]:
    spec = ExperimentSpec(
        "branch",
        duration=DURATION,
        seeds=seeds,
        options={"warmup": WARMUP},
        **overrides,
    )
    return spec.sweep()


class TestByteIdentity:
    """Branched legs == from-scratch legs, bit for bit."""

    @pytest.mark.parametrize("scheduler", ["fifo", "fq", "sjf", "lifo"])
    @pytest.mark.parametrize("topology", ["i2-1g-10g", "fattree"])
    def test_store_backed_sweep_matches_scratch(
        self, tmp_path, scheduler, topology
    ):
        legs = _legs(schedulers=(scheduler,), topology=topology)
        # scratch path: independent run() calls, no store anywhere
        reference = [run(s).canonical_json() for s in legs]
        # branch-many path: one shared store, warm-up simulated once
        artifacts = run_many(legs, out_dir=tmp_path / "out")
        assert [a.canonical_json() for a in artifacts] == reference

    @pytest.mark.parametrize("executor", ["serial", "process", "queue"])
    def test_executors_match_scratch(self, tmp_path, executor):
        legs = _legs(schedulers=("fq",))
        reference = [run(s).canonical_json() for s in legs]
        kwargs: dict = {"executor": executor, "workers": 2}
        if executor == "queue":
            kwargs["queue_dir"] = tmp_path / "q"
        else:
            kwargs["out_dir"] = tmp_path / "out"
        artifacts = run_many(legs, **kwargs)
        assert [a.canonical_json() for a in artifacts] == reference

    def test_snapshots_are_pid_stream_independent(self):
        """A warm-up snapshot is byte-identical no matter what ran before
        it in the process — the property the shared store depends on."""
        prefix = prefix_from_spec(_legs()[0])
        first = snapshot_to_bytes(build_branch_snapshot(prefix))
        # pollute the packet-id counter with an unrelated simulation
        run(ExperimentSpec("branch", duration=0.005,
                           options={"warmup": 0.005}))
        second = snapshot_to_bytes(build_branch_snapshot(prefix))
        assert first == second


class TestSimulateOnce:
    def test_seed_sweep_builds_the_warmup_exactly_once(self, tmp_path):
        legs = _legs(seeds=(1, 2, 3, 4))
        run_many(legs, out_dir=tmp_path / "out")
        store = CheckpointStore(tmp_path / "out" / "checkpoints")
        assert store.built_keys() == [branch_checkpoint_key(
            prefix_from_spec(legs[0])
        )]

    def test_warm_store_builds_nothing(self, tmp_path):
        out = tmp_path / "out"
        run_many(_legs(), out_dir=out)
        store = CheckpointStore(out / "checkpoints")
        assert len(store.built_keys()) == 1
        # same sweep again: the artifact cache misses (force), but the
        # checkpoint store answers the warm-up, so nothing rebuilds
        run_many(_legs(), out_dir=out, force=True)
        assert len(store.built_keys()) == 1

    def test_truncated_checkpoint_falls_through_to_scratch(self, tmp_path):
        out = tmp_path / "out"
        legs = _legs(schedulers=("fq",))
        reference = [
            a.canonical_json() for a in run_many(legs, out_dir=out)
        ]
        store = CheckpointStore(out / "checkpoints")
        [key] = store.keys()
        path = store.path(key)
        path.write_bytes(path.read_bytes()[:-80])  # simulate a torn write
        artifacts = run_many(legs, out_dir=out, force=True)
        # the corrupt entry read as a miss, the warm-up was rebuilt, and
        # the branched legs still match the originals byte for byte
        assert [a.canonical_json() for a in artifacts] == reference
        assert store.built_keys() == [key, key]
        assert store.get(key) is not None  # healed on disk


class TestCheckpointKey:
    def test_key_covers_every_prefix_field(self):
        base = BranchPrefix()
        assert branch_checkpoint_key(base) == branch_checkpoint_key(
            BranchPrefix()
        )
        for variant in (
            base.with_(topology="fattree"),
            base.with_(scheduler="fq"),
            base.with_(utilization=0.5),
            base.with_(warmup=0.1),
            base.with_(bandwidth_scale=0.02),
            base.with_(warmup_seed=2),
        ):
            assert branch_checkpoint_key(variant) != branch_checkpoint_key(base)

    def test_leg_seed_does_not_change_the_key(self):
        legs = _legs(seeds=(1, 7))
        keys = {branch_checkpoint_key(prefix_from_spec(s)) for s in legs}
        assert len(keys) == 1  # seed drives the leg, never the prefix


class TestSpecValidation:
    def test_warmup_must_be_a_positive_number(self):
        with pytest.raises(ConfigurationError, match="warmup"):
            prefix_from_spec(
                ExperimentSpec("branch", options={"warmup": "soon"})
            )
        with pytest.raises(ConfigurationError, match="positive"):
            prefix_from_spec(
                ExperimentSpec("branch", options={"warmup": 0.0})
            )

    def test_warmup_seed_must_be_an_integer(self):
        with pytest.raises(ConfigurationError, match="warmup_seed"):
            prefix_from_spec(
                ExperimentSpec(
                    "branch",
                    options={"warmup": WARMUP, "warmup_seed": 1.5},
                )
            )

    def test_scheduler_must_be_an_original(self):
        with pytest.raises(ConfigurationError, match="scheduler"):
            prefix_from_spec(
                ExperimentSpec(
                    "branch",
                    schedulers=("lstf",),  # a replay mode, not an original
                    options={"warmup": WARMUP},
                )
            )
