"""Tests for the paper's extension experiments (§3.3 weighted fairness,
§5 least-information replay)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.fairness import run_weighted_fairness_experiment
from repro.experiments.information import run_information_experiment
from repro.experiments.replayability import ReplayScenario


class TestWeightedFairness:
    @pytest.mark.parametrize("scheme", ["lstf", "fq"])
    def test_throughput_tracks_weights(self, scheme):
        achieved, normalised, result = run_weighted_fairness_experiment(
            weights=(1.0, 2.0, 4.0), scheme=scheme, horizon=1.5
        )
        # Normalised (per-weight) rates should be nearly equal.
        assert normalised.max() / normalised.min() < 1.3
        assert result.final_fairness > 0.95
        # And the raw rates should be ordered by weight.
        assert achieved[0] < achieved[1] < achieved[2]

    def test_requires_two_flows(self):
        with pytest.raises(ValueError):
            run_weighted_fairness_experiment(weights=(1.0,), horizon=0.5)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_weighted_fairness_experiment(scheme="drr", horizon=0.5)


class TestInformationExperiment:
    def test_degradation_is_monotone_ish(self):
        scenario = ReplayScenario(name="info-test", duration=0.08, seed=2)
        points = run_information_experiment(
            steps_in_t=(0.0, 1.0, 16.0, 64.0), scenario=scenario
        )
        overdue = [p.fraction_overdue_beyond_t for p in points]
        # Exact information is at least as good as heavily quantised.
        assert overdue[0] <= overdue[-1]
        # Coarse quantisation must hurt noticeably.
        assert overdue[-1] > overdue[0] + 0.01

    def test_zero_step_matches_exact_replay(self):
        scenario = ReplayScenario(name="info-test", duration=0.08, seed=2)
        exact, = run_information_experiment(steps_in_t=(0.0,), scenario=scenario)
        again, = run_information_experiment(steps_in_t=(0.0,), scenario=scenario)
        assert exact.fraction_overdue == again.fraction_overdue

    def test_nearest_rounding_supported(self):
        scenario = ReplayScenario(name="info-test", duration=0.08, seed=2)
        points = run_information_experiment(
            steps_in_t=(2.0,), rounding="nearest", scenario=scenario
        )
        assert 0.0 <= points[0].fraction_overdue <= 1.0

    def test_bad_parameters_rejected(self):
        scenario = ReplayScenario(name="info-test", duration=0.05, seed=2)
        with pytest.raises(ConfigurationError):
            run_information_experiment(steps_in_t=(-1.0,), scenario=scenario)
        with pytest.raises(ConfigurationError):
            run_information_experiment(
                steps_in_t=(1.0,), rounding="up", scenario=scenario
            )
