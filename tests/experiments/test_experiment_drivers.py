"""Integration tests: every experiment driver runs and reproduces the
paper's qualitative shape at miniature scale.

The benchmarks run the full (scaled) configurations; these tests use even
smaller parameters so the whole suite stays fast, and assert only the
directional claims (who wins, what converges).
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.fairness import run_fairness_experiment
from repro.experiments.fct import run_fct_experiment
from repro.experiments.replayability import (
    ReplayScenario,
    build_recorded_schedule,
    reference_bandwidth,
    run_replay,
    table1_scenarios,
    topology_factory,
)
from repro.experiments.tail import run_tail_experiment

TINY = dict(duration=0.08, seed=1)


class TestReplayability:
    def test_default_scenario_lstf_mostly_on_time(self):
        outcome = run_replay(ReplayScenario(name="t", **TINY))
        assert outcome.fraction_overdue < 0.25
        assert outcome.fraction_overdue_beyond_t < 0.05

    def test_omniscient_is_perfect_on_internet2(self):
        sc = ReplayScenario(name="t", **TINY)
        outcome = run_replay(sc, mode="omniscient")
        assert outcome.result.perfect

    def test_lstf_beats_intuitive_priorities(self):
        """§2.3(7): priority(p) = o(p) replays far worse than LSTF."""
        sc = ReplayScenario(name="t", **TINY)
        schedule = build_recorded_schedule(sc)
        lstf = run_replay(sc, mode="lstf", schedule=schedule)
        prio = run_replay(sc, mode="priority", schedule=schedule)
        assert prio.fraction_overdue > lstf.fraction_overdue
        assert prio.fraction_overdue_beyond_t > lstf.fraction_overdue_beyond_t

    def test_preemption_rescues_sjf_replay(self):
        """§2.3(5): preemption collapses SJF's failure rate."""
        sc = ReplayScenario(name="t", scheduler="sjf", **TINY)
        schedule = build_recorded_schedule(sc)
        plain = run_replay(sc, mode="lstf", schedule=schedule)
        preempt = run_replay(sc, mode="lstf-preemptive", schedule=schedule)
        assert preempt.fraction_overdue <= plain.fraction_overdue

    def test_table1_has_every_paper_row(self):
        rows = table1_scenarios()
        assert len(rows) == 14
        topologies = {r.topology for r in rows}
        assert topologies == {
            "i2-1g-10g", "i2-1g-1g", "i2-10g-10g", "rocketfuel", "fattree"
        }
        schedulers = {r.scheduler for r in rows}
        assert schedulers == {"random", "fifo", "fq", "sjf", "lifo", "fq+fifo+"}

    @pytest.mark.parametrize("topology", ["i2-1g-1g", "i2-10g-10g", "rocketfuel", "fattree"])
    def test_each_topology_variant_records_and_replays(self, topology):
        sc = ReplayScenario(name="t", topology=topology, duration=0.04)
        outcome = run_replay(sc)
        assert outcome.result.num_packets > 50

    def test_mixed_fq_fifoplus_original(self):
        sc = ReplayScenario(name="t", scheduler="fq+fifo+", duration=0.05)
        outcome = run_replay(sc)
        assert outcome.result.num_packets > 50

    def test_unknown_topology_or_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            topology_factory(ReplayScenario(name="t", topology="torus"))
        with pytest.raises(ConfigurationError):
            build_recorded_schedule(ReplayScenario(name="t", scheduler="wfq"))

    def test_reference_bandwidth_uses_bottleneck(self):
        scale = ReplayScenario(name="t").bandwidth_scale
        default = reference_bandwidth(ReplayScenario(name="t"))
        ten_ten = reference_bandwidth(ReplayScenario(name="t", topology="i2-10g-10g"))
        assert default == pytest.approx(1e9 * scale)      # 1G access links
        assert ten_ten == pytest.approx(2.5e9 * scale)    # slow core links


class TestFct:
    def test_size_aware_schemes_beat_fifo(self):
        results = run_fct_experiment(duration=0.12)
        fifo = results["fifo"].mean_fct
        assert results["sjf"].mean_fct < fifo
        assert results["srpt"].mean_fct < fifo
        assert results["lstf"].mean_fct < fifo

    def test_lstf_tracks_best_size_aware_scheme(self):
        """Figure 2's headline: LSTF ~ SJF/SRPT, far from FIFO."""
        results = run_fct_experiment(duration=0.12)
        best = min(results["sjf"].mean_fct, results["srpt"].mean_fct)
        fifo = results["fifo"].mean_fct
        lstf = results["lstf"].mean_fct
        assert lstf - best < 0.5 * (fifo - best)

    def test_buckets_present(self):
        results = run_fct_experiment(schemes=("fifo",), duration=0.12)
        assert results["fifo"].buckets
        assert sum(b.count for b in results["fifo"].buckets) == len(
            results["fifo"].stats.fct
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fct_experiment(schemes=("wfq",), duration=0.05)


class TestTail:
    def test_lstf_constant_slack_trims_the_tail(self):
        """Figure 3: means comparable, p99 lower for LSTF/FIFO+."""
        results = run_tail_experiment(duration=0.15)
        fifo, lstf = results["fifo"], results["lstf-constant"]
        assert lstf.p99 < fifo.p99
        assert abs(lstf.mean - fifo.mean) < 0.25 * fifo.mean

    def test_lstf_constant_matches_fifo_plus(self):
        """§3.2: constant-slack LSTF is FIFO+ (up to size tie-breaks)."""
        results = run_tail_experiment(
            schemes=("lstf-constant", "fifo+"), duration=0.1
        )
        a, b = results["lstf-constant"], results["fifo+"]
        assert a.p99 == pytest.approx(b.p99, rel=0.15)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            run_tail_experiment(schemes=("red",), duration=0.05)


class TestFairness:
    def test_lstf_converges_for_every_rate_estimate(self):
        """Figure 4: asymptotic fairness for any r_est <= r*."""
        results = run_fairness_experiment(
            rest_fractions=(1.0, 0.01), horizon=1.5, num_flows=6
        )
        for frac in (1.0, 0.01):
            assert results[f"lstf@{frac:g}"].final_fairness > 0.9

    def test_fifo_stays_unfair_while_fq_converges(self):
        results = run_fairness_experiment(
            rest_fractions=(), baselines=("fifo", "fq"), horizon=1.5, num_flows=6
        )
        assert results["fq"].final_fairness > 0.9
        assert results["fifo"].final_fairness < results["fq"].final_fairness

    def test_closer_estimate_converges_no_later(self):
        results = run_fairness_experiment(
            rest_fractions=(1.0, 0.01), baselines=(), horizon=1.5, num_flows=6
        )
        t_good = results["lstf@1"].time_to_reach(0.9)
        t_rough = results["lstf@0.01"].time_to_reach(0.9)
        assert t_good is not None and t_rough is not None
        assert t_good <= t_rough + 1e-9
