"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, reset_packet_ids
from repro.sim.network import Network
from repro.units import MBPS


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Reset the global packet-id counter so tests see stable pids."""
    reset_packet_ids()
    yield
    reset_packet_ids()


@pytest.fixture
def two_host_net() -> Network:
    """``a -> SW -> b`` with a 8 Mbps bottleneck (1000 B = 1 ms)."""
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 1000 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def make_packet(
    src: str = "a",
    dst: str = "b",
    size: int = 1000,
    created: float = 0.0,
    flow_id: int = 1,
    **attrs,
) -> Packet:
    """Convenience packet builder for unit tests."""
    packet = Packet(flow_id=flow_id, size=size, src=src, dst=dst, created=created)
    for name, value in attrs.items():
        setattr(packet, name, value)
    return packet
