"""Determinism guarantees: identical configuration => identical run.

Replay correctness rests on the recorded schedule being exactly
repeatable (DESIGN.md §5), so these tests pin the whole pipeline —
workload generation, event ordering, scheduler tie-breaking, RNG use —
to byte-identical outcomes.
"""

from __future__ import annotations

import numpy as np

from repro.core.packet import reset_packet_ids
from repro.core.replay import record_schedule, replay_schedule
from repro.experiments.replayability import ReplayScenario, build_recorded_schedule
from repro.topology.simple import build_dumbbell
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows
import functools


def _record_once(seed: int):
    reset_packet_ids()
    make = functools.partial(build_dumbbell, num_pairs=4)
    net = make()
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 50_000),
        workload=PoissonWorkload(0.7, 50e6, duration=0.04, seed=seed),
    )
    install_udp_flows(net, flows)
    return record_schedule(net), make


def test_recording_is_byte_identical_across_runs():
    first, _ = _record_once(seed=5)
    second, _ = _record_once(seed=5)
    assert len(first) == len(second)
    for a, b in zip(first.packets, second.packets):
        assert (a.pid, a.src, a.dst, a.size) == (b.pid, b.src, b.dst, b.size)
        assert a.ingress_time == b.ingress_time
        assert a.output_time == b.output_time
        assert a.hop_tx == b.hop_tx


def test_replay_is_deterministic():
    schedule, make = _record_once(seed=6)
    first = replay_schedule(schedule, make, mode="lstf")
    second = replay_schedule(schedule, make, mode="lstf")
    assert np.array_equal(first.lateness, second.lateness)


def test_random_original_is_repeatable():
    """Even the Random scheduler records identically under a fixed seed."""
    a = build_recorded_schedule(ReplayScenario(name="det", duration=0.05, seed=9))
    reset_packet_ids()
    b = build_recorded_schedule(ReplayScenario(name="det", duration=0.05, seed=9))
    assert [p.output_time for p in a.packets] == [p.output_time for p in b.packets]


def test_different_seeds_differ():
    a, _ = _record_once(seed=1)
    b, _ = _record_once(seed=2)
    assert [p.output_time for p in a.packets] != [p.output_time for p in b.packets]
