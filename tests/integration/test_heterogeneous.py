"""Integration: heterogeneous originals and cross-topology replays.

The UPS definition demands uniformity only of the *replay* side; the
original may mix disciplines arbitrarily ("different routers in the
network may use different scheduling logic", §2.1).  These tests drive
exactly that situation end to end.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.core.replay import record_schedule, replay_schedule
from repro.schedulers import (
    FifoPlusScheduler,
    FqScheduler,
    LifoScheduler,
    SjfScheduler,
)
from repro.topology.internet2 import Internet2Config, build_internet2
from repro.topology.rocketfuel import RocketFuelConfig, build_rocketfuel
from repro.transport.udp import install_udp_flows
from repro.workload.distributions import BoundedPareto
from repro.workload.flows import PoissonWorkload, poisson_flows


def _load(net, duration=0.05, seed=3, util=0.6, ref_bw=10e6):
    flows = poisson_flows(
        hosts=[h.name for h in net.hosts],
        sizes=BoundedPareto(1.2, 1500, 100_000),
        workload=PoissonWorkload(util, ref_bw, duration=duration, seed=seed),
    )
    install_udp_flows(net, flows)


def test_per_router_scheduler_mix_replays():
    """Four different disciplines across the core, one LSTF replay."""
    cfg = Internet2Config(edges_per_core=2, bandwidth_scale=0.01)
    make = functools.partial(build_internet2, cfg)
    net = make()

    disciplines = [FqScheduler, FifoPlusScheduler, SjfScheduler, LifoScheduler]

    def factory(node: str, _peer: str):
        if node.startswith("h"):
            return None
        return disciplines[sum(node.encode()) % len(disciplines)]()

    net.install_schedulers(factory)
    _load(net)
    schedule = record_schedule(net)
    result = replay_schedule(schedule, make, mode="lstf")
    assert result.fraction_overdue_beyond_threshold < 0.05
    omni = replay_schedule(schedule, make, mode="omniscient")
    assert omni.perfect


def test_edf_on_rocketfuel_matches_lstf():
    """EDF's per-router tmin lookups agree with LSTF's dynamic slack on a
    large irregular topology (83 routers)."""
    cfg = RocketFuelConfig(num_hosts=12, bandwidth_scale=0.01)
    make = functools.partial(build_rocketfuel, cfg)
    net = make()
    _load(net, duration=0.04, ref_bw=6.22e6)
    schedule = record_schedule(net)
    lstf = replay_schedule(schedule, make, mode="lstf")
    edf = replay_schedule(schedule, make, mode="edf")
    assert np.allclose(lstf.lateness, edf.lateness, atol=1e-9)


def test_replay_judges_against_recorded_targets_not_replay_behaviour():
    """The threshold T and the targets come from the *schedule*, so two
    different replay modes are judged on identical terms."""
    cfg = Internet2Config(edges_per_core=2, bandwidth_scale=0.01)
    make = functools.partial(build_internet2, cfg)
    net = make()
    _load(net, duration=0.03)
    schedule = record_schedule(net)
    a = replay_schedule(schedule, make, mode="lstf")
    b = replay_schedule(schedule, make, mode="priority")
    assert a.schedule is b.schedule
    assert a.schedule.threshold == pytest.approx(b.schedule.threshold)
