"""Unit tests for delay distribution metrics (Figures 1 and 3 support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.delay import ccdf, cdf, packet_delays, percentile, queueing_delays
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def test_cdf_is_monotone_and_normalised():
    values, probs = cdf([3.0, 1.0, 2.0, 2.0])
    assert list(values) == [1.0, 2.0, 2.0, 3.0]
    assert probs[-1] == pytest.approx(1.0)
    assert np.all(np.diff(probs) >= 0)


def test_cdf_rejects_empty():
    with pytest.raises(ValueError):
        cdf([])


def test_ccdf_complements_cdf():
    values, tail = ccdf([1.0, 2.0, 3.0, 4.0])
    assert tail[0] == pytest.approx(1.0)
    assert tail[-1] == pytest.approx(1.0 / 4.0)


def test_percentile():
    samples = list(range(1, 101))
    assert percentile(samples, 99) == pytest.approx(99.01)
    assert percentile(samples, 50) == pytest.approx(50.5)


def test_packet_delays_from_tracer_skips_acks():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.001)
    data = make_packet(size=1000)
    ack = make_packet(size=40, is_ack=True)
    net.inject_at(0.0, data)
    net.inject_at(0.0, ack)
    net.run()
    assert len(packet_delays(net.tracer)) == 1
    assert len(packet_delays(net.tracer, data_only=False)) == 2


def test_queueing_delays_from_tracer():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 8 * MBPS, 0.0)
    p1, p2 = make_packet(), make_packet()
    net.inject_at(0.0, p1)
    net.inject_at(0.0, p2)
    net.run()
    waits = sorted(queueing_delays(net.tracer))
    assert waits[0] == pytest.approx(0.0)
    assert waits[1] == pytest.approx(0.001)
