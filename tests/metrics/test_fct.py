"""Unit tests for FCT metrics (Figure 2 support)."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.metrics.fct import bucket_mean_fct, mean_fct
from repro.transport.tcp import TcpStats


def _stats(entries):
    """entries: list of (fid, size, fct)."""
    stats = TcpStats()
    for fid, size, fct in entries:
        flow = Flow(fid, "a", "b", size, start=0.0)
        stats.record_start(flow)
        stats.record_completion(fid, fct)
    return stats


def test_mean_fct():
    stats = _stats([(1, 1000, 0.1), (2, 1000, 0.3)])
    assert mean_fct(stats) == pytest.approx(0.2)


def test_completion_is_idempotent():
    stats = _stats([(1, 1000, 0.1)])
    stats.record_completion(1, 9.9)  # duplicate completion ignored
    assert stats.fct[1] == pytest.approx(0.1)


def test_buckets_partition_by_size():
    stats = _stats([
        (1, 1_000, 0.1),      # <=1460 bucket
        (2, 1_200, 0.3),      # <=1460 bucket
        (3, 50_000, 0.5),     # <=58400 bucket
        (4, 20_000_000, 2.0), # >10512000 bucket
    ])
    buckets = bucket_mean_fct(stats)
    assert sum(b.count for b in buckets) == 4
    first = buckets[0]
    assert first.count == 2 and first.mean_fct == pytest.approx(0.2)
    assert buckets[-1].label.startswith(">")


def test_empty_buckets_omitted():
    stats = _stats([(1, 1_000, 0.1)])
    buckets = bucket_mean_fct(stats)
    assert len(buckets) == 1


def test_custom_edges():
    stats = _stats([(1, 500, 0.1), (2, 5_000, 0.2)])
    buckets = bucket_mean_fct(stats, edges=(1_000, float("inf")))
    assert [b.count for b in buckets] == [1, 1]
