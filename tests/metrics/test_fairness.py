"""Unit tests for Jain fairness metrics (Figure 4 support)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.fairness import (
    ARTIFACT_DIGITS,
    artifact_fairness,
    fairness_timeseries,
    flow_throughputs,
    jain_index,
    throughput_timeseries,
)
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def test_jain_perfectly_fair():
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_single_hog():
    # One of n flows gets everything -> index = 1/n.
    assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_bounds_and_errors():
    assert jain_index([0.0, 0.0]) == 0.0
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([-1.0, 2.0])


def _delivering_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 80 * MBPS, 0.0)
    return net


def test_throughput_timeseries_bins_delivered_bytes():
    net = _delivering_net()
    for k in range(4):
        p = make_packet(flow_id=1 + (k % 2), size=1000)
        net.inject_at(k * 0.01, p)
    net.run()
    times, rates = throughput_timeseries(net.tracer, [1, 2], interval=0.02, horizon=0.04)
    assert rates.shape == (2, 2)
    # each bin holds one packet per flow: 1000B / 0.02s = 400 kbit/s
    assert rates[0, 0] == pytest.approx(1000 * 8 / 0.02)


def test_fairness_timeseries_reaches_one_for_equal_flows():
    net = _delivering_net()
    for k in range(10):
        for fid in (1, 2):
            net.inject_at(k * 0.001, make_packet(flow_id=fid, size=1000))
    net.run()
    _times, fairness = fairness_timeseries(net.tracer, [1, 2], 0.005, 0.01)
    assert fairness[-1] == pytest.approx(1.0)


def test_throughput_rejects_bad_intervals():
    net = _delivering_net()
    with pytest.raises(ValueError):
        throughput_timeseries(net.tracer, [1], 0.0, 1.0)


def test_flow_throughputs_whole_run_rates():
    net = _delivering_net()
    for k in range(4):
        net.inject_at(k * 0.001, make_packet(flow_id=1 + (k % 2), size=1000))
    net.run()
    rates = flow_throughputs(net.tracer, [1, 2, 3], horizon=0.01)
    # two 1000 B packets per flow over 10 ms -> 1.6 Mbit/s; flow 3 unseen
    assert rates == {1: pytest.approx(1.6e6), 2: pytest.approx(1.6e6), 3: 0.0}


def test_flow_throughputs_rejects_bad_horizon():
    net = _delivering_net()
    with pytest.raises(ValueError):
        flow_throughputs(net.tracer, [1], horizon=0.0)


class TestArtifactFairness:
    """Golden values locking the exact rounding embedded in artifacts."""

    def test_hand_computed_jain(self):
        # Jain([1,2,3]) = (1+2+3)^2 / (3 * (1+4+9)) = 36/42 = 6/7.
        assert artifact_fairness([1.0, 2.0, 3.0]) == 0.857143
        assert ARTIFACT_DIGITS == 6

    def test_zero_flows_edge_case(self):
        assert artifact_fairness([]) == 0.0

    def test_single_flow_edge_case(self):
        assert artifact_fairness([123.4]) == 1.0

    def test_equal_allocations_are_exactly_one(self):
        assert artifact_fairness([7.5] * 9) == 1.0
