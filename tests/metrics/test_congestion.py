"""Unit tests for congestion-point analysis (§2.2 support)."""

from __future__ import annotations

import pytest

from repro.core.replay import record_schedule
from repro.metrics.congestion import (
    congestion_point_histogram,
    link_utilisation,
    max_congestion_points,
)
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _congested_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    for _ in range(3):
        net.inject_at(0.0, make_packet())
    return net


def test_histogram_from_tracer():
    net = _congested_net()
    net.run()
    hist = congestion_point_histogram(net.tracer)
    assert sum(hist.values()) == 3
    assert hist.get(0) == 1  # first packet never waits


def test_histogram_from_recorded_schedule():
    net = _congested_net()
    schedule = record_schedule(net)
    assert congestion_point_histogram(schedule) == congestion_point_histogram(net.tracer)
    assert max_congestion_points(schedule) == max(congestion_point_histogram(schedule))


def test_empty_source():
    net = Network()
    net.add_host("a")
    assert max_congestion_points(net.tracer) == 0


class TestLinkUtilisation:
    """Golden values locking the artifact-embedded utilisation map."""

    def test_hand_computed_fixture(self):
        net = _congested_net()  # a -> SW -> b, both links 8 Mbit/s
        net.run()
        # 3 x 1000 B cross both links; over a 10 ms window each link could
        # have carried 8e6 * 0.01 bits, so utilisation = 24000/80000 = 0.3.
        utils = link_utilisation(net.tracer, net.links, window=0.01)
        assert utils == {"a->SW": 0.3, "SW->b": 0.3,
                         "SW->a": 0.0, "b->SW": 0.0}
        assert list(utils) == sorted(utils)  # embedding order is canonical

    def test_rounding_locked_to_artifact_digits(self):
        net = _congested_net()
        net.run()
        # 24000 bits / (8e6 * 0.007) = 3/7 = 0.428571428... -> 6 decimals.
        utils = link_utilisation(net.tracer, net.links, window=0.007)
        assert utils["a->SW"] == 0.428571

    def test_zero_traffic_edge_case(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        net.add_link("a", "b", 8 * MBPS, 0.0)
        net.run()
        assert link_utilisation(net.tracer, net.links, window=0.01) == {
            "a->b": 0.0, "b->a": 0.0,
        }

    def test_rejects_bad_window(self):
        net = _congested_net()
        with pytest.raises(ValueError):
            link_utilisation(net.tracer, net.links, window=0.0)
