"""Unit tests for congestion-point analysis (§2.2 support)."""

from __future__ import annotations

from repro.core.replay import record_schedule
from repro.metrics.congestion import congestion_point_histogram, max_congestion_points
from repro.sim.network import Network
from repro.units import MBPS
from tests.conftest import make_packet


def _congested_net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    for _ in range(3):
        net.inject_at(0.0, make_packet())
    return net


def test_histogram_from_tracer():
    net = _congested_net()
    net.run()
    hist = congestion_point_histogram(net.tracer)
    assert sum(hist.values()) == 3
    assert hist.get(0) == 1  # first packet never waits


def test_histogram_from_recorded_schedule():
    net = _congested_net()
    schedule = record_schedule(net)
    assert congestion_point_histogram(schedule) == congestion_point_histogram(net.tracer)
    assert max_congestion_points(schedule) == max(congestion_point_histogram(schedule))


def test_empty_source():
    net = Network()
    net.add_host("a")
    assert max_congestion_points(net.tracer) == 0
