"""Unit tests for the open-loop UDP source."""

from __future__ import annotations

import pytest

from repro.core.flow import Flow
from repro.core.heuristics import ConstantSlack
from repro.sim.network import Network
from repro.transport.udp import install_udp_flows
from repro.units import MBPS


def _net():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_router("SW")
    net.add_link("a", "SW", 8 * MBPS, 0.0)
    net.add_link("SW", "b", 8 * MBPS, 0.0)
    return net


def test_flow_fully_delivered_and_segmented():
    net = _net()
    flow = Flow(1, "a", "b", 4000, start=0.01)
    install_udp_flows(net, [flow])
    net.run()
    recs = list(net.tracer.delivered_records())
    assert len(recs) == 3  # 1500 + 1500 + 1000
    assert sum(r.size for r in recs) == 4000
    assert all(r.created == pytest.approx(0.01) for r in recs)


def test_host_link_paces_the_burst():
    net = _net()
    flow = Flow(1, "a", "b", 3000, start=0.0)
    install_udp_flows(net, [flow])
    net.run()
    exits = sorted(r.exit for r in net.tracer.delivered_records())
    # 1500B at 8Mbps = 1.5ms per serialisation.
    assert exits[1] - exits[0] == pytest.approx(1.5e-3)


def test_slack_policy_applied_per_packet():
    net = _net()
    flow = Flow(1, "a", "b", 3000, start=0.0)
    sources = install_udp_flows(net, [flow], slack_policy=ConstantSlack(0.25))
    assert len(sources) == 1
    captured = []
    net.host("b").on_deliver = lambda p: captured.append(p.slack)
    net.run()
    # Slack headers drained by queueing at the host uplink but started at 0.25.
    assert len(captured) == 2  # 3000B -> two segments
    assert max(captured) <= 0.25 + 1e-9


def test_flow_metadata_stamped():
    net = _net()
    flow = Flow(7, "a", "b", 4000, start=0.0)
    install_udp_flows(net, [flow])
    seen = []
    net.host("b").on_deliver = lambda p: seen.append(
        (p.flow_id, p.flow_size, p.remaining_flow, p.seq)
    )
    net.run()
    assert [s[0] for s in seen] == [7, 7, 7]
    assert all(s[1] == 4000 for s in seen)
    # remaining_flow decreases along the flow; seq tracks byte offsets.
    assert [s[2] for s in seen] == [4000, 2500, 1000]
    assert [s[3] for s in seen] == [0, 1500, 3000]


def test_multiple_flows_independent():
    net = _net()
    flows = [Flow(1, "a", "b", 1500, 0.0), Flow(2, "a", "b", 1500, 0.001)]
    install_udp_flows(net, flows)
    net.run()
    by_flow = {}
    for rec in net.tracer.delivered_records():
        by_flow.setdefault(rec.flow_id, []).append(rec)
    assert set(by_flow) == {1, 2}
